//! Chip configuration.

use vs_pdn::PdnParams;
use vs_power::PowerParams;
use vs_sram::SramParams;
use vs_types::{Celsius, ConfigError, CoreId, DomainId, Millivolts, SimTime, VddMode};

/// Configuration of a simulated chip.
///
/// The defaults mirror the evaluation platform (Table I): eight cores, two
/// cores per speculated voltage domain, 1 ms control/logging tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Per-die seed: determines the entire variation map (weak lines,
    /// logic floors). Two chips with the same seed are the same silicon.
    pub seed: u64,
    /// Which operating point the chip runs at.
    pub mode: VddMode,
    /// Number of cores (8 on the reference platform).
    pub num_cores: usize,
    /// Cores sharing one speculated voltage domain (2 on the reference
    /// platform; Table I's six domains are these four core-pair rails plus
    /// two uncore rails, which are not speculated).
    pub cores_per_domain: usize,
    /// Simulation tick (control and logging granularity).
    pub tick: SimTime,
    /// Ambient silicon temperature.
    pub temperature: Celsius,
    /// SRAM variation parameters.
    pub sram: SramParams,
    /// Power-model parameters.
    pub power: PowerParams,
    /// Per-domain delivery-network parameters.
    pub pdn: PdnParams,
    /// How many of the weakest lines per structure the analytic error path
    /// tracks. Lines below the table never err at usable voltages.
    pub weak_lines_tracked: usize,
    /// Fraction of a workload's L2 traffic that lands uniformly across all
    /// lines of the structure (the rest hits hot lines). This sets how
    /// often a *workload* (as opposed to the ECC monitor) touches any
    /// given weak line — the scarcity that made the prior software-only
    /// approach conservative.
    pub uniform_reuse_fraction: f64,
    /// Expected accesses per millisecond to a weak register-file entry per
    /// unit activity (only relevant at the nominal point, where register
    /// files err).
    pub rf_weak_access_per_ms: f64,
    /// How many of an ECC-monitor probe's reads go through the real
    /// encoded data path each tick (the remainder are sampled from the
    /// identical analytic distribution for speed).
    pub monitor_real_reads: u64,
}

impl ChipConfig {
    /// The low-voltage operating point with default calibration.
    pub fn low_voltage(seed: u64) -> ChipConfig {
        ChipConfig {
            seed,
            mode: VddMode::LowVoltage,
            num_cores: 8,
            cores_per_domain: 2,
            tick: SimTime::from_millis(1),
            temperature: Celsius(50.0),
            sram: SramParams::default(),
            power: PowerParams::default(),
            pdn: PdnParams::default(),
            weak_lines_tracked: 24,
            uniform_reuse_fraction: 6.0e-4,
            rf_weak_access_per_ms: 2.0e-3,
            monitor_real_reads: 4,
        }
    }

    /// The nominal (2.53 GHz) operating point with default calibration.
    pub fn nominal(seed: u64) -> ChipConfig {
        ChipConfig {
            mode: VddMode::Nominal,
            ..ChipConfig::low_voltage(seed)
        }
    }

    /// Number of speculated (core) voltage domains.
    pub fn num_domains(&self) -> usize {
        self.num_cores.div_ceil(self.cores_per_domain)
    }

    /// The domain a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn domain_of(&self, core: CoreId) -> DomainId {
        assert!(core.0 < self.num_cores, "core {core} out of range");
        DomainId(core.0 / self.cores_per_domain)
    }

    /// The cores in a domain.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    pub fn cores_in_domain(&self, domain: DomainId) -> Vec<CoreId> {
        assert!(
            domain.0 < self.num_domains(),
            "domain {domain} out of range"
        );
        (0..self.num_cores)
            .map(CoreId)
            .filter(|c| self.domain_of(*c) == domain)
            .collect()
    }

    /// The sibling core sharing a domain with `core` (the "auxiliary core"
    /// of the noise experiments), if any.
    pub fn sibling_of(&self, core: CoreId) -> Option<CoreId> {
        self.cores_in_domain(self.domain_of(core))
            .into_iter()
            .find(|c| *c != core)
    }

    /// Regulator range for this operating point.
    pub fn regulator_range(&self) -> (Millivolts, Millivolts) {
        match self.mode {
            VddMode::LowVoltage => (Millivolts(500), Millivolts(900)),
            VddMode::Nominal => (Millivolts(900), Millivolts(1200)),
        }
    }

    /// Validates internal consistency, returning the first violated
    /// constraint as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::non_positive("num_cores"));
        }
        if self.cores_per_domain == 0 || self.cores_per_domain > self.num_cores {
            return Err(ConfigError::out_of_range(
                "cores_per_domain",
                "in 1..=num_cores",
                self.cores_per_domain,
            ));
        }
        if self.tick <= SimTime::ZERO {
            return Err(ConfigError::non_positive("tick"));
        }
        if self.weak_lines_tracked == 0 {
            return Err(ConfigError::non_positive("weak_lines_tracked"));
        }
        if !(0.0..=1.0).contains(&self.uniform_reuse_fraction) {
            return Err(ConfigError::out_of_range(
                "uniform_reuse_fraction",
                "a fraction in [0, 1]",
                self.uniform_reuse_fraction,
            ));
        }
        let (lo, hi) = self.regulator_range();
        let nominal = self.mode.nominal_vdd();
        if !(lo..=hi).contains(&nominal) {
            return Err(ConfigError::inconsistent(
                "mode",
                "regulator_range",
                "nominal voltage must be inside the regulator range",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_matches_table_i() {
        let c = ChipConfig::low_voltage(1);
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.num_domains(), 4);
        assert_eq!(c.domain_of(CoreId(0)), DomainId(0));
        assert_eq!(c.domain_of(CoreId(1)), DomainId(0));
        assert_eq!(c.domain_of(CoreId(7)), DomainId(3));
        assert_eq!(c.cores_in_domain(DomainId(1)), vec![CoreId(2), CoreId(3)]);
    }

    #[test]
    fn siblings_pair_up() {
        let c = ChipConfig::low_voltage(1);
        assert_eq!(c.sibling_of(CoreId(4)), Some(CoreId(5)));
        assert_eq!(c.sibling_of(CoreId(5)), Some(CoreId(4)));
        let solo = ChipConfig {
            num_cores: 1,
            cores_per_domain: 1,
            ..ChipConfig::low_voltage(1)
        };
        assert_eq!(solo.sibling_of(CoreId(0)), None);
    }

    #[test]
    fn modes_have_correct_ranges() {
        let low = ChipConfig::low_voltage(1);
        assert_eq!(low.regulator_range(), (Millivolts(500), Millivolts(900)));
        let nom = ChipConfig::nominal(1);
        assert_eq!(nom.regulator_range(), (Millivolts(900), Millivolts(1200)));
        assert_eq!(nom.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn domain_of_bad_core_panics() {
        ChipConfig::low_voltage(1).domain_of(CoreId(8));
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let c = ChipConfig {
            num_cores: 0,
            ..ChipConfig::low_voltage(1)
        };
        let err = c.validate().unwrap_err();
        assert_eq!(err.field(), "num_cores");
        assert!(err.to_string().contains("num_cores"), "{err}");
    }

    #[test]
    fn odd_core_count_rounds_domains_up() {
        let c = ChipConfig {
            num_cores: 5,
            ..ChipConfig::low_voltage(1)
        };
        assert_eq!(c.num_domains(), 3);
        assert_eq!(c.cores_in_domain(DomainId(2)), vec![CoreId(4)]);
    }
}
