//! Voltage-margin characterization experiments (paper §II, Figures 1–4).
//!
//! These harnesses run the chip the way the authors ran the real machine:
//! exercise one core at a time under a stress workload (the sibling core
//! idles in firmware), step the shared rail down, and record what the ECC
//! hardware reports and where the core stops functioning.
//!
//! All routines are deterministic for a given chip seed.

use crate::chip::Chip;
use vs_types::{CacheKind, CoreId, Millivolts, SimTime};
use vs_workload::StressTest;

/// The voltage landmarks of one core (paper Figures 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMargins {
    /// The core.
    pub core: CoreId,
    /// Highest voltage at which a correctable error was observed in the
    /// characterization window (onset of the error band).
    pub first_error_vdd: Millivolts,
    /// Lowest voltage at which the core ran the stress window with no
    /// crash and no uncorrectable error.
    pub min_safe_vdd: Millivolts,
}

impl CoreMargins {
    /// Width of the usable correctable-error band.
    pub fn error_band(&self) -> Millivolts {
        self.first_error_vdd - self.min_safe_vdd
    }
}

/// Options controlling characterization cost/fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharacterizeOptions {
    /// Stress window simulated at each voltage step.
    pub window: SimTime,
    /// Voltage step between trials.
    pub step: Millivolts,
}

impl Default for CharacterizeOptions {
    fn default() -> CharacterizeOptions {
        CharacterizeOptions {
            window: SimTime::from_secs(20),
            step: Millivolts(5),
        }
    }
}

impl CharacterizeOptions {
    /// A reduced-cost option set for tests.
    pub fn fast() -> CharacterizeOptions {
        CharacterizeOptions {
            window: SimTime::from_secs(3),
            step: Millivolts(10),
        }
    }
}

fn ticks_in(chip: &Chip, window: SimTime) -> u64 {
    (window.as_micros() / chip.config().tick.as_micros()).max(1)
}

/// Runs one core under stress at a fixed set point for `window`; returns
/// `(correctable_events, crashed)`.
///
/// The sibling core idles in a firmware spin-loop, as in the paper's
/// single-core sensitivity experiments (§IV-A4).
pub fn stress_window(
    chip: &mut Chip,
    core: CoreId,
    vdd: Millivolts,
    window: SimTime,
) -> (u64, bool) {
    chip.reset();
    chip.set_workload(core, Box::new(StressTest::default()));
    let domain = chip.config().domain_of(core);
    // Warm-up at nominal: the real procedure lowers the rail while the
    // stress load is already running, so the workload's turn-on transient
    // must not be charged to the voltage under test.
    for _ in 0..3 {
        chip.tick();
    }
    chip.request_domain_voltage(domain, vdd);
    let ticks = ticks_in(chip, window);
    let before = chip.log().correctable_count();
    let mut crashed = false;
    for _ in 0..ticks {
        let report = chip.tick();
        if report.crashes.iter().any(|(c, _)| *c == core) {
            crashed = true;
            break;
        }
    }
    (chip.log().correctable_count() - before, crashed)
}

/// Measures a core's first-error and minimum safe voltages by stepping the
/// rail down from nominal (Figures 1 and 2).
pub fn core_margins(chip: &mut Chip, core: CoreId, opts: &CharacterizeOptions) -> CoreMargins {
    let nominal = chip.mode().nominal_vdd();
    let (range_lo, _) = chip.config().regulator_range();
    let mut first_error = None;
    let mut min_safe = nominal;
    let mut v = nominal;
    while v >= range_lo {
        let (errors, crashed) = stress_window(chip, core, v, opts.window);
        if crashed {
            break;
        }
        min_safe = v;
        if errors > 0 && first_error.is_none() {
            first_error = Some(v);
        }
        v -= opts.step;
    }
    CoreMargins {
        core,
        // If no error was ever seen before the crash (possible with very
        // coarse steps), the band is empty: onset equals the floor.
        first_error_vdd: first_error.unwrap_or(min_safe),
        min_safe_vdd: min_safe,
    }
}

/// Margins for every core (the full Figure 1 / Figure 2 data set).
pub fn all_core_margins(chip: &mut Chip, opts: &CharacterizeOptions) -> Vec<CoreMargins> {
    (0..chip.config().num_cores)
        .map(|i| core_margins(chip, CoreId(i), opts))
        .collect()
}

/// Snaps a raw voltage up to the next point of the 5 mV regulator grid.
fn snap_up_to_grid(v_mv: f64) -> Millivolts {
    Millivolts((v_mv / 5.0).ceil() as i32 * 5)
}

/// Oracle counterpart of [`core_margins`]: reads the core's landmarks
/// straight from the silicon model instead of measuring them with stress
/// sweeps.
///
/// * `first_error_vdd` — the highest critical voltage among the core's L2
///   weak lines (where the sweep would first see a correctable error),
///   snapped up to the regulator grid;
/// * `min_safe_vdd` — the core's logic floor (where the sweep would first
///   crash), snapped up to the grid.
///
/// The sweep and the oracle describe the same silicon — this is the same
/// oracle/measured duality as calibration's `TableLookup` vs `CacheSweep`
/// (see `vs-spec`). Fleet-scale population sweeps default to the oracle so
/// that characterizing hundreds of dies costs milliseconds, not hours;
/// `tests/` assert the two agree on reference dies.
pub fn analytic_core_margins(chip: &mut Chip, core: CoreId) -> CoreMargins {
    let first_error = [CacheKind::L2Data, CacheKind::L2Instruction]
        .into_iter()
        .map(|kind| chip.weak_table(core, kind).first_error_voltage_mv())
        .fold(f64::NEG_INFINITY, f64::max);
    let floor = chip.logic_floor(core);
    CoreMargins {
        core,
        first_error_vdd: snap_up_to_grid(first_error),
        // The grid point at or above the floor is the lowest *settable*
        // safe voltage.
        min_safe_vdd: snap_up_to_grid(f64::from(floor.0)),
    }
}

/// Analytic margins for every core (the fleet-scale Figure 1 / Figure 2
/// data set).
pub fn all_analytic_core_margins(chip: &mut Chip) -> Vec<CoreMargins> {
    (0..chip.config().num_cores)
        .map(|i| analytic_core_margins(chip, CoreId(i)))
        .collect()
}

/// One point of the error-rate-vs-voltage sweep (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRatePoint {
    /// Millivolts below the mode's nominal voltage.
    pub below_nominal: Millivolts,
    /// Correctable errors per active core over the window.
    pub avg_errors: f64,
    /// Cores still active (not crashed) at this voltage.
    pub active_cores: usize,
}

/// Sweeps voltage downward and reports the average correctable-error count
/// across surviving cores at each level (Figure 3).
pub fn error_rate_sweep(
    chip: &mut Chip,
    opts: &CharacterizeOptions,
    max_below_nominal: Millivolts,
) -> Vec<ErrorRatePoint> {
    let nominal = chip.mode().nominal_vdd();
    let cores: Vec<CoreId> = (0..chip.config().num_cores).map(CoreId).collect();
    // Establish each core's crash point first so the sweep only averages
    // over "still active" cores, like the paper does.
    let margins: Vec<CoreMargins> = cores.iter().map(|c| core_margins(chip, *c, opts)).collect();

    let mut points = Vec::new();
    let mut below = Millivolts(0);
    while below <= max_below_nominal {
        let v = nominal - below;
        let mut total = 0u64;
        let mut active = 0usize;
        for (core, margin) in cores.iter().zip(&margins) {
            if v < margin.min_safe_vdd {
                continue;
            }
            let (errors, crashed) = stress_window(chip, *core, v, opts.window);
            if !crashed {
                total += errors;
                active += 1;
            }
        }
        if active == 0 {
            break;
        }
        points.push(ErrorRatePoint {
            below_nominal: below,
            avg_errors: total as f64 / active as f64,
            active_cores: active,
        });
        below += opts.step;
    }
    points
}

/// Per-core instruction/data error split at the core's minimum safe
/// voltage (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorBreakdown {
    /// The core.
    pub core: CoreId,
    /// Correctable errors from the L2 data cache.
    pub data_errors: u64,
    /// Correctable errors from the L2 instruction cache.
    pub instruction_errors: u64,
}

/// Runs each core at its minimum safe voltage under the stress mix and
/// splits its correctable errors by cache side (Figure 4).
pub fn error_breakdown(
    chip: &mut Chip,
    margins: &[CoreMargins],
    window: SimTime,
) -> Vec<ErrorBreakdown> {
    margins
        .iter()
        .map(|m| {
            let before_d = chip.log().count_for_core(m.core, CacheKind::L2Data);
            let before_i = chip.log().count_for_core(m.core, CacheKind::L2Instruction);
            let _ = stress_window(chip, m.core, m.min_safe_vdd, window);
            ErrorBreakdown {
                core: m.core,
                data_errors: chip.log().count_for_core(m.core, CacheKind::L2Data) - before_d,
                instruction_errors: chip.log().count_for_core(m.core, CacheKind::L2Instruction)
                    - before_i,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipConfig;
    use vs_types::VddMode;

    fn small_chip(mode: VddMode) -> Chip {
        let mut config = match mode {
            VddMode::LowVoltage => ChipConfig::low_voltage(11),
            VddMode::Nominal => ChipConfig::nominal(11),
        };
        config.num_cores = 2;
        config.weak_lines_tracked = 8;
        config.tick = SimTime::from_millis(10);
        Chip::new(config)
    }

    #[test]
    fn margins_are_ordered_and_in_band() {
        let mut chip = small_chip(VddMode::LowVoltage);
        let m = core_margins(&mut chip, CoreId(0), &CharacterizeOptions::fast());
        assert!(m.first_error_vdd >= m.min_safe_vdd);
        assert!(
            (560..780).contains(&m.min_safe_vdd.0),
            "min safe {} out of the plausible low-V band",
            m.min_safe_vdd
        );
        assert!(
            (650..780).contains(&m.first_error_vdd.0),
            "first error {} out of the plausible band",
            m.first_error_vdd
        );
        assert!(m.error_band().0 >= 0);
    }

    #[test]
    fn stress_window_is_reproducible() {
        let mut chip = small_chip(VddMode::LowVoltage);
        let v = Millivolts(700);
        let a = stress_window(&mut chip, CoreId(0), v, SimTime::from_secs(2));
        let b = stress_window(&mut chip, CoreId(0), v, SimTime::from_secs(2));
        assert_eq!(a, b, "same silicon, same window, same result");
    }

    #[test]
    fn errors_increase_as_voltage_falls() {
        let mut chip = small_chip(VddMode::LowVoltage);
        let m = core_margins(&mut chip, CoreId(0), &CharacterizeOptions::fast());
        let window = SimTime::from_secs(4);
        let (high_errs, _) = stress_window(
            &mut chip,
            CoreId(0),
            m.first_error_vdd + Millivolts(30),
            window,
        );
        let (low_errs, crashed) =
            stress_window(&mut chip, CoreId(0), m.min_safe_vdd + Millivolts(5), window);
        assert_eq!(high_errs, 0, "well above onset: silent");
        assert!(!crashed);
        assert!(low_errs > 0, "near the floor: errors");
    }

    #[test]
    fn sweep_produces_monotone_style_curve() {
        let mut chip = small_chip(VddMode::LowVoltage);
        let points = error_rate_sweep(&mut chip, &CharacterizeOptions::fast(), Millivolts(160));
        assert!(!points.is_empty());
        // The curve must start silent at nominal and grow overall.
        assert_eq!(points[0].avg_errors, 0.0);
        let last = points.last().unwrap();
        assert!(last.avg_errors > 0.0, "sweep must reach the error band");
        assert!(points.iter().all(|p| p.active_cores >= 1));
    }

    #[test]
    fn analytic_margins_agree_with_measured() {
        let mut chip = small_chip(VddMode::LowVoltage);
        let analytic = analytic_core_margins(&mut chip, CoreId(0));
        let measured = core_margins(&mut chip, CoreId(0), &CharacterizeOptions::fast());
        // Onset: the oracle reports where error probability becomes
        // nonzero (the weakest cell's Vc); the sweep reports where errors
        // become *observable* in a finite stress window, which is at or
        // below that — workload traffic touches the weakest line rarely
        // (uniform_reuse_fraction ~6e-4), so detection lags onset by a few
        // noise widths. Bound the lag rather than demanding equality.
        let dv = (analytic.first_error_vdd - measured.first_error_vdd).0;
        assert!(
            (-5..=40).contains(&dv),
            "onset mismatch: oracle {} vs sweep {}",
            analytic.first_error_vdd,
            measured.first_error_vdd
        );
        // Floor: the sweep stops a step above the crash point, so the
        // oracle's floor is never above the sweep's by more than a step.
        let df = (measured.min_safe_vdd - analytic.min_safe_vdd).0;
        assert!(
            (0..=15).contains(&df),
            "floor mismatch: oracle {} vs sweep {}",
            analytic.min_safe_vdd,
            measured.min_safe_vdd
        );
        assert!(analytic.error_band().0 > 0, "a die has a usable band");
    }

    #[test]
    fn analytic_margins_cover_all_cores_deterministically() {
        let mut a = small_chip(VddMode::LowVoltage);
        let mut b = small_chip(VddMode::LowVoltage);
        let ma = all_analytic_core_margins(&mut a);
        let mb = all_analytic_core_margins(&mut b);
        assert_eq!(ma, mb);
        assert_eq!(ma.len(), 2);
    }

    #[test]
    fn breakdown_attributes_to_both_sides() {
        let mut chip = small_chip(VddMode::LowVoltage);
        let opts = CharacterizeOptions::fast();
        let margins = vec![core_margins(&mut chip, CoreId(0), &opts)];
        let breakdown = error_breakdown(&mut chip, &margins, SimTime::from_secs(5));
        assert_eq!(breakdown.len(), 1);
        let b = &breakdown[0];
        assert!(
            b.data_errors + b.instruction_errors > 0,
            "min-safe run must produce errors"
        );
    }
}
