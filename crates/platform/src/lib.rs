//! The simulated chip multiprocessor.
//!
//! This crate assembles the substrates — SRAM variation physics
//! (`vs-sram`), the ECC-encoded cache hierarchy (`vs-cache`), the
//! power-delivery network (`vs-pdn`), the power model (`vs-power`), and
//! workload profiles (`vs-workload`) — into a machine that behaves like the
//! paper's Itanium 9560 platform from the perspective of the
//! voltage-speculation system:
//!
//! * eight in-order cores grouped two per voltage domain, each domain with
//!   its own regulator and delivery network;
//! * a discrete-time engine ([`Chip::tick`], 1 ms default) that converts
//!   workload demand into rail currents, effective voltages, correctable
//!   and uncorrectable ECC events, power, and energy;
//! * per-core crash detection (logic floor violations or uncorrectable
//!   errors), the simulator's equivalent of the machine checks that bound
//!   the minimum safe voltage;
//! * a [`WeakLineTable`] per structure, ranking the deterministically
//!   weakest cache lines — the lines whose behaviour the whole paper turns
//!   on;
//! * [`characterize`] — the voltage-margin experiments of §II
//!   (Figures 1–4).
//!
//! # Examples
//!
//! ```no_run
//! use vs_platform::{Chip, ChipConfig};
//! use vs_types::{CoreId, DomainId, Millivolts};
//! use vs_workload::StressTest;
//!
//! let mut chip = Chip::new(ChipConfig::low_voltage(42));
//! chip.set_workload(CoreId(0), Box::new(StressTest::default()));
//! chip.request_domain_voltage(DomainId(0), Millivolts(720));
//! for _ in 0..1000 {
//!     let report = chip.tick();
//!     assert!(report.crashes.is_empty(), "720 mV should be safe");
//! }
//! println!("CEs so far: {}", chip.log().correctable_count());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod characterize;
mod chip;
mod config;
mod weakline;

pub use chip::{BankMap, Chip, CrashInfo, CrashReason, ProbeOutcome, SliceReport, TickReport};
pub use config::ChipConfig;
pub use weakline::{WeakLine, WeakLineTable};
