//! The daemon's instrument names, shared between the producer (the
//! vs-fleetd scheduler registering into its [`MetricsRegistry`]) and the
//! consumers (`repro fleetd top`, the golden tests) so neither side
//! hard-codes strings the other might drift from.
//!
//! Dotted registry names map onto exposition names via
//! [`crate::metric_name`] under [`PROM_PREFIX`]:
//! `"fleetd.jobs_running"` → `voltspec_fleetd_jobs_running`.
//!
//! [`MetricsRegistry`]: vs_telemetry::MetricsRegistry

/// Exposition-name prefix for every voltspec metric.
pub const PROM_PREFIX: &str = "voltspec";

/// Counter: jobs accepted for execution (running or queued at least
/// once).
pub const JOBS_SUBMITTED: &str = "fleetd.jobs_submitted";
/// Counter: jobs that reached `Finished`.
pub const JOBS_COMPLETED: &str = "fleetd.jobs_completed";
/// Counter: jobs that reached `Cancelled`.
pub const JOBS_CANCELLED: &str = "fleetd.jobs_cancelled";
/// Counter: jobs that reached `Failed`.
pub const JOBS_FAILED: &str = "fleetd.jobs_failed";
/// Counter: submissions bounced by admission control.
pub const JOBS_REJECTED: &str = "fleetd.jobs_rejected";
/// Gauge: jobs executing right now.
pub const JOBS_RUNNING: &str = "fleetd.jobs_running";
/// Gauge: jobs admitted but waiting for a worker.
pub const JOBS_QUEUED: &str = "fleetd.jobs_queued";
/// Gauge: seconds since the daemon started serving.
pub const UPTIME_SECONDS: &str = "fleetd.uptime_seconds";

/// Counter: submissions whose idempotency key matched an existing job
/// (no duplicate sweep started).
pub const JOBS_DEDUPED: &str = "fleetd.jobs_deduped";
/// Counter: submissions shed because the admission queue was at cap.
pub const SHED_QUEUE_FULL: &str = "fleetd.shed_queue_full";
/// Counter: submissions shed while the store was parked on ENOSPC.
pub const SHED_PARKED: &str = "fleetd.shed_parked";
/// Gauge: 1 while the store is parked (ENOSPC drain mode), else 0.
pub const STORE_PARKED: &str = "fleetd.store_parked";

/// Counter: injected ENOSPC faults (FaultyFs torture layer).
pub const FS_ENOSPC_INJECTED: &str = "guard.fs_enospc_injected";
/// Counter: injected short/torn writes (FaultyFs torture layer).
pub const FS_SHORT_WRITES_INJECTED: &str = "guard.fs_short_writes_injected";
/// Counter: injected fsync failures (FaultyFs torture layer).
pub const FS_FSYNC_FAILURES_INJECTED: &str = "guard.fs_fsync_failures_injected";

/// Counter: store scrub passes completed (boot-time and on-demand fsck).
pub const STORE_SCRUB_RUNS: &str = "store.scrub_runs";
/// Counter: issues found by store scrubs (orphan temps, torn journal
/// tails, CRC damage, checkpoint/journal divergence).
pub const STORE_SCRUB_ISSUES: &str = "store.scrub_issues";
/// Counter: issues repaired in place by store scrubs (temps removed,
/// torn tails truncated, journal headers rebuilt).
pub const STORE_SCRUB_REPAIRS: &str = "store.scrub_repairs";
/// Counter: sweeps moved to `<store>/quarantine/` because recovery
/// could not make them consistent.
pub const STORE_QUARANTINED_SWEEPS: &str = "store.quarantined_sweeps";

/// Counter: chips fully simulated across all jobs.
pub const CHIPS_COMPLETED: &str = "fleet.chips_completed";
/// Counter: voltage rollbacks observed across all jobs (DUE-triggered
/// plus crash recoveries).
pub const ROLLBACKS: &str = "fleet.rollbacks";
/// Counter: sentinel safety-invariant violations across all jobs.
pub const VIOLATIONS: &str = "sentinel.violations";
/// Counter: postmortem flight-recorder bundles written.
pub const POSTMORTEMS: &str = "obs.postmortems_written";

/// Gauge name for job-worker `worker`'s cumulative busy seconds.
pub fn worker_busy(worker: usize) -> String {
    format!("fleetd.worker{worker}.busy_seconds")
}
