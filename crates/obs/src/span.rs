//! The causal span model: deterministic span ids and tree
//! reconstruction.
//!
//! A fleet run's spans form a four-level hierarchy — job → lane → chip →
//! tick-batch — whose ids are **pure functions of position in the
//! hierarchy**, never of scheduling. The "lane" level is a *virtual*
//! lane (`chip mod LANES`), deliberately not the physical worker thread:
//! which worker simulates a chip depends on timing, and span traces must
//! stay byte-identical under any `--workers` count. Causality is encoded
//! in explicit `id`/`parent` links carried by the
//! [`TelemetryEvent::SpanOpen`] events themselves, so a tree
//! reconstructs from a merged trace regardless of stream interleaving.

use std::collections::HashMap;
use vs_telemetry::{SpanLevel, TelemetryEvent};
use vs_types::{ChipId, SimTime};

/// Virtual lanes per job. Fixed — a deterministic sharding of chips that
/// groups traffic without referencing physical workers.
pub const LANES: u64 = 4;

/// The parent id of the root job span.
pub const ROOT: u64 = 0;

const TAG_SHIFT: u32 = 60;
const TAG_JOB: u64 = 1 << TAG_SHIFT;
const TAG_LANE: u64 = 2 << TAG_SHIFT;
const TAG_CHIP: u64 = 3 << TAG_SHIFT;
const TAG_BATCH: u64 = 4 << TAG_SHIFT;
const IDENT_MASK: u64 = (1 << TAG_SHIFT) - 1;
const BATCH_CHIP_SHIFT: u32 = 24;

/// The span id of job `job` (the daemon's job number; 0 for standalone
/// `repro` runs).
pub fn job_span(job: u64) -> u64 {
    TAG_JOB | (job & IDENT_MASK)
}

/// The span id of virtual lane `lane`.
pub fn lane_span(lane: u64) -> u64 {
    TAG_LANE | (lane & IDENT_MASK)
}

/// The span id of `chip`'s simulation.
pub fn chip_span(chip: ChipId) -> u64 {
    TAG_CHIP | (chip.0 & IDENT_MASK)
}

/// The span id of `chip`'s tick-batch number `batch`.
pub fn batch_span(chip: ChipId, batch: u64) -> u64 {
    TAG_BATCH
        | ((chip.0 & ((1 << (TAG_SHIFT - BATCH_CHIP_SHIFT)) - 1)) << BATCH_CHIP_SHIFT)
        | (batch & ((1 << BATCH_CHIP_SHIFT) - 1))
}

/// The virtual lane owning `chip`.
pub fn lane_of(chip: ChipId) -> u64 {
    chip.0 % LANES
}

/// Decodes the hierarchy level encoded in a span id's tag bits.
pub fn level_of(id: u64) -> Option<SpanLevel> {
    match id >> TAG_SHIFT {
        1 => Some(SpanLevel::Job),
        2 => Some(SpanLevel::Lane),
        3 => Some(SpanLevel::Chip),
        4 => Some(SpanLevel::Batch),
        _ => None,
    }
}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span's id.
    pub id: u64,
    /// The parent span's id ([`ROOT`] for the job span).
    pub parent: u64,
    /// Hierarchy level.
    pub level: SpanLevel,
    /// Level-specific identity (job number, lane index, chip id, batch
    /// index).
    pub ident: u64,
    /// When the span opened.
    pub open_at: SimTime,
    /// When the span closed (`None` if the trace ended mid-span).
    pub close_at: Option<SimTime>,
    /// Events the matching close reported as enclosed.
    pub events: u64,
    /// Indices (into [`SpanTree::nodes`]) of the direct children, sorted
    /// by `(level, ident)` for deterministic traversal.
    pub children: Vec<usize>,
}

/// A job's causal tree, reconstructed from a merged event stream by
/// chasing `id → parent` links (stream position carries no meaning).
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
}

impl SpanTree {
    /// Builds the tree from any event stream; non-span events are
    /// ignored. Orphans (a parent id never opened) become extra roots
    /// rather than being dropped, so a truncated trace still renders.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TelemetryEvent>) -> SpanTree {
        let mut nodes: Vec<SpanNode> = Vec::new();
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        for event in events {
            match *event {
                TelemetryEvent::SpanOpen {
                    at,
                    id,
                    parent,
                    level,
                    ident,
                } => {
                    by_id.insert(id, nodes.len());
                    nodes.push(SpanNode {
                        id,
                        parent,
                        level,
                        ident,
                        open_at: at,
                        close_at: None,
                        events: 0,
                        children: Vec::new(),
                    });
                }
                TelemetryEvent::SpanClose { at, id, events } => {
                    if let Some(&i) = by_id.get(&id) {
                        nodes[i].close_at = Some(at);
                        nodes[i].events = events;
                    }
                }
                _ => {}
            }
        }
        let mut roots = Vec::new();
        for i in 0..nodes.len() {
            let parent = nodes[i].parent;
            match by_id.get(&parent) {
                Some(&p) if parent != ROOT => nodes[p].children.push(i),
                _ => roots.push(i),
            }
        }
        let key = |nodes: &[SpanNode], i: usize| (nodes[i].level, nodes[i].ident, nodes[i].id);
        for i in 0..nodes.len() {
            let mut children = std::mem::take(&mut nodes[i].children);
            children.sort_by_key(|&c| key(&nodes, c));
            nodes[i].children = children;
        }
        roots.sort_by_key(|&r| key(&nodes, r));
        SpanTree { nodes, roots }
    }

    /// Spans in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no spans were found.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All spans, in open order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Root spans (normally exactly the job span).
    pub fn roots(&self) -> impl Iterator<Item = &SpanNode> {
        self.roots.iter().map(|&i| &self.nodes[i])
    }

    /// Looks a span up by id.
    pub fn find(&self, id: u64) -> Option<&SpanNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// A span's direct children.
    pub fn children<'a>(&'a self, node: &'a SpanNode) -> impl Iterator<Item = &'a SpanNode> {
        node.children.iter().map(|&i| &self.nodes[i])
    }

    /// Renders the tree as an indented outline — deterministic, since
    /// traversal order is `(level, ident)` at every node.
    pub fn render(&self) -> String {
        fn walk(tree: &SpanTree, node: &SpanNode, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let close = node
                .close_at
                .map_or("open".to_owned(), |at| format!("{}us", at.as_micros()));
            let _ = writeln!(
                out,
                "{:indent$}{} {} [{} .. {close}] events={}",
                "",
                node.level,
                node.ident,
                node.open_at.as_micros(),
                node.events,
                indent = depth * 2
            );
            for child in tree.children(node) {
                walk(tree, child, depth + 1, out);
            }
        }
        let mut out = String::new();
        for root in self.roots() {
            walk(self, root, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_pure_and_level_tagged() {
        assert_eq!(job_span(0), job_span(0));
        assert_ne!(job_span(1), job_span(2));
        assert_eq!(level_of(job_span(7)), Some(SpanLevel::Job));
        assert_eq!(level_of(lane_span(2)), Some(SpanLevel::Lane));
        assert_eq!(level_of(chip_span(ChipId(9))), Some(SpanLevel::Chip));
        assert_eq!(level_of(batch_span(ChipId(9), 3)), Some(SpanLevel::Batch));
        assert_eq!(level_of(ROOT), None);
        // Distinct chips and batches never collide.
        assert_ne!(batch_span(ChipId(1), 0), batch_span(ChipId(0), 1));
        for chip in 0..16 {
            assert_eq!(lane_of(ChipId(chip)), chip % LANES);
        }
    }

    fn open(id: u64, parent: u64, level: SpanLevel, ident: u64) -> TelemetryEvent {
        TelemetryEvent::SpanOpen {
            at: SimTime::ZERO,
            id,
            parent,
            level,
            ident,
        }
    }

    fn close(id: u64, events: u64) -> TelemetryEvent {
        TelemetryEvent::SpanClose {
            at: SimTime::from_millis(1),
            id,
            events,
        }
    }

    #[test]
    fn tree_reconstructs_by_links_not_stream_order() {
        let chip0 = ChipId(0);
        // Same lane as chip 0 under LANES=4; stream order deliberately
        // scrambled — children before parents.
        let chip4 = ChipId(4);
        let events = vec![
            open(batch_span(chip0, 0), chip_span(chip0), SpanLevel::Batch, 0),
            close(batch_span(chip0, 0), 5),
            open(chip_span(chip4), lane_span(0), SpanLevel::Chip, 4),
            open(chip_span(chip0), lane_span(0), SpanLevel::Chip, 0),
            open(lane_span(0), job_span(0), SpanLevel::Lane, 0),
            open(job_span(0), ROOT, SpanLevel::Job, 0),
            close(chip_span(chip0), 6),
            close(chip_span(chip4), 9),
            close(lane_span(0), 15),
            close(job_span(0), 15),
        ];
        let tree = SpanTree::from_events(&events);
        assert_eq!(tree.len(), 5);
        let roots: Vec<&SpanNode> = tree.roots().collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].level, SpanLevel::Job);
        let lane = tree.children(roots[0]).next().unwrap();
        assert_eq!(lane.level, SpanLevel::Lane);
        let chips: Vec<u64> = tree.children(lane).map(|c| c.ident).collect();
        assert_eq!(chips, vec![0, 4], "children sorted by ident");
        let chip = tree.find(chip_span(chip0)).unwrap();
        assert_eq!(chip.events, 6);
        assert_eq!(chip.close_at, Some(SimTime::from_millis(1)));
        let batch = tree.children(chip).next().unwrap();
        assert_eq!(batch.level, SpanLevel::Batch);
        let rendered = tree.render();
        assert!(rendered.contains("job 0"));
        assert!(rendered.contains("  lane 0"));
        assert!(rendered.contains("    chip 4"));
    }

    #[test]
    fn orphans_and_unclosed_spans_survive() {
        let events = vec![open(chip_span(ChipId(3)), lane_span(3), SpanLevel::Chip, 3)];
        let tree = SpanTree::from_events(&events);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.roots().count(), 1, "orphan promoted to root");
        let node = tree.find(chip_span(ChipId(3))).unwrap();
        assert_eq!(node.close_at, None);
        assert!(tree.render().contains("open"));
        assert!(SpanTree::from_events(&[]).is_empty());
    }
}
