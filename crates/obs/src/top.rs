//! The terminal dashboard renderer behind `repro fleetd top`.
//!
//! Pure function of two metrics snapshots: the caller polls the daemon,
//! parses each scrape into a [`PromSnapshot`], and hands consecutive
//! pairs here. Rates (chips/s, rollbacks/s, per-worker busy%) come from
//! counter/gauge deltas over the poll interval; on the first frame there
//! is no previous snapshot and rates render as `-`. The renderer emits
//! plain text — the CLI owns the ANSI clear-screen framing — so it is
//! trivially testable.

use crate::names;
use crate::prom::{metric_name, PromSnapshot};

/// Width of the ASCII busy-bar.
const BAR_WIDTH: usize = 10;

fn prom(name: &str) -> String {
    metric_name(names::PROM_PREFIX, name)
}

fn int(snapshot: &PromSnapshot, name: &str) -> String {
    match snapshot.value(&prom(name)) {
        Some(v) => format!("{}", v as u64),
        None => "-".to_owned(),
    }
}

/// Per-second delta of `name` between snapshots, clamped non-negative
/// (a daemon restart resets counters; a negative rate is noise).
fn rate(prev: Option<&PromSnapshot>, cur: &PromSnapshot, name: &str, dt_s: f64) -> Option<f64> {
    let prev = prev?;
    if dt_s <= 0.0 {
        return None;
    }
    let name = prom(name);
    let delta = cur.value(&name)? - prev.value(&name)?;
    Some((delta / dt_s).max(0.0))
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{r:.1}"),
        None => "-".to_owned(),
    }
}

fn busy_bar(fraction: f64) -> String {
    let filled = ((fraction * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
    let mut bar = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        bar.push(if i < filled { '#' } else { '.' });
    }
    bar
}

/// Renders one dashboard frame from the current scrape `cur`, the
/// previous scrape `prev` (if any), and the seconds `dt_s` between them.
pub fn render_top(prev: Option<&PromSnapshot>, cur: &PromSnapshot, dt_s: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    let uptime = cur.value(&prom(names::UPTIME_SECONDS)).unwrap_or(0.0);
    let _ = writeln!(out, "vs-fleetd  up {uptime:.0}s  (poll {dt_s:.1}s)");
    let _ = writeln!(
        out,
        "jobs     running {:>3}  queued {:>3}  submitted {:>5}  done {:>5}  \
         failed {:>3}  cancelled {:>3}  rejected {:>3}",
        int(cur, names::JOBS_RUNNING),
        int(cur, names::JOBS_QUEUED),
        int(cur, names::JOBS_SUBMITTED),
        int(cur, names::JOBS_COMPLETED),
        int(cur, names::JOBS_FAILED),
        int(cur, names::JOBS_CANCELLED),
        int(cur, names::JOBS_REJECTED),
    );
    let _ = writeln!(
        out,
        "rate     chips/s {:>6}  rollbacks/s {:>6}  violations {:>4}  postmortems {:>3}",
        fmt_rate(rate(prev, cur, names::CHIPS_COMPLETED, dt_s)),
        fmt_rate(rate(prev, cur, names::ROLLBACKS, dt_s)),
        int(cur, names::VIOLATIONS),
        int(cur, names::POSTMORTEMS),
    );

    // Per-worker busy%: cumulative busy-seconds gauges, differentiated
    // over the poll window.
    let busy_prefix = prom("fleetd.worker");
    let mut workers: Vec<(String, f64)> = cur
        .with_prefix(&busy_prefix)
        .filter(|(n, _)| n.ends_with("_busy_seconds"))
        .map(|(n, v)| (n.to_owned(), v))
        .collect();
    workers.sort_by(|a, b| a.0.cmp(&b.0));
    if !workers.is_empty() {
        let _ = write!(out, "workers ");
        for (i, (name, cur_busy)) in workers.iter().enumerate() {
            let pct = match (prev.and_then(|p| p.value(name)), dt_s > 0.0) {
                (Some(prev_busy), true) => Some(((cur_busy - prev_busy) / dt_s).clamp(0.0, 1.0)),
                _ => None,
            };
            match pct {
                Some(f) => {
                    let _ = write!(out, "  w{i} {} {:>3.0}%", busy_bar(f), f * 100.0);
                }
                None => {
                    let _ = write!(out, "  w{i} {} {:>4}", busy_bar(0.0), "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::render_prometheus;
    use vs_telemetry::MetricsRegistry;

    fn snapshot(chips: u64, busy0: f64) -> PromSnapshot {
        let mut r = MetricsRegistry::new();
        let c = r.counter(names::CHIPS_COMPLETED);
        r.inc(c, chips);
        let rb = r.counter(names::ROLLBACKS);
        r.inc(rb, chips / 2);
        let sub = r.counter(names::JOBS_SUBMITTED);
        r.inc(sub, 3);
        let run = r.gauge(names::JOBS_RUNNING);
        r.set(run, 2.0);
        let q = r.gauge(names::JOBS_QUEUED);
        r.set(q, 1.0);
        let up = r.gauge(names::UPTIME_SECONDS);
        r.set(up, 12.0);
        let b0 = r.gauge(&names::worker_busy(0));
        r.set(b0, busy0);
        let b1 = r.gauge(&names::worker_busy(1));
        r.set(b1, 0.0);
        PromSnapshot::parse(&render_prometheus(&r, names::PROM_PREFIX)).unwrap()
    }

    #[test]
    fn first_frame_renders_dashes_for_rates() {
        let frame = render_top(None, &snapshot(10, 1.0), 2.0);
        assert!(frame.contains("running   2"));
        assert!(frame.contains("queued   1"));
        assert!(frame.contains("chips/s      -"));
        assert!(frame.contains("w0"));
        assert!(frame.contains("w1"));
    }

    #[test]
    fn rates_and_busy_come_from_deltas() {
        let prev = snapshot(10, 1.0);
        let cur = snapshot(20, 2.0);
        let frame = render_top(Some(&prev), &cur, 2.0);
        // 10 chips over 2 s.
        assert!(frame.contains("chips/s    5.0"), "frame:\n{frame}");
        // worker 0 gained 1 busy-second over a 2 s window → 50%.
        assert!(frame.contains("w0 #####.....  50%"), "frame:\n{frame}");
        // worker 1 idle.
        assert!(frame.contains("w1 ..........   0%"), "frame:\n{frame}");
    }

    #[test]
    fn rendering_is_pure() {
        let prev = snapshot(10, 1.0);
        let cur = snapshot(20, 2.0);
        assert_eq!(
            render_top(Some(&prev), &cur, 2.0),
            render_top(Some(&prev), &cur, 2.0)
        );
    }
}
