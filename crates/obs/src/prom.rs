//! Prometheus-style text exposition, hand-rolled and std-only.
//!
//! The encoder walks a [`MetricsRegistry`] and renders the classic
//! `text/plain; version=0.0.4` shape: `# TYPE` comments, cumulative
//! `_bucket{le="..."}` series for histograms, `_sum`/`_count`, and
//! name-sorted output so the same registry renders to the same bytes
//! anywhere. The parser is the inverse half the dashboard and the tests
//! share: it reads a snapshot back into name → value samples without any
//! external crate.

use std::fmt;
use vs_telemetry::{FixedHistogram, MetricsRegistry};

/// Maps a dotted registry instrument name (`"fleet.chips_completed"`)
/// onto a legal Prometheus metric name under `prefix`
/// (`"voltspec_fleet_chips_completed"`). Every character outside
/// `[a-zA-Z0-9_]` becomes `_`.
pub fn metric_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len() + 1);
    for part in [prefix, "_", name] {
        for c in part.chars() {
            out.push(if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            });
        }
    }
    out
}

/// A float in exposition format: shortest round-trip decimal, with the
/// Prometheus spellings for the non-finite values.
struct PromF64(f64);

impl fmt::Display for PromF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_nan() {
            f.write_str("NaN")
        } else if self.0 == f64::INFINITY {
            f.write_str("+Inf")
        } else if self.0 == f64::NEG_INFINITY {
            f.write_str("-Inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Renders `registry` as Prometheus-style exposition text.
///
/// Instruments are emitted name-sorted within each kind (counters, then
/// gauges, then histograms), so output is a deterministic function of the
/// registry's contents. Histogram buckets are cumulative (`le` is the
/// bucket's upper edge; samples below the layout's `lo` count into every
/// bucket, samples at or above `hi` only into `+Inf`), matching how a
/// real Prometheus client library would flatten a [`FixedHistogram`].
pub fn render_prometheus(registry: &MetricsRegistry, prefix: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    let mut counters: Vec<(&str, u64)> = registry.counters().collect();
    counters.sort_by(|a, b| a.0.cmp(b.0));
    for (name, v) in counters {
        let name = metric_name(prefix, name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }

    let mut gauges: Vec<(&str, f64)> = registry.gauges().collect();
    gauges.sort_by(|a, b| a.0.cmp(b.0));
    for (name, v) in gauges {
        let name = metric_name(prefix, name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", PromF64(v));
    }

    let mut histograms: Vec<(&str, &FixedHistogram)> = registry.histograms().collect();
    histograms.sort_by(|a, b| a.0.cmp(b.0));
    for (name, h) in histograms {
        let name = metric_name(prefix, name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        // Underflow samples are below every finite edge, so they seed the
        // cumulative count.
        let mut cumulative = h.underflow;
        for (_, hi, c) in h.bins() {
            cumulative += c;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", PromF64(hi));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", PromF64(h.sum));
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// Why a snapshot failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum PromParseError {
    /// A non-comment line did not split into `name value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for PromParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromParseError::Malformed { line, text } => {
                write!(f, "malformed exposition line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for PromParseError {}

/// One parsed sample: name, raw label block (`""` when unlabeled), value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The metric name.
    pub name: String,
    /// The raw text between `{` and `}` (`le="0.05"`), empty if none.
    pub labels: String,
    /// The sample value.
    pub value: f64,
}

/// A parsed metrics snapshot: what `repro fleetd top` polls and what the
/// golden tests assert against.
#[derive(Debug, Clone, Default)]
pub struct PromSnapshot {
    samples: Vec<PromSample>,
}

impl PromSnapshot {
    /// Parses exposition text. `# ...` comments and blank lines are
    /// skipped; everything else must be `name[{labels}] value`.
    pub fn parse(text: &str) -> Result<PromSnapshot, PromParseError> {
        let mut samples = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let malformed = || PromParseError::Malformed {
                line: i + 1,
                text: raw.to_owned(),
            };
            let (head, value) = line.rsplit_once(' ').ok_or_else(malformed)?;
            let value = match value {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                "NaN" => f64::NAN,
                v => v.parse::<f64>().map_err(|_| malformed())?,
            };
            let (name, labels) = match head.split_once('{') {
                Some((name, rest)) => {
                    let labels = rest.strip_suffix('}').ok_or_else(malformed)?;
                    (name, labels)
                }
                None => (head, ""),
            };
            if name.is_empty() {
                return Err(malformed());
            }
            samples.push(PromSample {
                name: name.to_owned(),
                labels: labels.to_owned(),
                value,
            });
        }
        Ok(PromSnapshot { samples })
    }

    /// All samples, in exposition order.
    pub fn samples(&self) -> impl Iterator<Item = &PromSample> {
        self.samples.iter()
    }

    /// The value of the unlabeled sample `name`.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The value of the sample `name` carrying exactly `labels`.
    pub fn labeled(&self, name: &str, labels: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.value)
    }

    /// Unlabeled samples whose name starts with `prefix`, in exposition
    /// order (the dashboard enumerates per-worker gauges this way).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, f64)> {
        self.samples
            .iter()
            .filter(move |s| s.labels.is_empty() && s.name.starts_with(prefix))
            .map(|s| (s.name.as_str(), s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_under_a_prefix() {
        assert_eq!(
            metric_name("voltspec", "fleet.chips_completed"),
            "voltspec_fleet_chips_completed"
        );
        assert_eq!(metric_name("x", "a-b c"), "x_a_b_c");
    }

    #[test]
    fn encoder_and_parser_round_trip() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("fleet.chips_completed");
        r.inc(c, 42);
        let g = r.gauge("fleetd.jobs_running");
        r.set(g, 2.0);
        let h = r.histogram("monitor.error_rate", 0.0, 1.0, 4);
        r.observe(h, -0.5); // underflow
        r.observe(h, 0.1);
        r.observe(h, 0.6);
        r.observe(h, 2.0); // overflow

        let text = render_prometheus(&r, "voltspec");
        assert!(text.contains("# TYPE voltspec_fleet_chips_completed counter\n"));
        assert!(text.contains("voltspec_fleet_chips_completed 42\n"));
        assert!(text.contains("# TYPE voltspec_monitor_error_rate histogram\n"));

        let snap = PromSnapshot::parse(&text).unwrap();
        assert_eq!(snap.value("voltspec_fleet_chips_completed"), Some(42.0));
        assert_eq!(snap.value("voltspec_fleetd_jobs_running"), Some(2.0));
        // Cumulative buckets: underflow counts everywhere, overflow only
        // at +Inf.
        assert_eq!(
            snap.labeled("voltspec_monitor_error_rate_bucket", "le=\"0.25\""),
            Some(2.0)
        );
        assert_eq!(
            snap.labeled("voltspec_monitor_error_rate_bucket", "le=\"1\""),
            Some(3.0)
        );
        assert_eq!(
            snap.labeled("voltspec_monitor_error_rate_bucket", "le=\"+Inf\""),
            Some(4.0)
        );
        assert_eq!(snap.value("voltspec_monitor_error_rate_count"), Some(4.0));
        let names: Vec<&str> = snap
            .with_prefix("voltspec_fleetd_")
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["voltspec_fleetd_jobs_running"]);
    }

    #[test]
    fn rendering_is_deterministic_and_sorted() {
        let mut r = MetricsRegistry::new();
        let b = r.counter("b.second");
        let a = r.counter("a.first");
        r.inc(b, 1);
        r.inc(a, 2);
        let text = render_prometheus(&r, "p");
        let first = text.find("p_a_first").unwrap();
        let second = text.find("p_b_second").unwrap();
        assert!(first < second, "counters render name-sorted");
        assert_eq!(text, render_prometheus(&r, "p"));
    }

    #[test]
    fn parser_rejects_garbage_with_a_typed_error() {
        assert!(PromSnapshot::parse("# just a comment\n\n")
            .unwrap()
            .samples
            .is_empty());
        let err = PromSnapshot::parse("no_value_here\n").unwrap_err();
        assert!(matches!(err, PromParseError::Malformed { line: 1, .. }));
        assert!(PromSnapshot::parse("x not_a_number\n").is_err());
        assert_eq!(
            PromSnapshot::parse("up +Inf\n").unwrap().value("up"),
            Some(f64::INFINITY)
        );
    }
}
