//! The live observability plane for the voltage-speculation fleet.
//!
//! The paper's whole premise is a feedback loop you can *watch*: ECC
//! correction counts stream out of the hardware, the controller reacts,
//! and the margin you saved is visible in the telemetry. This crate
//! gives the simulation stack the matching operational feedback loop —
//! three layers, all std-only and all built on the determinism contract
//! (per-chip event streams are pure functions of `(config, chip,
//! filter)`; nothing here may perturb them):
//!
//! * **Metrics exposition** ([`render_prometheus`], [`PromSnapshot`],
//!   [`names`]) — a hand-rolled Prometheus text encoder over
//!   [`vs_telemetry::MetricsRegistry`], plus the matching parser the
//!   dashboard and the golden tests share. Deterministic: name-sorted
//!   output, shortest-round-trip floats, cumulative histogram buckets.
//! * **Causal span model** ([`span`]) — deterministic span ids for the
//!   job → lane → chip → tick-batch hierarchy and [`SpanTree`]
//!   reconstruction from a merged trace. Span ids are pure functions of
//!   position in the hierarchy (the "lane" is `chip mod LANES`, never
//!   the physical worker), and causality rides in explicit `id`/`parent`
//!   links, so the same tree reconstructs under any `--workers` count.
//! * **Crash flight recorder** ([`flight`]) — fixed-window postmortem
//!   bundles ([`PostmortemBundle`]) dumped on sentinel violations,
//!   worker panics, and watchdog cancellations, written with the
//!   vs-guard journal discipline (per-line CRC32 frames, temp + fsync +
//!   rename) so a bundle either exists intact or not at all.
//!
//! [`top`] renders the `repro fleetd top` terminal dashboard from pairs
//! of parsed metrics snapshots.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod names;
mod prom;
pub mod span;
pub mod top;

pub use flight::{
    read_bundle, write_bundle, BundleError, PostmortemBundle, PostmortemTrigger,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use prom::{metric_name, render_prometheus, PromParseError, PromSample, PromSnapshot};
pub use span::{SpanNode, SpanTree};
pub use top::render_top;
