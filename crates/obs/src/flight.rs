//! The crash flight recorder: postmortem bundles written with the
//! vs-guard journal discipline.
//!
//! When a run dies interestingly — a sentinel invariant fires, a worker
//! panics past its retries, the watchdog cancels a hung attempt — the
//! last events of the affected chip plus the run's identity are dumped
//! as a *postmortem bundle*: a line-oriented file in which every line is
//! CRC32-framed ([`vs_guard::frame`]) and the whole file is written
//! temp-then-rename with fsync, so a bundle either exists intact or not
//! at all, and bit rot is detected rather than mis-parsed.
//!
//! Bundle contents are a pure function of (config, fault plan, chip):
//! event lines come from the chip's deterministic stream, violations are
//! sorted upstream, and file names are derived from the config
//! fingerprint — so two runs of the same job produce byte-identical
//! bundles under any worker count, which CI checks.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use vs_guard::{frame, unframe, FrameError};
use vs_telemetry::TelemetryEvent;

/// Default flight-recorder ring capacity: the last N events per chip
/// kept for a postmortem. Small enough to dump instantly, large enough
/// to hold the whole causal neighborhood of a violation.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What dumped the bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostmortemTrigger {
    /// A sentinel safety invariant fired on the chip.
    Violation,
    /// The chip's worker panicked on every attempt (the chip was
    /// quarantined). Event lines are absent: the attempt's recorder
    /// died with it, and inventing a partial stream would break the
    /// bundle's determinism guarantee.
    Panic,
    /// The wall-clock watchdog cancelled at least one attempt.
    Watchdog,
}

impl PostmortemTrigger {
    /// Stable lowercase label (used in file names and the header line).
    pub fn label(self) -> &'static str {
        match self {
            PostmortemTrigger::Violation => "violation",
            PostmortemTrigger::Panic => "panic",
            PostmortemTrigger::Watchdog => "watchdog",
        }
    }

    /// Parses a label produced by [`PostmortemTrigger::label`].
    pub fn parse(s: &str) -> Option<PostmortemTrigger> {
        [
            PostmortemTrigger::Violation,
            PostmortemTrigger::Panic,
            PostmortemTrigger::Watchdog,
        ]
        .into_iter()
        .find(|t| t.label() == s)
    }
}

impl fmt::Display for PostmortemTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One postmortem flight-recorder bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemBundle {
    /// What dumped it.
    pub trigger: PostmortemTrigger,
    /// The chip the trigger concerned.
    pub chip: u64,
    /// The run's [`FleetConfig::fingerprint`] (which already folds in
    /// the fault-plan digest when a plan is armed).
    ///
    /// [`FleetConfig::fingerprint`]: ../vs_fleet/struct.FleetConfig.html
    pub fingerprint: u64,
    /// Human context: the violation summary, panic error, or watchdog
    /// note.
    pub detail: String,
    /// Events the flight ring overwrote before the dump (0 when the
    /// whole stream fit).
    pub dropped: u64,
    /// Violation descriptions, chip-sorted upstream.
    pub violations: Vec<String>,
    /// The retained event window, serialized — one
    /// [`TelemetryEvent::write_json`] object per entry, oldest first.
    pub events: Vec<String>,
}

impl PostmortemBundle {
    /// An empty bundle for `trigger` on `chip`.
    pub fn new(trigger: PostmortemTrigger, chip: u64, fingerprint: u64) -> PostmortemBundle {
        PostmortemBundle {
            trigger,
            chip,
            fingerprint,
            detail: String::new(),
            dropped: 0,
            violations: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Serializes and appends one event to the retained window.
    pub fn push_event(&mut self, event: &TelemetryEvent) {
        let mut line = String::new();
        event.write_json(&mut line);
        self.events.push(line);
    }

    /// The bundle's deterministic file name:
    /// `pm-<fingerprint>-chip<chip>-<trigger>.bundle`.
    pub fn file_name(&self) -> String {
        format!(
            "pm-{:016x}-chip{}-{}.bundle",
            self.fingerprint, self.chip, self.trigger
        )
    }

    /// The bundle's payload lines (pre-framing): one header object, one
    /// object per violation, one object per event.
    pub fn to_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(1 + self.violations.len() + self.events.len());
        lines.push(format!(
            "{{\"postmortem\":1,\"trigger\":\"{}\",\"chip\":{},\"fingerprint\":\"{:016x}\",\
             \"detail\":\"{}\",\"dropped\":{},\"violations\":{},\"events\":{}}}",
            self.trigger,
            self.chip,
            self.fingerprint,
            escape_json(&self.detail),
            self.dropped,
            self.violations.len(),
            self.events.len()
        ));
        for v in &self.violations {
            lines.push(format!("{{\"violation\":\"{}\"}}", escape_json(v)));
        }
        lines.extend(self.events.iter().cloned());
        lines
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Un-escapes what [`escape_json`] produced.
fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Extracts a string field from one flat JSON object line (the bundle's
/// own header shape — not a general JSON parser).
fn json_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(unescape_json(&rest[..end])),
            _ => end += 1,
        }
    }
    None
}

/// Extracts an unsigned integer field from one flat JSON object line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Why a bundle failed to load.
#[derive(Debug)]
pub enum BundleError {
    /// The file could not be read.
    Io(io::Error),
    /// A line failed its CRC frame (`1-based` line number attached).
    Frame {
        /// 1-based line number of the bad frame.
        line: usize,
        /// The frame-level failure.
        error: FrameError,
    },
    /// The frames decoded but the content is not a bundle.
    Malformed(String),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle unreadable: {e}"),
            BundleError::Frame { line, error } => {
                write!(f, "bundle line {line} fails its frame: {error}")
            }
            BundleError::Malformed(msg) => write!(f, "malformed bundle: {msg}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<io::Error> for BundleError {
    fn from(e: io::Error) -> BundleError {
        BundleError::Io(e)
    }
}

/// Writes `bundle` into `dir` (created if needed) crash-safely: every
/// line CRC-framed, content flushed and fsynced to a unique temp file,
/// then renamed into place and the directory fsynced. Returns the final
/// path. An existing bundle of the same name is replaced atomically —
/// re-running the same job re-dumps the identical bytes.
pub fn write_bundle(dir: &Path, bundle: &PostmortemBundle) -> io::Result<PathBuf> {
    write_bundle_on(&vs_guard::vfs::std_fs(), dir, bundle)
}

/// [`write_bundle`] against an explicit filesystem backend — the seam
/// the crash-consistency checker records through.
pub fn write_bundle_on(
    vfs: &vs_guard::vfs::VfsHandle,
    dir: &Path,
    bundle: &PostmortemBundle,
) -> io::Result<PathBuf> {
    use vs_guard::vfs::OpenMode;
    vfs.create_dir_all(dir)?;
    let path = dir.join(bundle.file_name());
    let tag = vfs
        .temp_tag()
        .unwrap_or_else(|| std::process::id().to_string());
    let tmp = dir.join(format!(".{}.tmp.{}", bundle.file_name(), tag));
    let mut text = String::new();
    for line in bundle.to_lines() {
        text.push_str(&frame(&line));
        text.push('\n');
    }
    // FaultyFs consultation (keyed on the final path): a failed bundle
    // write degrades gracefully upstream — the runner records the loss
    // in the degradation report instead of failing the job.
    let fault = vfs.faults().write_fault(&path, text.len())?;
    let mut file = vfs.open_write(&tmp, OpenMode::Truncate)?;
    match fault {
        vs_guard::fsfault::WriteFault::Intact => file.write_all(text.as_bytes())?,
        vs_guard::fsfault::WriteFault::Short(n) => {
            file.write_all(&text.as_bytes()[..n])?;
            let _ = file.sync();
            drop(file);
            let _ = vfs.remove_file(&tmp);
            return Err(vs_guard::fsfault::short_write_error());
        }
    }
    vfs.faults().sync_fault(&path)?;
    file.flush()?;
    file.sync()?;
    drop(file);
    vfs.rename(&tmp, &path)?;
    // Make the rename itself durable.
    let _ = vfs.sync_dir(dir);
    Ok(path)
}

/// Reads a bundle back, verifying every line's CRC frame and the header
/// section counts.
pub fn read_bundle(path: &Path) -> Result<PostmortemBundle, BundleError> {
    let text = fs::read_to_string(path)?;
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let payload = unframe(raw).map_err(|error| BundleError::Frame { line: i + 1, error })?;
        lines.push(payload.to_owned());
    }
    let header = lines
        .first()
        .ok_or_else(|| BundleError::Malformed("empty bundle".into()))?;
    if json_u64(header, "postmortem") != Some(1) {
        return Err(BundleError::Malformed(
            "header is not a postmortem v1 object".into(),
        ));
    }
    let trigger = json_str(header, "trigger")
        .and_then(|t| PostmortemTrigger::parse(&t))
        .ok_or_else(|| BundleError::Malformed("missing or unknown trigger".into()))?;
    let chip =
        json_u64(header, "chip").ok_or_else(|| BundleError::Malformed("missing chip".into()))?;
    let fingerprint = json_str(header, "fingerprint")
        .and_then(|h| u64::from_str_radix(&h, 16).ok())
        .ok_or_else(|| BundleError::Malformed("missing fingerprint".into()))?;
    let detail = json_str(header, "detail").unwrap_or_default();
    let dropped = json_u64(header, "dropped").unwrap_or(0);
    let n_violations = json_u64(header, "violations").unwrap_or(0) as usize;
    let n_events = json_u64(header, "events").unwrap_or(0) as usize;
    let body = &lines[1..];
    if body.len() != n_violations + n_events {
        return Err(BundleError::Malformed(format!(
            "header promises {n_violations}+{n_events} lines, found {}",
            body.len()
        )));
    }
    let violations = body[..n_violations]
        .iter()
        .map(|l| {
            json_str(l, "violation")
                .ok_or_else(|| BundleError::Malformed("violation line without text".into()))
        })
        .collect::<Result<Vec<String>, BundleError>>()?;
    Ok(PostmortemBundle {
        trigger,
        chip,
        fingerprint,
        detail,
        dropped,
        violations,
        events: body[n_violations..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_types::{ChipId, DomainId, SimTime};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-obs-flight-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_bundle() -> PostmortemBundle {
        let mut b = PostmortemBundle::new(PostmortemTrigger::Violation, 3, 0x3b3f_2ca3_afa0_a1d2);
        b.detail = "rollback-raises chip3 d0 @1000us: \"quoted\"\nsecond line".into();
        b.dropped = 7;
        b.violations
            .push("rollback-raises chip3 d0 @1000us: requested 705 mV".into());
        b.push_event(&TelemetryEvent::DueConsumed {
            at: SimTime::from_millis(1),
            domain: DomainId(0),
            rollback_mv: 705,
            safe_mv: 710,
        });
        b.push_event(&TelemetryEvent::JobFinished {
            chip: ChipId(3),
            sim_time: SimTime::from_millis(500),
            correctable: 12,
            emergencies: 0,
            crashes: 0,
        });
        b
    }

    #[test]
    fn bundle_round_trips_byte_exactly() {
        let dir = scratch("round-trip");
        let bundle = sample_bundle();
        let path = write_bundle(&dir, &bundle).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "pm-3b3f2ca3afa0a1d2-chip3-violation.bundle"
        );
        let loaded = read_bundle(&path).unwrap();
        assert_eq!(loaded, bundle);

        // Re-writing the identical bundle leaves identical bytes.
        let before = fs::read(&path).unwrap();
        write_bundle(&dir, &bundle).unwrap();
        assert_eq!(fs::read(&path).unwrap(), before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_not_misparsed() {
        let dir = scratch("corrupt");
        let path = write_bundle(&dir, &sample_bundle()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match read_bundle(&path) {
            Err(BundleError::Frame { line, .. }) => assert!(line >= 1),
            other => panic!("corruption must surface as a frame error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_is_detected_by_section_counts() {
        let dir = scratch("truncated");
        let path = write_bundle(&dir, &sample_bundle()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(2).collect();
        fs::write(&path, kept.join("\n")).unwrap();
        assert!(matches!(read_bundle(&path), Err(BundleError::Malformed(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metadata_only_bundles_are_valid() {
        let dir = scratch("panic");
        let mut b = PostmortemBundle::new(PostmortemTrigger::Panic, 5, 0xdead_beef);
        b.detail = "worker panic on every attempt: injected panic (chip 5)".into();
        let path = write_bundle(&dir, &b).unwrap();
        let loaded = read_bundle(&path).unwrap();
        assert_eq!(loaded.trigger, PostmortemTrigger::Panic);
        assert!(loaded.events.is_empty());
        assert!(loaded.violations.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
