//! The passive power-delivery network.

/// Electrical parameters of one domain's delivery network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnParams {
    /// Residual static (DC) resistance from regulator to array, in
    /// milliohms. Small because the regulator's remote sensing compensates
    /// most of the DC path drop (voltage positioning); what remains is the
    /// on-die grid below the sense point.
    pub r_static_mohm: f64,
    /// Resonance frequency of the package/die network, in hertz.
    ///
    /// The default places the resonance where a 340 MHz FMA/NOP virus with
    /// 8 NOPs oscillates: one loop iteration is ~13 high-power cycles plus
    /// the NOPs, so `f_osc = 340 MHz / (13 + 8) ≈ 16.2 MHz` — reproducing
    /// the error-count spike of the paper's Figure 15 at NOP-8.
    pub resonance_hz: f64,
    /// Quality factor of the resonance (sharpness of the peak).
    pub q_factor: f64,
    /// Peak AC impedance at resonance, in milliohms.
    pub z_peak_mohm: f64,
    /// Impedance presented to a sudden (step) load change, in milliohms —
    /// the "first droop" seen on abrupt activity transitions.
    pub z_transient_mohm: f64,
}

impl Default for PdnParams {
    fn default() -> PdnParams {
        PdnParams {
            r_static_mohm: 0.4,
            resonance_hz: 340.0e6 / 21.0,
            q_factor: 5.0,
            z_peak_mohm: 14.0,
            z_transient_mohm: 3.0,
        }
    }
}

/// The passive network: converts load currents into voltage drops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pdn {
    params: PdnParams,
}

impl Default for Pdn {
    fn default() -> Pdn {
        Pdn::new(PdnParams::default())
    }
}

impl Pdn {
    /// Creates a network from parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(params: PdnParams) -> Pdn {
        assert!(
            params.r_static_mohm > 0.0,
            "static resistance must be positive"
        );
        assert!(params.resonance_hz > 0.0, "resonance must be positive");
        assert!(params.q_factor > 0.0, "Q must be positive");
        assert!(params.z_peak_mohm > 0.0, "peak impedance must be positive");
        assert!(
            params.z_transient_mohm > 0.0,
            "transient impedance must be positive"
        );
        Pdn { params }
    }

    /// The parameters.
    pub fn params(&self) -> &PdnParams {
        &self.params
    }

    /// Static IR drop for a DC load current, in millivolts.
    pub fn ir_drop_mv(&self, i_dc_amps: f64) -> f64 {
        self.params.r_static_mohm * i_dc_amps.max(0.0)
    }

    /// Magnitude of the resonant AC impedance at frequency `f_hz`, in
    /// milliohms. This is the classic second-order band-pass response:
    /// near zero at DC, peaking at the resonance, rolling off above it.
    pub fn ac_impedance_mohm(&self, f_hz: f64) -> f64 {
        if f_hz <= 0.0 {
            return 0.0;
        }
        let p = &self.params;
        let detune = f_hz / p.resonance_hz - p.resonance_hz / f_hz;
        p.z_peak_mohm / (1.0 + (p.q_factor * detune).powi(2)).sqrt()
    }

    /// Depth of the AC droop (peak deviation below the DC level) for a load
    /// oscillating with amplitude `i_ac_amps` at `f_hz`, in millivolts.
    pub fn ac_droop_mv(&self, i_ac_amps: f64, f_hz: f64) -> f64 {
        self.ac_impedance_mohm(f_hz) * i_ac_amps.max(0.0)
    }

    /// First-droop depth for a sudden load step of `delta_i_amps`, in
    /// millivolts.
    pub fn transient_droop_mv(&self, delta_i_amps: f64) -> f64 {
        self.params.z_transient_mohm * delta_i_amps.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_drop_linear_in_current() {
        let pdn = Pdn::default();
        assert_eq!(pdn.ir_drop_mv(0.0), 0.0);
        let d4 = pdn.ir_drop_mv(4.0);
        let d8 = pdn.ir_drop_mv(8.0);
        assert!((d8 - 2.0 * d4).abs() < 1e-12);
        assert_eq!(pdn.ir_drop_mv(-3.0), 0.0, "negative current clamps");
    }

    #[test]
    fn impedance_peaks_at_resonance() {
        let pdn = Pdn::default();
        let f0 = pdn.params().resonance_hz;
        let at_res = pdn.ac_impedance_mohm(f0);
        assert!((at_res - pdn.params().z_peak_mohm).abs() < 1e-9);
        for f in [f0 / 10.0, f0 / 2.0, f0 * 2.0, f0 * 10.0] {
            assert!(
                pdn.ac_impedance_mohm(f) < at_res,
                "off-resonance impedance must be below the peak"
            );
        }
    }

    #[test]
    fn impedance_vanishes_at_dc() {
        let pdn = Pdn::default();
        assert_eq!(pdn.ac_impedance_mohm(0.0), 0.0);
        assert!(pdn.ac_impedance_mohm(10.0) < 0.1);
    }

    #[test]
    fn sharper_q_narrows_the_peak() {
        let mut p = PdnParams::default();
        let broad = Pdn::new(PdnParams { q_factor: 2.0, ..p });
        p.q_factor = 20.0;
        let sharp = Pdn::new(p);
        let f_off = p.resonance_hz * 1.3;
        assert!(sharp.ac_impedance_mohm(f_off) < broad.ac_impedance_mohm(f_off));
    }

    #[test]
    fn droops_scale_with_current() {
        let pdn = Pdn::default();
        let f0 = pdn.params().resonance_hz;
        assert!(pdn.ac_droop_mv(2.0, f0) > pdn.ac_droop_mv(1.0, f0));
        assert!(pdn.transient_droop_mv(3.0) > pdn.transient_droop_mv(1.0));
        assert_eq!(pdn.ac_droop_mv(-1.0, f0), 0.0);
        assert_eq!(pdn.transient_droop_mv(-1.0), 0.0);
    }

    #[test]
    fn resonant_droop_beats_stronger_dc_load() {
        // The paper's key observation (Fig. 15/16): a *weaker* virus
        // oscillating at resonance droops more than a stronger one at a
        // different frequency.
        let pdn = Pdn::default();
        let at_resonance = pdn.ac_droop_mv(2.0, pdn.params().resonance_hz);
        let stronger_off = pdn.ac_droop_mv(4.0, pdn.params().resonance_hz * 4.0);
        assert!(at_resonance > stronger_off);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_params_rejected() {
        Pdn::new(PdnParams {
            r_static_mohm: 0.0,
            ..PdnParams::default()
        });
    }
}
