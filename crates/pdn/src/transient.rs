//! Time-domain droop simulation.
//!
//! The control-plane model uses the frequency-domain shortcuts in
//! [`crate::Pdn`] (resonant magnitude response, first-droop impedance).
//! This module integrates the underlying second-order circuit directly —
//! a series R-L feeding the on-die capacitance, with the die drawing a
//! current waveform — so the shortcuts can be validated against the
//! physics they abbreviate (and so users can inspect actual droop
//! waveforms).
//!
//! The equivalent circuit:
//!
//! ```text
//!    Vreg ──R──L──┬──── v(t)   (die voltage)
//!                 C
//!                 └──── i_load(t) drawn by the die
//! ```
//!
//! with `dv/dt = (i_L − i_load)/C` and `di_L/dt = (Vreg − v − R·i_L)/L`.

use crate::network::PdnParams;

/// Second-order circuit element values derived from [`PdnParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitValues {
    /// Series resistance, in ohms.
    pub r_ohm: f64,
    /// Series (package) inductance, in henries.
    pub l_henry: f64,
    /// Die capacitance, in farads.
    pub c_farad: f64,
}

impl CircuitValues {
    /// Derives R, L, C from the behavioural parameters: the resonance
    /// frequency fixes `LC`, and the peak impedance (≈ characteristic
    /// impedance boosted by Q) fixes their ratio.
    pub fn from_params(params: &PdnParams) -> CircuitValues {
        let w0 = std::f64::consts::TAU * params.resonance_hz;
        // Z0 = sqrt(L/C); at resonance the parallel-resonant peak is about
        // Q * Z0 with Q = Z0 / R.
        let r_ohm = params.r_static_mohm * 1.0e-3;
        let z0 = (params.z_peak_mohm * 1.0e-3 / params.q_factor).max(1.0e-6);
        let l_henry = z0 / w0;
        let c_farad = 1.0 / (z0 * w0);
        CircuitValues {
            r_ohm,
            l_henry,
            c_farad,
        }
    }

    /// The natural (resonance) frequency of these values, in hertz.
    pub fn resonance_hz(&self) -> f64 {
        1.0 / (std::f64::consts::TAU * (self.l_henry * self.c_farad).sqrt())
    }
}

/// A time-domain droop simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSim {
    values: CircuitValues,
    /// Regulator voltage, in volts.
    v_reg: f64,
    /// Die voltage state, in volts.
    v_die: f64,
    /// Inductor current state, in amperes.
    i_l: f64,
}

impl TransientSim {
    /// Creates a simulation settled at `v_reg_volts` with a steady
    /// `i_idle_amps` load.
    pub fn new(values: CircuitValues, v_reg_volts: f64, i_idle_amps: f64) -> TransientSim {
        TransientSim {
            values,
            v_reg: v_reg_volts,
            v_die: v_reg_volts - values.r_ohm * i_idle_amps,
            i_l: i_idle_amps,
        }
    }

    /// The current die voltage, in volts.
    pub fn v_die(&self) -> f64 {
        self.v_die
    }

    /// Advances the circuit by `dt_s` with the die drawing `i_load_amps`.
    /// (Semi-implicit Euler; callers should keep `dt` well below the
    /// resonance period.)
    pub fn step(&mut self, i_load_amps: f64, dt_s: f64) {
        let v = &self.values;
        self.i_l += dt_s * (self.v_reg - self.v_die - v.r_ohm * self.i_l) / v.l_henry;
        self.v_die += dt_s * (self.i_l - i_load_amps) / v.c_farad;
    }

    /// Runs a square-wave load (`i_low`/`i_high` alternating at
    /// `f_osc_hz`, 50 % duty) for `cycles` periods and returns the deepest
    /// die voltage seen in the final quarter of the run (steady-state
    /// droop floor).
    pub fn worst_droop_under_square_wave(
        &mut self,
        i_low: f64,
        i_high: f64,
        f_osc_hz: f64,
        cycles: u32,
    ) -> f64 {
        let period = 1.0 / f_osc_hz;
        let dt = period / 400.0;
        let total_steps = (400 * cycles) as usize;
        let mut worst = self.v_die;
        for k in 0..total_steps {
            let phase = (k % 400) as f64 / 400.0;
            let load = if phase < 0.5 { i_high } else { i_low };
            self.step(load, dt);
            if k >= total_steps * 3 / 4 {
                worst = worst.min(self.v_die);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Pdn;

    fn values() -> CircuitValues {
        CircuitValues::from_params(&PdnParams::default())
    }

    #[test]
    fn derived_circuit_hits_the_resonance() {
        let v = values();
        let f0 = PdnParams::default().resonance_hz;
        assert!(
            (v.resonance_hz() - f0).abs() / f0 < 1e-9,
            "LC must reproduce the behavioural resonance"
        );
        assert!(v.l_henry > 0.0 && v.c_farad > 0.0);
    }

    #[test]
    fn dc_settles_to_ir_drop() {
        let v = values();
        let mut sim = TransientSim::new(v, 0.8, 0.0);
        // Step to 5 A and integrate far past the transient.
        let dt = 1.0 / (PdnParams::default().resonance_hz * 400.0);
        for _ in 0..2_000_000 {
            sim.step(5.0, dt);
        }
        let expected = 0.8 - v.r_ohm * 5.0;
        assert!(
            (sim.v_die() - expected).abs() < 2.0e-4,
            "DC operating point: {} vs {}",
            sim.v_die(),
            expected
        );
    }

    #[test]
    fn resonant_square_wave_droops_deepest() {
        // Sweep the square-wave frequency through the resonance: the
        // deepest steady-state droop must occur at (or adjacent to) the
        // resonant point — the time-domain confirmation of the
        // frequency-domain model the control plane uses.
        let params = PdnParams::default();
        let f0 = params.resonance_hz;
        let mut droops = Vec::new();
        for mult in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let mut sim = TransientSim::new(values(), 0.8, 1.0);
            let worst = sim.worst_droop_under_square_wave(1.0, 3.0, f0 * mult, 60);
            droops.push((mult, 0.8 - worst));
        }
        let (at_res, deepest) = droops
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .copied()
            .expect("nonempty");
        assert_eq!(
            at_res, 1.0,
            "deepest droop must be at resonance: {droops:?}"
        );
        assert!(deepest > 0.0);
    }

    #[test]
    fn time_domain_agrees_with_frequency_domain_magnitude() {
        // The frequency-domain model says droop depth at resonance is about
        // |Z(f0)| * I_ac (fundamental). Compare within a factor accounting
        // for square-wave harmonics (4/pi on the fundamental).
        let params = PdnParams::default();
        let pdn = Pdn::new(params);
        let i_ac = 1.0; // square wave between 1 A and 3 A => amplitude 1 A
        let fundamental = 4.0 / std::f64::consts::PI * i_ac;
        let predicted_mv = pdn.ac_droop_mv(fundamental, params.resonance_hz) + pdn.ir_drop_mv(2.0);
        let mut sim = TransientSim::new(values(), 0.8, 1.0);
        let worst = sim.worst_droop_under_square_wave(1.0, 3.0, params.resonance_hz, 80);
        let measured_mv = (0.8 - worst) * 1000.0;
        let ratio = measured_mv / predicted_mv;
        assert!(
            (0.5..2.0).contains(&ratio),
            "time vs frequency domain: measured {measured_mv:.2} mV vs predicted {predicted_mv:.2} mV"
        );
    }
}
