//! Per-domain voltage regulator.

use vs_types::Millivolts;

/// A voltage regulator with a discrete step grid and a bounded range.
///
/// The paper's control system adjusts supply voltage in 5 mV increments
/// (§III-B); the regulator model enforces that grid, clamps requests into
/// its supported range, and applies changes on the next [`tick`] (regulator
/// slew is far faster than the 1 ms control tick, so one tick of latency is
/// the right granularity).
///
/// [`tick`]: VoltageRegulator::tick
///
/// # Examples
///
/// ```
/// use vs_pdn::VoltageRegulator;
/// use vs_types::Millivolts;
///
/// let mut vr = VoltageRegulator::new(Millivolts(800), Millivolts(500), Millivolts(1200));
/// vr.request(Millivolts(737)); // snapped to the 5 mV grid
/// assert_eq!(vr.output(), Millivolts(800), "takes effect on the next tick");
/// vr.tick();
/// assert_eq!(vr.output(), Millivolts(735));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoltageRegulator {
    output: Millivolts,
    pending: Millivolts,
    min: Millivolts,
    max: Millivolts,
    step: Millivolts,
    adjustments: u64,
}

impl VoltageRegulator {
    /// The default adjustment step: 5 mV.
    pub const DEFAULT_STEP: Millivolts = Millivolts(5);

    /// Creates a regulator initialized (and settled) at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or `initial` lies outside it.
    pub fn new(initial: Millivolts, min: Millivolts, max: Millivolts) -> VoltageRegulator {
        assert!(min < max, "regulator range must be non-empty");
        assert!(
            (min..=max).contains(&initial),
            "initial voltage {initial} outside [{min}, {max}]"
        );
        VoltageRegulator {
            output: initial,
            pending: initial,
            min,
            max,
            step: Self::DEFAULT_STEP,
            adjustments: 0,
        }
    }

    /// The voltage currently being delivered.
    pub fn output(&self) -> Millivolts {
        self.output
    }

    /// The set point that will be delivered after the next tick.
    pub fn pending(&self) -> Millivolts {
        self.pending
    }

    /// The adjustment grid.
    pub fn step(&self) -> Millivolts {
        self.step
    }

    /// The supported range.
    pub fn range(&self) -> (Millivolts, Millivolts) {
        (self.min, self.max)
    }

    /// Number of set-point changes that actually moved the output.
    pub fn adjustment_count(&self) -> u64 {
        self.adjustments
    }

    /// Requests a new set point; it is snapped *down* to the step grid and
    /// clamped into range, and takes effect on the next tick.
    pub fn request(&mut self, target: Millivolts) {
        let snapped = Millivolts((target.0.div_euclid(self.step.0)) * self.step.0);
        self.pending = snapped.clamp(self.min, self.max);
    }

    /// Requests one step down from the pending set point.
    pub fn step_down(&mut self) {
        self.request(self.pending - self.step);
    }

    /// Requests one step up from the pending set point.
    pub fn step_up(&mut self) {
        self.request(self.pending + self.step);
    }

    /// Requests `n` steps up at once (the emergency path uses a larger
    /// increment, §III-B).
    pub fn step_up_by(&mut self, n: u32) {
        self.request(self.pending + Millivolts(self.step.0 * n as i32));
    }

    /// Applies the pending set point. Returns `true` if the output moved.
    pub fn tick(&mut self) -> bool {
        if self.pending != self.output {
            self.output = self.pending;
            self.adjustments += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vr() -> VoltageRegulator {
        VoltageRegulator::new(Millivolts(800), Millivolts(500), Millivolts(1200))
    }

    #[test]
    fn request_snaps_to_grid_and_applies_next_tick() {
        let mut r = vr();
        r.request(Millivolts(733));
        assert_eq!(r.output(), Millivolts(800));
        assert_eq!(r.pending(), Millivolts(730));
        assert!(r.tick());
        assert_eq!(r.output(), Millivolts(730));
        assert!(!r.tick(), "no further movement without a new request");
    }

    #[test]
    fn request_clamps_to_range() {
        let mut r = vr();
        r.request(Millivolts(300));
        r.tick();
        assert_eq!(r.output(), Millivolts(500));
        r.request(Millivolts(2000));
        r.tick();
        assert_eq!(r.output(), Millivolts(1200));
    }

    #[test]
    fn step_up_down() {
        let mut r = vr();
        r.step_down();
        r.tick();
        assert_eq!(r.output(), Millivolts(795));
        r.step_up();
        r.step_up();
        r.tick();
        assert_eq!(r.output(), Millivolts(805));
    }

    #[test]
    fn emergency_multi_step() {
        let mut r = vr();
        r.step_up_by(5);
        r.tick();
        assert_eq!(r.output(), Millivolts(825));
    }

    #[test]
    fn pending_steps_compound_within_a_tick() {
        let mut r = vr();
        r.step_down();
        r.step_down();
        r.tick();
        assert_eq!(r.output(), Millivolts(790));
    }

    #[test]
    fn adjustment_counter() {
        let mut r = vr();
        r.step_down();
        r.tick();
        r.step_down();
        r.tick();
        r.tick();
        assert_eq!(r.adjustment_count(), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn initial_out_of_range_panics() {
        VoltageRegulator::new(Millivolts(400), Millivolts(500), Millivolts(1200));
    }
}
