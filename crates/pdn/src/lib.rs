//! Power-delivery network (PDN) and voltage-regulator models.
//!
//! The effective voltage at the SRAM arrays is never quite the regulator's
//! set point: resistive (IR) drop scales with load current, and the
//! package/die RLC network resonates — a workload that oscillates between
//! high- and low-power phases near the resonance frequency (the paper's
//! FMA/NOP "voltage virus", §IV-B) produces droops several times deeper
//! than its average current alone would. Because the voltage-speculation
//! controller servos on an error rate measured at the *array*, it must see
//! those effects; this crate supplies them.
//!
//! Components:
//!
//! * [`VoltageRegulator`] — a per-domain regulator with a 5 mV step grid
//!   and bounded range; the voltage-control system adjusts its set point.
//! * [`Pdn`] — the passive network: static resistance for IR drop plus a
//!   second-order resonance for AC droop.
//! * [`DomainSupply`] — a regulator + PDN pair that converts a
//!   [`LoadCurrent`] into the effective voltage seen by the arrays.
//!
//! # Examples
//!
//! ```
//! use vs_pdn::{DomainSupply, LoadCurrent};
//! use vs_types::Millivolts;
//!
//! let mut supply = DomainSupply::low_voltage_default();
//! supply.regulator_mut().request(Millivolts(740));
//! supply.settle();
//!
//! let idle = supply.effective_voltage(&LoadCurrent::dc(1.0));
//! let busy = supply.effective_voltage(&LoadCurrent::dc(8.0));
//! assert!(busy < idle, "heavier load means deeper IR drop");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod network;
mod regulator;
mod supply;
pub mod transient;

pub use network::{Pdn, PdnParams};
pub use regulator::VoltageRegulator;
pub use supply::{DomainSupply, LoadCurrent};
pub use transient::{CircuitValues, TransientSim};
