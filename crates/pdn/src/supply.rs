//! A domain's complete supply: regulator plus network.

use crate::network::{Pdn, PdnParams};
use crate::regulator::VoltageRegulator;
use vs_types::Millivolts;

/// The load a domain presents to its supply during one control tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadCurrent {
    /// Average (DC) current, in amperes.
    pub i_dc_amps: f64,
    /// Amplitude of the oscillating component, in amperes.
    pub i_ac_amps: f64,
    /// Frequency of the oscillating component, in hertz.
    pub f_osc_hz: f64,
    /// Magnitude of any abrupt load step that happened this tick, in
    /// amperes (drives the first droop).
    pub transient_step_amps: f64,
}

impl LoadCurrent {
    /// A purely DC load.
    pub fn dc(i_dc_amps: f64) -> LoadCurrent {
        LoadCurrent {
            i_dc_amps,
            ..LoadCurrent::default()
        }
    }

    /// A DC load with an oscillating component.
    pub fn oscillating(i_dc_amps: f64, i_ac_amps: f64, f_osc_hz: f64) -> LoadCurrent {
        LoadCurrent {
            i_dc_amps,
            i_ac_amps,
            f_osc_hz,
            ..LoadCurrent::default()
        }
    }

    /// Adds the load of another sharer of the same rail (two cores per
    /// domain on the reference platform). Oscillating components are
    /// combined conservatively: the dominant frequency wins, amplitudes
    /// add.
    pub fn combine(self, other: LoadCurrent) -> LoadCurrent {
        let (f_osc_hz, _) = if self.i_ac_amps >= other.i_ac_amps {
            (self.f_osc_hz, self.i_ac_amps)
        } else {
            (other.f_osc_hz, other.i_ac_amps)
        };
        LoadCurrent {
            i_dc_amps: self.i_dc_amps + other.i_dc_amps,
            i_ac_amps: self.i_ac_amps + other.i_ac_amps,
            f_osc_hz,
            transient_step_amps: self.transient_step_amps.max(other.transient_step_amps),
        }
    }
}

/// One voltage domain's supply path: a regulator feeding the arrays through
/// the passive network.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSupply {
    regulator: VoltageRegulator,
    pdn: Pdn,
}

impl DomainSupply {
    /// Creates a supply from parts.
    pub fn new(regulator: VoltageRegulator, pdn: Pdn) -> DomainSupply {
        DomainSupply { regulator, pdn }
    }

    /// A supply configured for the low-voltage operating point: 800 mV
    /// nominal, range 500–900 mV, default network.
    pub fn low_voltage_default() -> DomainSupply {
        DomainSupply {
            regulator: VoltageRegulator::new(Millivolts(800), Millivolts(500), Millivolts(900)),
            pdn: Pdn::new(PdnParams::default()),
        }
    }

    /// A supply configured for the nominal operating point: 1.1 V nominal,
    /// range 900–1200 mV.
    pub fn nominal_default() -> DomainSupply {
        DomainSupply {
            regulator: VoltageRegulator::new(Millivolts(1100), Millivolts(900), Millivolts(1200)),
            pdn: Pdn::new(PdnParams::default()),
        }
    }

    /// The regulator.
    pub fn regulator(&self) -> &VoltageRegulator {
        &self.regulator
    }

    /// Mutable access to the regulator (the voltage controller's handle).
    pub fn regulator_mut(&mut self) -> &mut VoltageRegulator {
        &mut self.regulator
    }

    /// The passive network.
    pub fn pdn(&self) -> &Pdn {
        &self.pdn
    }

    /// Advances the regulator one tick (applies pending set points).
    pub fn tick(&mut self) -> bool {
        self.regulator.tick()
    }

    /// Applies all pending regulator changes immediately (used at
    /// initialization).
    pub fn settle(&mut self) {
        self.regulator.tick();
    }

    /// The worst-case effective voltage at the arrays under `load`, in
    /// millivolts (as a float: droops are analog).
    pub fn effective_voltage_mv(&self, load: &LoadCurrent) -> f64 {
        let set = f64::from(self.regulator.output().0);
        set - self.pdn.ir_drop_mv(load.i_dc_amps)
            - self.pdn.ac_droop_mv(load.i_ac_amps, load.f_osc_hz)
            - self.pdn.transient_droop_mv(load.transient_step_amps)
    }

    /// Like [`DomainSupply::effective_voltage_mv`] but rounded to
    /// [`Millivolts`] for reporting.
    pub fn effective_voltage(&self, load: &LoadCurrent) -> Millivolts {
        Millivolts(self.effective_voltage_mv(load).round() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_voltage_drops_with_load() {
        let supply = DomainSupply::low_voltage_default();
        let idle = supply.effective_voltage_mv(&LoadCurrent::dc(0.5));
        let busy = supply.effective_voltage_mv(&LoadCurrent::dc(6.0));
        assert!(busy < idle);
        assert!(idle < 800.0, "even idle load drops something");
    }

    #[test]
    fn resonant_virus_droops_more_than_flat_out() {
        let supply = DomainSupply::low_voltage_default();
        let f0 = supply.pdn().params().resonance_hz;
        // NOP-0 virus: higher average power, no oscillation near resonance.
        let nop0 = supply.effective_voltage_mv(&LoadCurrent::oscillating(8.0, 1.0, f0 * 6.0));
        // NOP-8 virus: lower average power, oscillating at resonance.
        let nop8 = supply.effective_voltage_mv(&LoadCurrent::oscillating(6.0, 2.5, f0));
        assert!(
            nop8 < nop0,
            "resonant virus must produce the deeper droop ({nop8} vs {nop0})"
        );
    }

    #[test]
    fn transient_step_produces_first_droop() {
        let supply = DomainSupply::low_voltage_default();
        let steady = supply.effective_voltage_mv(&LoadCurrent::dc(4.0));
        let mut load = LoadCurrent::dc(4.0);
        load.transient_step_amps = 3.0;
        let stepped = supply.effective_voltage_mv(&load);
        assert!(stepped < steady);
    }

    #[test]
    fn regulator_changes_propagate_after_tick() {
        let mut supply = DomainSupply::low_voltage_default();
        let before = supply.effective_voltage(&LoadCurrent::dc(1.0));
        supply.regulator_mut().request(Millivolts(740));
        assert_eq!(supply.effective_voltage(&LoadCurrent::dc(1.0)), before);
        supply.tick();
        let after = supply.effective_voltage(&LoadCurrent::dc(1.0));
        assert_eq!(before.0 - after.0, 60);
    }

    #[test]
    fn combine_adds_dc_and_keeps_dominant_frequency() {
        let a = LoadCurrent::oscillating(2.0, 0.5, 1.0e6);
        let b = LoadCurrent::oscillating(3.0, 2.0, 8.0e6);
        let c = a.combine(b);
        assert_eq!(c.i_dc_amps, 5.0);
        assert_eq!(c.i_ac_amps, 2.5);
        assert_eq!(c.f_osc_hz, 8.0e6, "dominant oscillator sets the frequency");
    }

    #[test]
    fn combine_takes_max_transient() {
        let mut a = LoadCurrent::dc(1.0);
        a.transient_step_amps = 2.0;
        let mut b = LoadCurrent::dc(1.0);
        b.transient_step_amps = 0.5;
        assert_eq!(a.combine(b).transient_step_amps, 2.0);
    }

    #[test]
    fn default_supplies_start_at_nominal() {
        assert_eq!(
            DomainSupply::low_voltage_default().regulator().output(),
            Millivolts(800)
        );
        assert_eq!(
            DomainSupply::nominal_default().regulator().output(),
            Millivolts(1100)
        );
    }
}
