//! Statistics helpers used by the physical models.
//!
//! The SRAM failure model needs three ingredients:
//!
//! * the standard normal CDF ([`normal_cdf`]) and its inverse
//!   ([`normal_quantile`]) for turning critical-voltage distributions into
//!   failure probabilities and for order statistics;
//! * a logistic response ([`logistic`]) for the per-access flip probability
//!   around a cell's critical voltage (this produces the S-curves of the
//!   paper's Figure 13);
//! * expected Gaussian order statistics ([`expected_extreme`]), used to
//!   place the weakest of `n` cells of a word/line without sampling all `n`.

/// The logistic sigmoid `1 / (1 + e^{-x})`.
///
/// ```
/// use vs_types::stats::logistic;
/// assert!((logistic(0.0) - 0.5).abs() < 1e-12);
/// assert!(logistic(10.0) > 0.9999);
/// assert!(logistic(-10.0) < 0.0001);
/// ```
#[inline]
pub fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26), accurate to
/// about `1.5e-7` absolute error, which is far below the resolution of any
/// experiment in this workspace.
#[inline]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
///
/// ```
/// use vs_types::stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (the probit function), computed with
/// the Acklam rational approximation (relative error below `1.2e-9` over the
/// open unit interval).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile argument must be in (0,1), got {p}"
    );

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Expected value of the *minimum* of `n` independent standard normal
/// deviates, via the Blom approximation
/// `E[min] ≈ Φ⁻¹((1 − 0.375) / (n + 0.25))` — negative for `n ≥ 2`.
///
/// This is how the SRAM model places "the weakest of the 72 bits of a word"
/// without drawing all 72 samples for every word on a 32 MB cache.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn expected_extreme(n: u64) -> f64 {
    assert!(n > 0, "order statistic needs at least one sample");
    if n == 1 {
        return 0.0;
    }
    let alpha = 0.375;
    normal_quantile((1.0 - alpha) / (n as f64 + 1.0 - 2.0 * alpha))
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a slice by linear interpolation between
/// order statistics; `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    percentile_sorted(&sorted, q)
}

/// [`percentile`] over an **already sorted** slice, skipping the copy and
/// sort. This is the single quantile definition shared by every consumer
/// in the workspace (run traces, fleet distributions), so their reported
/// percentiles are comparable.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    if sorted.is_empty() {
        return None;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Mean of a slice; returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation of a slice; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_symmetry() {
        for x in [-3.0, -1.0, 0.0, 0.5, 2.0] {
            assert!((logistic(x) + logistic(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn logistic_monotone() {
        let mut prev = 0.0;
        let mut x = -10.0;
        while x < 10.0 {
            let y = logistic(x);
            assert!(y >= prev);
            prev = y;
            x += 0.1;
        }
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(2.0) - 0.995_322_26).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 2e-4, "p={p}, roundtrip={back}");
        }
    }

    #[test]
    fn quantile_known_points() {
        assert!(normal_quantile(0.5).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "quantile argument")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn extreme_value_grows_with_n() {
        // The minimum of more samples is farther into the left tail.
        let e2 = expected_extreme(2);
        let e72 = expected_extreme(72);
        let e1024 = expected_extreme(1024);
        assert!(e2 < 0.0);
        assert!(e72 < e2);
        assert!(e1024 < e72);
        // Known scale: E[min of 72] is around -2.4 sigma.
        assert!((-2.6..=-2.2).contains(&e72), "e72 = {e72}");
    }

    #[test]
    fn extreme_of_one_is_zero() {
        assert_eq!(expected_extreme(1), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty series: no quantile at any q.
        assert_eq!(percentile(&[], 0.0), None);
        assert_eq!(percentile(&[], 1.0), None);
        assert_eq!(percentile_sorted(&[], 0.5), None);
        // A single sample is every quantile.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(percentile(&[7.0], q), Some(7.0));
            assert_eq!(percentile_sorted(&[7.0], q), Some(7.0));
        }
        // q = 0 and q = 1 are exactly min and max, no interpolation fuzz.
        let xs = [3.0, -1.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), Some(-1.0));
        assert_eq!(percentile(&xs, 1.0), Some(10.0));
    }

    #[test]
    fn percentile_sorted_matches_unsorted() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        let sorted = [1.0, 2.0, 3.0, 4.0];
        for q in [0.0, 0.1, 0.5, 0.75, 1.0] {
            assert_eq!(percentile(&xs, q), percentile_sorted(&sorted, q));
        }
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn percentile_sorted_rejects_bad_q() {
        percentile_sorted(&[1.0], -0.1);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let s = std_dev(&[2.0, 4.0]).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
