//! Fleet-level identity: naming chips inside a multi-chip population and
//! deriving each chip's die seed from a single fleet seed.
//!
//! Population experiments (the paper's Figures 1–2 spreads, the 8 % mean
//! Vdd-reduction claim) simulate hundreds of independent dies. Each die's
//! entire variation map is a pure function of its [`ChipConfig::seed`]
//! (see `vs-platform`), so a fleet is fully described by one
//! [`FleetSeed`] plus a chip count: chip `i` runs with the die seed
//! `FleetSeed::chip_seed(ChipId(i))`.
//!
//! Two guarantees matter and are tested:
//!
//! 1. **Determinism.** The derivation is a pure hash of
//!    `(fleet_seed, chip_id)`; it does not depend on thread count, worker
//!    scheduling, or simulation order, so a fleet result is bit-identical
//!    no matter how it is sharded.
//! 2. **Stream separation.** Chip seeds are domain-separated from every
//!    other use of [`hash_key`](crate::rng::hash_key) by a dedicated
//!    stream tag, so a chip's RNG streams never collide with another
//!    chip's (or with fleet-level draws).

use crate::rng::{hash_key, CounterRng};
use std::fmt;

/// Domain-separation tag for per-chip seed derivation. Any other consumer
/// of [`hash_key`] keyed off a fleet seed must use a different first part.
const CHIP_SEED_STREAM: u64 = 0xF1EE_7C41_9D00_0001;

/// Index of one chip within a fleet (dense, starting at zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipId(pub u64);

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

/// The master seed of a simulated fleet: the single number that determines
/// every die in the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FleetSeed(pub u64);

impl fmt::Display for FleetSeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fleet#{}", self.0)
    }
}

impl FleetSeed {
    /// Derives the die seed of one chip of this fleet.
    ///
    /// ```
    /// use vs_types::fleet::{ChipId, FleetSeed};
    ///
    /// let fleet = FleetSeed(2014);
    /// // Pure function: same key, same seed — across processes and sharding.
    /// assert_eq!(fleet.chip_seed(ChipId(7)), fleet.chip_seed(ChipId(7)));
    /// // Distinct chips are distinct silicon.
    /// assert_ne!(fleet.chip_seed(ChipId(7)), fleet.chip_seed(ChipId(8)));
    /// ```
    pub fn chip_seed(self, chip: ChipId) -> u64 {
        hash_key(self.0, &[CHIP_SEED_STREAM, chip.0])
    }

    /// A fleet-level RNG for draws that belong to the population rather
    /// than any single die (e.g. random workload assignment), keyed by a
    /// caller-chosen stream id so independent consumers never share a
    /// stream.
    pub fn fleet_rng(self, stream: u64) -> CounterRng {
        CounterRng::from_key(self.0, &[CHIP_SEED_STREAM ^ 0xFFFF_FFFF, stream])
    }

    /// A per-chip RNG for fleet-level decisions about one chip (workload
    /// assignment, re-draw policies) that must not perturb the die's own
    /// variation streams.
    pub fn chip_rng(self, chip: ChipId, stream: u64) -> CounterRng {
        CounterRng::from_key(self.chip_seed(chip), &[CHIP_SEED_STREAM, stream])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn chip_seeds_unique_across_large_fleet() {
        let fleet = FleetSeed(1);
        let seeds: HashSet<u64> = (0..10_000).map(|i| fleet.chip_seed(ChipId(i))).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn different_fleets_are_different_populations() {
        let a: Vec<u64> = (0..64).map(|i| FleetSeed(1).chip_seed(ChipId(i))).collect();
        let b: Vec<u64> = (0..64).map(|i| FleetSeed(2).chip_seed(ChipId(i))).collect();
        assert!(a.iter().all(|s| !b.contains(s)));
    }

    #[test]
    fn chip_rng_streams_are_separated() {
        let fleet = FleetSeed(9);
        let a = fleet.chip_rng(ChipId(0), 0).next_u64();
        let b = fleet.chip_rng(ChipId(0), 1).next_u64();
        let c = fleet.chip_rng(ChipId(1), 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ChipId(12).to_string(), "chip12");
        assert_eq!(FleetSeed(2014).to_string(), "fleet#2014");
    }
}
