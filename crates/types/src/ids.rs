//! Hardware identifiers: cores, voltage domains, caches, and cache-line
//! coordinates.

use std::fmt;

/// Identifies one core of the simulated chip multiprocessor.
///
/// The reference platform (Itanium 9560) has eight cores per socket; core ids
/// are small dense integers.
///
/// ```
/// use vs_types::CoreId;
/// let c = CoreId(3);
/// assert_eq!(c.to_string(), "core3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies one supply-voltage domain.
///
/// On the reference platform each pair of cores shares a power-delivery line,
/// with separate lines for the uncore; the chip exposes six independently
/// adjustable domains (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub usize);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vdd{}", self.0)
    }
}

/// Which cache structure an event or address refers to.
///
/// The paper finds that at low voltage only the L2 instruction and data
/// caches produce correctable errors, while at nominal voltage register files
/// also contribute (§II-C). The simulator models all of the SRAM structures
/// so that distinction emerges rather than being hard-coded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheKind {
    /// Level-1 instruction cache (4-way, 16 KB on the reference platform).
    L1Instruction,
    /// Level-1 data cache (4-way, 16 KB).
    L1Data,
    /// Level-2 instruction cache (8-way, 512 KB).
    L2Instruction,
    /// Level-2 data cache (8-way, 256 KB).
    L2Data,
    /// Shared unified L3 (32-way, 32 MB), on the uncore domain.
    L3Unified,
    /// Integer register file (modelled as a small ECC-protected array).
    RegisterFileInt,
    /// Floating-point register file.
    RegisterFileFp,
}

impl CacheKind {
    /// All modelled SRAM structures, in a stable order.
    pub const ALL: [CacheKind; 7] = [
        CacheKind::L1Instruction,
        CacheKind::L1Data,
        CacheKind::L2Instruction,
        CacheKind::L2Data,
        CacheKind::L3Unified,
        CacheKind::RegisterFileInt,
        CacheKind::RegisterFileFp,
    ];

    /// The structures that are private to a core (everything except the L3).
    pub const PER_CORE: [CacheKind; 6] = [
        CacheKind::L1Instruction,
        CacheKind::L1Data,
        CacheKind::L2Instruction,
        CacheKind::L2Data,
        CacheKind::RegisterFileInt,
        CacheKind::RegisterFileFp,
    ];

    /// True for instruction-side structures.
    pub fn is_instruction(self) -> bool {
        matches!(self, CacheKind::L1Instruction | CacheKind::L2Instruction)
    }

    /// True for the L2 caches — the structures the paper's ECC monitors end
    /// up targeting.
    pub fn is_l2(self) -> bool {
        matches!(self, CacheKind::L2Instruction | CacheKind::L2Data)
    }

    /// A stable small integer used when deriving per-structure random
    /// streams.
    pub fn stream_id(self) -> u64 {
        match self {
            CacheKind::L1Instruction => 1,
            CacheKind::L1Data => 2,
            CacheKind::L2Instruction => 3,
            CacheKind::L2Data => 4,
            CacheKind::L3Unified => 5,
            CacheKind::RegisterFileInt => 6,
            CacheKind::RegisterFileFp => 7,
        }
    }

    /// Short human-readable label used in reports ("L2I", "L2D", ...).
    pub fn label(self) -> &'static str {
        match self {
            CacheKind::L1Instruction => "L1I",
            CacheKind::L1Data => "L1D",
            CacheKind::L2Instruction => "L2I",
            CacheKind::L2Data => "L2D",
            CacheKind::L3Unified => "L3",
            CacheKind::RegisterFileInt => "RF-INT",
            CacheKind::RegisterFileFp => "RF-FP",
        }
    }
}

impl fmt::Display for CacheKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The (set, way) coordinates of a cache line within one structure.
///
/// Correctable-error reports carry the set and way of the failing line
/// (§IV-A4); calibration records them to designate the weakest line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SetWay {
    /// Set index within the structure.
    pub set: usize,
    /// Way (column of associativity) within the set.
    pub way: usize,
}

impl SetWay {
    /// Creates a new coordinate pair.
    pub fn new(set: usize, way: usize) -> SetWay {
        SetWay { set, way }
    }
}

impl fmt::Display for SetWay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set {} way {}", self.set, self.way)
    }
}

/// Fully qualified location of a cache line on the chip: which core's
/// structure, and where inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddress {
    /// The core owning the structure (for the shared L3 this is the core
    /// from whose controller the access was issued).
    pub core: CoreId,
    /// Which SRAM structure.
    pub cache: CacheKind,
    /// The coordinates within the structure.
    pub location: SetWay,
}

impl LineAddress {
    /// Creates a fully qualified line address.
    pub fn new(core: CoreId, cache: CacheKind, location: SetWay) -> LineAddress {
        LineAddress {
            core,
            cache,
            location,
        }
    }
}

impl fmt::Display for LineAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} {}", self.core, self.cache, self.location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round() {
        assert_eq!(CoreId(5).to_string(), "core5");
        assert_eq!(DomainId(2).to_string(), "vdd2");
        assert_eq!(SetWay::new(31, 7).to_string(), "set 31 way 7");
        let addr = LineAddress::new(CoreId(1), CacheKind::L2Data, SetWay::new(4, 2));
        assert_eq!(addr.to_string(), "core1/L2D set 4 way 2");
    }

    #[test]
    fn cache_kind_classification() {
        assert!(CacheKind::L2Instruction.is_instruction());
        assert!(!CacheKind::L2Data.is_instruction());
        assert!(CacheKind::L2Data.is_l2());
        assert!(!CacheKind::L3Unified.is_l2());
    }

    #[test]
    fn stream_ids_unique() {
        let mut ids: Vec<u64> = CacheKind::ALL.iter().map(|k| k.stream_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), CacheKind::ALL.len());
    }

    #[test]
    fn per_core_excludes_l3() {
        assert!(!CacheKind::PER_CORE.contains(&CacheKind::L3Unified));
        assert_eq!(CacheKind::PER_CORE.len(), CacheKind::ALL.len() - 1);
    }

    #[test]
    fn ordering_is_stable() {
        assert!(CoreId(0) < CoreId(1));
        assert!(SetWay::new(0, 5) < SetWay::new(1, 0));
    }
}
