//! Simulation time.
//!
//! The control-plane simulation advances in fixed ticks (1 ms by default,
//! matching the data-sampling period used on the reference platform, §IV-A4).
//! [`SimTime`] is a microsecond-resolution monotonic counter so that tick
//! arithmetic is exact.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, at microsecond resolution.
///
/// ```
/// use vs_types::SimTime;
///
/// let t = SimTime::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t + SimTime::from_millis(500), SimTime::from_secs(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    micros: u64,
}

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime { micros: 0 };

    /// Builds a time from whole microseconds.
    pub const fn from_micros(micros: u64) -> SimTime {
        SimTime { micros }
    }

    /// Builds a time from whole milliseconds.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime {
            micros: millis * 1_000,
        }
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime {
            micros: secs * 1_000_000,
        }
    }

    /// Builds a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime {
            micros: (secs.max(0.0) * 1.0e6).round() as u64,
        }
    }

    /// The value in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// The value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.micros / 1_000
    }

    /// The value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1.0e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// Whether this instant lies on a multiple of `period` (used for
    /// scheduling periodic controller work).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn is_multiple_of(self, period: SimTime) -> bool {
        assert!(period.micros > 0, "period must be positive");
        self.micros.is_multiple_of(period.micros)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros >= 1_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.micros >= 1_000 {
            write!(f, "{:.3} ms", self.micros as f64 / 1000.0)
        } else {
            write!(f, "{} µs", self.micros)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.micros += rhs.micros;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimTime::saturating_sub`] when the ordering is not known.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            micros: self.micros - rhs.micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5000);
        assert_eq!(SimTime::from_secs_f64(0.0015).as_micros(), 1500);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(300);
        let b = SimTime::from_millis(200);
        assert_eq!(a + b, SimTime::from_millis(500));
        assert_eq!(a - b, SimTime::from_millis(100));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut t = SimTime::ZERO;
        t += SimTime::from_micros(7);
        assert_eq!(t.as_micros(), 7);
    }

    #[test]
    fn periodicity() {
        let tick = SimTime::from_millis(10);
        assert!(SimTime::from_millis(40).is_multiple_of(tick));
        assert!(!SimTime::from_millis(45).is_multiple_of(tick));
        assert!(SimTime::ZERO.is_multiple_of(tick));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        SimTime::from_millis(10).is_multiple_of(SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(90).to_string(), "90.000 s");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000 ms");
        assert_eq!(SimTime::from_micros(15).to_string(), "15 µs");
    }
}
