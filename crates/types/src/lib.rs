//! Shared primitive types for the `voltspec` simulation stack.
//!
//! This crate provides the vocabulary used by every other crate in the
//! workspace:
//!
//! * strongly typed physical units ([`Millivolts`], [`Hertz`], [`Watts`],
//!   [`Joules`], [`Celsius`], [`SimTime`]);
//! * hardware identifiers ([`CoreId`], [`DomainId`], [`CacheKind`],
//!   [`SetWay`]);
//! * a deterministic counter-based random number generator
//!   ([`rng::CounterRng`]) used to derive every stochastic quantity in the
//!   simulator from a structured key, so that experiments are exactly
//!   reproducible run-to-run (the paper's "deterministic error distribution"
//!   observation, §II-D);
//! * small statistics helpers ([`stats`]) — Gaussian sampling, logistic
//!   response, Gaussian order statistics — that the SRAM failure model is
//!   built on.
//!
//! # Examples
//!
//! ```
//! use vs_types::{Millivolts, CoreId, rng::CounterRng};
//!
//! let nominal = Millivolts(800);
//! let lowered = nominal - Millivolts(64);
//! assert_eq!(lowered, Millivolts(736));
//! assert!((lowered.as_volts() - 0.736).abs() < 1e-12);
//!
//! // Deterministic: the same key always yields the same stream.
//! let a = CounterRng::from_key(0xC0FFEE, &[1, 2, 3]).next_f64();
//! let b = CounterRng::from_key(0xC0FFEE, &[1, 2, 3]).next_f64();
//! assert_eq!(a, b);
//! let _core = CoreId(3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod fleet;
pub mod ids;
pub mod mask;
pub mod mode;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use config::ConfigError;
pub use fleet::{ChipId, FleetSeed};
pub use ids::{CacheKind, CoreId, DomainId, LineAddress, SetWay};
pub use mask::{FlipBits, FlipMask};
pub use mode::VddMode;
pub use rng::CounterRng;
pub use time::SimTime;
pub use units::{Celsius, Hertz, Joules, Millivolts, Watts};
