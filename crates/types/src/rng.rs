//! Deterministic counter-based random number generation.
//!
//! Every stochastic quantity in the simulator — per-cell critical voltages,
//! per-access failure draws, workload phase jitter — is derived from a
//! [`CounterRng`] seeded by a *structured key* (chip seed plus identifiers
//! like cache, set, way, word, bit). This has two properties the paper's
//! reproduction depends on:
//!
//! 1. **Determinism.** The weak-line distribution of a chip is a pure
//!    function of its seed, so "the same cache lines consistently report
//!    errors" (§II-D) holds exactly, including across process restarts.
//! 2. **Random access.** Cell parameters can be computed on demand for any
//!    coordinate without materializing multi-megabyte state for the 32 MB L3.
//!
//! The mixing function is `splitmix64`, which passes standard avalanche
//! criteria and is more than adequate for simulation (this is not a
//! cryptographic generator).

use std::f64::consts::TAU;

/// Mixes a 64-bit value with the `splitmix64` finalizer.
///
/// ```
/// use vs_types::rng::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a structured key (a seed plus a slice of identifier words) into a
/// single 64-bit state.
#[inline]
pub fn hash_key(seed: u64, parts: &[u64]) -> u64 {
    let mut state = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for &p in parts {
        state = splitmix64(state ^ p.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    }
    state
}

/// A deterministic counter-based random number generator.
///
/// A `CounterRng` is constructed from a structured key and then produces an
/// arbitrary-length stream by hashing an incrementing counter. Two generators
/// built from the same key produce identical streams; generators built from
/// different keys produce statistically independent streams.
///
/// # Examples
///
/// ```
/// use vs_types::rng::CounterRng;
///
/// let mut a = CounterRng::from_key(7, &[1, 2]);
/// let mut b = CounterRng::from_key(7, &[1, 2]);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut c = CounterRng::from_key(7, &[1, 3]);
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRng {
    state: u64,
    counter: u64,
}

impl CounterRng {
    /// Creates a generator from a raw 64-bit state.
    pub fn new(state: u64) -> CounterRng {
        CounterRng { state, counter: 0 }
    }

    /// Creates a generator from a structured key: a global seed plus
    /// identifier parts (core id, cache id, set, way, ...).
    pub fn from_key(seed: u64, parts: &[u64]) -> CounterRng {
        CounterRng::new(hash_key(seed, parts))
    }

    /// Produces the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state ^ splitmix64(self.counter));
        self.counter = self.counter.wrapping_add(1);
        out
    }

    /// Produces a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a dyadic uniform in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Produces a uniform integer in `[0, bound)` using rejection-free
    /// multiply-shift (Lemire); bias is negligible for simulation bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Produces a standard normal deviate via Box–Muller.
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        // Guard u1 away from zero so ln() is finite.
        let u1 = self.next_f64().max(1.0e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
    }

    /// Produces a normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn next_gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Samples a binomial count of successes out of `n` trials each with
    /// probability `p`.
    ///
    /// Exact Bernoulli summation is used for small `n·min(p,1-p)`; a
    /// normal approximation (rounded and clamped) is used for large counts,
    /// which is accurate to well under the resolution of any experiment in
    /// this workspace.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if p <= 0.0 || n == 0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let mean = n as f64 * p;
        let var = mean * (1.0 - p);
        // Normal approximation is sound when both np and n(1-p) are large.
        if mean > 64.0 && (n as f64 - mean) > 64.0 {
            let draw = self.next_gaussian_with(mean, var.sqrt()).round();
            return draw.clamp(0.0, n as f64) as u64;
        }
        let mut successes = 0;
        for _ in 0..n {
            if self.bernoulli(p) {
                successes += 1;
            }
        }
        successes
    }

    /// Derives a child generator for a sub-stream identified by `parts`,
    /// without perturbing this generator's own stream.
    pub fn substream(&self, parts: &[u64]) -> CounterRng {
        CounterRng::new(hash_key(self.state, parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = CounterRng::from_key(99, &[4, 5, 6]);
        let mut b = CounterRng::from_key(99, &[4, 5, 6]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn key_sensitivity() {
        // Changing any part of the key changes the stream.
        let base: Vec<u64> = (0..16)
            .map(|i| CounterRng::from_key(1, &[2, 3]).substream(&[i]).next_u64())
            .collect();
        let mut sorted = base.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), base.len());
    }

    #[test]
    fn uniform_range() {
        let mut rng = CounterRng::from_key(7, &[]);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = CounterRng::from_key(11, &[]);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = CounterRng::from_key(3, &[]);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        CounterRng::from_key(3, &[]).next_below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = CounterRng::from_key(5, &[]);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance was {var}");
    }

    #[test]
    fn bernoulli_edges() {
        let mut rng = CounterRng::from_key(8, &[]);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = CounterRng::from_key(12, &[]);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.05)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate was {rate}");
    }

    #[test]
    fn binomial_small_and_large_paths() {
        let mut rng = CounterRng::from_key(21, &[]);
        // Small path: exact summation.
        let trials = 2_000;
        let mut total = 0;
        for _ in 0..trials {
            total += rng.binomial(20, 0.3);
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 6.0).abs() < 0.3, "small-path mean was {mean}");

        // Large path: normal approximation.
        let mut total = 0u64;
        for _ in 0..trials {
            total += rng.binomial(100_000, 0.4);
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - 40_000.0).abs() < 100.0,
            "large-path mean was {mean}"
        );
    }

    #[test]
    fn binomial_edges() {
        let mut rng = CounterRng::from_key(22, &[]);
        assert_eq!(rng.binomial(0, 0.5), 0);
        assert_eq!(rng.binomial(100, 0.0), 0);
        assert_eq!(rng.binomial(100, 1.0), 100);
    }

    #[test]
    fn substream_independent_of_parent_position() {
        let parent = CounterRng::from_key(9, &[1]);
        let mut advanced = parent.clone();
        let _ = advanced.next_u64();
        // substream is keyed off state, not counter, so it matches as long as
        // it is derived before advancing.
        assert_eq!(
            parent.substream(&[7]).next_u64(),
            parent.clone().substream(&[7]).next_u64()
        );
    }
}
