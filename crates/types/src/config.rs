//! Typed configuration-validation errors.
//!
//! Every `validate()` method in the workspace returns
//! `Result<(), ConfigError>` so that callers can surface a bad
//! configuration as data instead of a panic. The variants carry the
//! offending field name (and, where useful, the observed value) so the
//! rendered message points straight at the knob that needs fixing.

use std::error::Error;
use std::fmt;

/// A configuration field failed validation.
///
/// # Examples
///
/// ```
/// use vs_types::ConfigError;
///
/// let err = ConfigError::non_positive("control_period");
/// assert_eq!(
///     err.to_string(),
///     "invalid config: `control_period` must be positive",
/// );
/// assert_eq!(err.field(), "control_period");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be strictly positive was zero or negative.
    NonPositive {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A field fell outside its permitted range.
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the permitted range.
        expected: &'static str,
        /// The observed value, rendered as text.
        actual: String,
    },
    /// Two fields are mutually inconsistent (each may be fine alone).
    Inconsistent {
        /// Name of the primary offending field.
        field: &'static str,
        /// Name of the field it conflicts with.
        other: &'static str,
        /// Human-readable description of the required relationship.
        expected: &'static str,
    },
}

impl ConfigError {
    /// Shorthand for [`ConfigError::NonPositive`].
    pub fn non_positive(field: &'static str) -> Self {
        ConfigError::NonPositive { field }
    }

    /// Shorthand for [`ConfigError::OutOfRange`].
    pub fn out_of_range(
        field: &'static str,
        expected: &'static str,
        actual: impl fmt::Display,
    ) -> Self {
        ConfigError::OutOfRange {
            field,
            expected,
            actual: actual.to_string(),
        }
    }

    /// Shorthand for [`ConfigError::Inconsistent`].
    pub fn inconsistent(field: &'static str, other: &'static str, expected: &'static str) -> Self {
        ConfigError::Inconsistent {
            field,
            other,
            expected,
        }
    }

    /// The name of the primary field that failed validation.
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::NonPositive { field }
            | ConfigError::OutOfRange { field, .. }
            | ConfigError::Inconsistent { field, .. } => field,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { field } => {
                write!(f, "invalid config: `{field}` must be positive")
            }
            ConfigError::OutOfRange {
                field,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "invalid config: `{field}` must be {expected} (got {actual})"
                )
            }
            ConfigError::Inconsistent {
                field,
                other,
                expected,
            } => {
                write!(
                    f,
                    "invalid config: `{field}` conflicts with `{other}`: {expected}"
                )
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_field_context() {
        let e = ConfigError::out_of_range("floor", "a fraction in (0, 1)", 1.5);
        assert_eq!(
            e.to_string(),
            "invalid config: `floor` must be a fraction in (0, 1) (got 1.5)"
        );
        assert_eq!(e.field(), "floor");

        let e = ConfigError::inconsistent("ceiling", "floor", "floor < ceiling");
        assert!(e.to_string().contains("`ceiling`"));
        assert!(e.to_string().contains("`floor`"));
        assert_eq!(e.field(), "ceiling");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(ConfigError::non_positive("tick"));
        assert!(e.to_string().contains("tick"));
    }
}
