//! Strongly typed physical units.
//!
//! All supply voltages in the simulator are integral millivolt quantities
//! ([`Millivolts`]) because the modelled voltage regulators adjust the rail in
//! discrete 5 mV steps (paper §III-B). Analog quantities that arise from the
//! physics models (power, energy, temperature) use `f64` newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A supply-voltage level in integral millivolts.
///
/// `Millivolts` is the unit the voltage-control plane speaks: regulator set
/// points, guardbands, and speculation steps are all integral millivolt
/// quantities. Conversion to volts for the physics models goes through
/// [`Millivolts::as_volts`].
///
/// # Examples
///
/// ```
/// use vs_types::Millivolts;
///
/// let nominal = Millivolts(1100);
/// let guardband = Millivolts(100);
/// assert_eq!(nominal - guardband, Millivolts(1000));
/// assert_eq!(Millivolts(800).as_volts(), 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Millivolts(pub i32);

impl Millivolts {
    /// Zero millivolts.
    pub const ZERO: Millivolts = Millivolts(0);

    /// Returns the value in volts as a float, for the analog models.
    #[inline]
    pub fn as_volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Builds a `Millivolts` from a float voltage, rounding to the nearest
    /// millivolt.
    ///
    /// ```
    /// # use vs_types::Millivolts;
    /// assert_eq!(Millivolts::from_volts(0.7364), Millivolts(736));
    /// ```
    #[inline]
    pub fn from_volts(v: f64) -> Millivolts {
        Millivolts((v * 1000.0).round() as i32)
    }

    /// Clamps the value into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Millivolts, hi: Millivolts) -> Millivolts {
        Millivolts(self.0.clamp(lo.0, hi.0))
    }

    /// Absolute difference between two levels.
    #[inline]
    pub fn abs_diff(self, other: Millivolts) -> Millivolts {
        Millivolts((self.0 - other.0).abs())
    }

    /// The level as a fraction of `reference` (e.g. for "relative supply
    /// voltage" plots such as the paper's Figure 1).
    ///
    /// # Panics
    ///
    /// Panics if `reference` is zero.
    #[inline]
    pub fn relative_to(self, reference: Millivolts) -> f64 {
        assert!(reference.0 != 0, "reference voltage must be nonzero");
        f64::from(self.0) / f64::from(reference.0)
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mV", self.0)
    }
}

impl Add for Millivolts {
    type Output = Millivolts;
    fn add(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 + rhs.0)
    }
}

impl Sub for Millivolts {
    type Output = Millivolts;
    fn sub(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 - rhs.0)
    }
}

impl AddAssign for Millivolts {
    fn add_assign(&mut self, rhs: Millivolts) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Millivolts {
    fn sub_assign(&mut self, rhs: Millivolts) {
        self.0 -= rhs.0;
    }
}

impl Neg for Millivolts {
    type Output = Millivolts;
    fn neg(self) -> Millivolts {
        Millivolts(-self.0)
    }
}

impl Mul<i32> for Millivolts {
    type Output = Millivolts;
    fn mul(self, rhs: i32) -> Millivolts {
        Millivolts(self.0 * rhs)
    }
}

/// A clock frequency in hertz.
///
/// ```
/// use vs_types::Hertz;
///
/// let high = Hertz::from_mhz(2530.0);
/// let low = Hertz::from_mhz(340.0);
/// assert!(high > low);
/// assert_eq!(low.as_mhz(), 340.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(pub f64);

impl Hertz {
    /// Builds a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Hertz {
        Hertz(mhz * 1.0e6)
    }

    /// Builds a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Hertz {
        Hertz(ghz * 1.0e9)
    }

    /// The frequency in megahertz.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.0 / 1.0e6
    }

    /// The frequency in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 / 1.0e9
    }

    /// The period of one cycle, in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period_secs(self) -> f64 {
        assert!(self.0 > 0.0, "frequency must be positive");
        1.0 / self.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0e9 {
            write!(f, "{:.2} GHz", self.as_ghz())
        } else if self.0 >= 1.0e6 {
            write!(f, "{:.0} MHz", self.as_mhz())
        } else {
            write!(f, "{:.0} Hz", self.0)
        }
    }
}

/// Power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Energy accumulated by holding this power for `secs` seconds.
    #[inline]
    pub fn over_secs(self, secs: f64) -> Joules {
        Joules(self.0 * secs)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W", self.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Div<Watts> for Watts {
    type Output = f64;
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Joules {
    /// Zero joules.
    pub const ZERO: Joules = Joules(0.0);
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} J", self.0)
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

/// Temperature in degrees Celsius.
///
/// The paper reports that enclosure-fan-induced variation of up to 20 °C has
/// no measurable effect on error distribution (§III-D); the SRAM model keeps
/// a small temperature coefficient so that experiment can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(pub f64);

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} °C", self.0)
    }
}

impl Add for Celsius {
    type Output = Celsius;
    fn add(self, rhs: Celsius) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl Sub for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: Celsius) -> Celsius {
        Celsius(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millivolt_arithmetic() {
        let a = Millivolts(800);
        let b = Millivolts(64);
        assert_eq!(a - b, Millivolts(736));
        assert_eq!(a + b, Millivolts(864));
        assert_eq!(-b, Millivolts(-64));
        assert_eq!(b * 3, Millivolts(192));
        let mut c = a;
        c += b;
        assert_eq!(c, Millivolts(864));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn millivolt_volt_roundtrip() {
        for mv in [0, 1, 5, 616, 800, 1100, -50] {
            let m = Millivolts(mv);
            assert_eq!(Millivolts::from_volts(m.as_volts()), m);
        }
    }

    #[test]
    fn millivolt_clamp_and_diff() {
        assert_eq!(
            Millivolts(900).clamp(Millivolts(600), Millivolts(800)),
            Millivolts(800)
        );
        assert_eq!(
            Millivolts(500).clamp(Millivolts(600), Millivolts(800)),
            Millivolts(600)
        );
        assert_eq!(Millivolts(700).abs_diff(Millivolts(750)), Millivolts(50));
        assert_eq!(Millivolts(750).abs_diff(Millivolts(700)), Millivolts(50));
    }

    #[test]
    fn millivolt_relative() {
        let rel = Millivolts(736).relative_to(Millivolts(800));
        assert!((rel - 0.92).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reference voltage must be nonzero")]
    fn millivolt_relative_zero_reference_panics() {
        let _ = Millivolts(700).relative_to(Millivolts(0));
    }

    #[test]
    fn hertz_conversions() {
        let f = Hertz::from_ghz(2.53);
        assert!((f.as_mhz() - 2530.0).abs() < 1e-9);
        assert!((f.period_secs() - 1.0 / 2.53e9).abs() < 1e-22);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Millivolts(736).to_string(), "736 mV");
        assert_eq!(Hertz::from_ghz(2.53).to_string(), "2.53 GHz");
        assert_eq!(Hertz::from_mhz(340.0).to_string(), "340 MHz");
        assert_eq!(Watts(33.125).to_string(), "33.125 W");
        assert_eq!(Celsius(45.0).to_string(), "45.0 °C");
    }

    #[test]
    fn power_energy_relation() {
        let e = Watts(10.0).over_secs(30.0);
        assert_eq!(e, Joules(300.0));
        let total: Joules = [Joules(1.0), Joules(2.5)].into_iter().sum();
        assert!((total.0 - 3.5).abs() < 1e-12);
        let total_w: Watts = [Watts(1.0), Watts(2.0)].into_iter().sum();
        assert!((total_w.0 - 3.0).abs() < 1e-12);
    }
}
