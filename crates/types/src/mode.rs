//! Chip operating modes.
//!
//! The paper characterizes the same silicon at two operating points
//! (Table I): the nominal high-frequency point (2.53 GHz at 1.1 V) and a
//! low-voltage point at the lowest supported frequency (340 MHz at 800 mV —
//! derived by the authors by applying the measured 100 mV guardband to the
//! voltage of the first correctable error at that frequency).

use crate::units::{Hertz, Millivolts};
use std::fmt;

/// One of the two characterized operating points of the chip.
///
/// ```
/// use vs_types::VddMode;
///
/// assert_eq!(VddMode::Nominal.nominal_vdd().0, 1100);
/// assert_eq!(VddMode::LowVoltage.nominal_vdd().0, 800);
/// assert!(VddMode::Nominal.frequency() > VddMode::LowVoltage.frequency());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum VddMode {
    /// 2.53 GHz at a nominal 1.1 V supply.
    Nominal,
    /// 340 MHz at a nominal 800 mV supply — the regime the proposed
    /// speculation system is designed for.
    #[default]
    LowVoltage,
}

impl VddMode {
    /// Both modes, in a stable order.
    pub const ALL: [VddMode; 2] = [VddMode::Nominal, VddMode::LowVoltage];

    /// The nominal supply voltage at this operating point.
    pub fn nominal_vdd(self) -> Millivolts {
        match self {
            VddMode::Nominal => Millivolts(1100),
            VddMode::LowVoltage => Millivolts(800),
        }
    }

    /// The fixed clock frequency at this operating point. Voltage
    /// speculation never changes frequency (that is the point: power savings
    /// with no performance impact).
    pub fn frequency(self) -> Hertz {
        match self {
            VddMode::Nominal => Hertz::from_ghz(2.53),
            VddMode::LowVoltage => Hertz::from_mhz(340.0),
        }
    }

    /// The guardband the platform applies below nominal before any
    /// correctable error is expected (~100 mV at both points, §IV).
    pub fn guardband(self) -> Millivolts {
        Millivolts(100)
    }

    /// A stable small integer for RNG stream derivation.
    pub fn stream_id(self) -> u64 {
        match self {
            VddMode::Nominal => 0,
            VddMode::LowVoltage => 1,
        }
    }
}

impl fmt::Display for VddMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VddMode::Nominal => write!(f, "nominal (2.53 GHz)"),
            VddMode::LowVoltage => write!(f, "low-voltage (340 MHz)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_constants() {
        assert_eq!(VddMode::Nominal.nominal_vdd(), Millivolts(1100));
        assert_eq!(VddMode::LowVoltage.nominal_vdd(), Millivolts(800));
        assert!((VddMode::Nominal.frequency().as_ghz() - 2.53).abs() < 1e-9);
        assert!((VddMode::LowVoltage.frequency().as_mhz() - 340.0).abs() < 1e-9);
        assert_eq!(VddMode::Nominal.guardband(), Millivolts(100));
    }

    #[test]
    fn stream_ids_differ() {
        assert_ne!(
            VddMode::Nominal.stream_id(),
            VddMode::LowVoltage.stream_id()
        );
    }

    #[test]
    fn display() {
        assert!(VddMode::LowVoltage.to_string().contains("340"));
    }
}
