//! Alloc-free codeword flip masks.
//!
//! A [`FlipMask`] names the bit positions of one ECC codeword (up to 128
//! bits) that were observed flipped on a read. It replaces the historical
//! `Vec<u32>` flip lists on the hot sampling path: a mask is `Copy`, needs
//! no heap, XORs straight into a stored `u128` codeword, and popcounts in
//! one instruction.

use std::fmt;

/// A set of flipped codeword bit positions, packed into a `u128`.
///
/// Bit `i` of the inner value is set iff codeword bit `i` flipped. The
/// (72,64) Hsiao geometry uses positions `0..72`; the type itself admits
/// any position below 128.
///
/// ```
/// use vs_types::FlipMask;
///
/// let mask = FlipMask::from_bits(&[3, 70]);
/// assert_eq!(mask.count(), 2);
/// assert!(mask.contains(70));
/// assert_eq!(mask.bits().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FlipMask(pub u128);

impl FlipMask {
    /// The empty mask: a clean read.
    pub const EMPTY: FlipMask = FlipMask(0);

    /// Builds a mask from explicit bit positions.
    ///
    /// # Panics
    ///
    /// Panics if any position is 128 or larger.
    pub fn from_bits(bits: &[u32]) -> FlipMask {
        let mut mask = FlipMask::EMPTY;
        for &b in bits {
            mask.set(b);
        }
        mask
    }

    /// Marks one bit position as flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is 128 or larger.
    #[inline]
    pub fn set(&mut self, bit: u32) {
        assert!(bit < 128, "flip position {bit} exceeds the u128 mask");
        self.0 |= 1u128 << bit;
    }

    /// Whether a bit position is flipped.
    #[inline]
    pub fn contains(self, bit: u32) -> bool {
        bit < 128 && self.0 & (1u128 << bit) != 0
    }

    /// Number of flipped bits (popcount).
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no bit flipped.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the flipped bit positions in ascending order.
    #[inline]
    pub fn bits(self) -> FlipBits {
        FlipBits(self.0)
    }

    /// The flip positions as an allocated `Vec<u32>`; convenient in tests
    /// and diagnostics, avoid on the hot read path.
    pub fn to_bits_vec(self) -> Vec<u32> {
        self.bits().collect()
    }
}

impl fmt::Debug for FlipMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.bits()).finish()
    }
}

impl FromIterator<u32> for FlipMask {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> FlipMask {
        let mut mask = FlipMask::EMPTY;
        for b in iter {
            mask.set(b);
        }
        mask
    }
}

/// Iterator over the set bit positions of a [`FlipMask`], ascending.
#[derive(Clone, Copy, Debug)]
pub struct FlipBits(u128);

impl Iterator for FlipBits {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for FlipBits {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask() {
        let m = FlipMask::EMPTY;
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
        assert_eq!(m.bits().next(), None);
        assert_eq!(m, FlipMask::default());
    }

    #[test]
    fn from_bits_round_trips() {
        let bits = [0u32, 7, 63, 64, 71, 127];
        let m = FlipMask::from_bits(&bits);
        assert_eq!(m.count(), bits.len() as u32);
        assert_eq!(m.to_bits_vec(), bits);
        for b in bits {
            assert!(m.contains(b));
        }
        assert!(!m.contains(1));
        assert!(!m.contains(200));
    }

    #[test]
    fn bits_iterate_ascending_regardless_of_insertion_order() {
        let m = FlipMask::from_bits(&[71, 3, 40]);
        assert_eq!(m.to_bits_vec(), vec![3, 40, 71]);
        assert_eq!(m.bits().len(), 3);
    }

    #[test]
    fn duplicate_bits_collapse() {
        let m = FlipMask::from_bits(&[5, 5, 5]);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let m: FlipMask = [2u32, 9].into_iter().collect();
        assert_eq!(m, FlipMask::from_bits(&[2, 9]));
    }

    #[test]
    #[should_panic(expected = "exceeds the u128 mask")]
    fn oversized_bit_rejected() {
        FlipMask::from_bits(&[128]);
    }

    #[test]
    fn debug_lists_positions() {
        assert_eq!(format!("{:?}", FlipMask::from_bits(&[1, 70])), "[1, 70]");
    }
}
