//! The compact `--inject` command-line grammar.

use crate::plan::{
    DaemonFaultKind, FaultKind, FaultPlan, FaultTrigger, InjectionProfile, ScheduledFault,
};
use vs_types::{ChipId, CoreId, DomainId, Millivolts, SimTime};

/// A parsed `--inject` specification.
///
/// The grammar is a comma-separated list of directives:
///
/// | directive | meaning |
/// |---|---|
/// | `seeded:SEED` | a seeded population-wide plan ([`FaultPlan::seeded`], default profile) |
/// | `panic:chipN` | chip `N`'s worker job panics once (`xM` suffix: `M` times) |
/// | `hang:chipN` | chip `N`'s worker job hangs once until the watchdog cancels it (`xM` suffix: `M` times) |
/// | `io-error:N` | the first `N` checkpoint saves fail with an injected I/O error |
/// | `daemon:KIND:N` | budget `N` daemon-tier faults of `KIND` (`torn`, `stall`, `disconnect`, `enospc`, `short-write`, `fsync`, `overload`) |
/// | `due@TIME:dD` | a DUE on domain `D` at `TIME` |
/// | `crash@TIME:cC` | core `C` crashes at `TIME` |
/// | `crash<MVmv:dD:cC` | core `C` crashes when domain `D` drops below `MV` mV |
/// | `droop@TIME:dD:DEPTHmv:DUR` | droop domain `D` by `DEPTH` mV for `DUR` |
/// | `stuck@TIME:dD:RATE:DUR` | stick domain `D`'s monitor at `RATE` for `DUR` |
///
/// Timed directives accept a trailing `:chipN` to scope them to one chip
/// (they apply to every chip otherwise). Times are `<n>us`, `<n>ms`, or
/// `<n>s`.
///
/// Seeded plans depend on the fleet size, so parsing yields a `FaultSpec`
/// that is turned into a concrete plan with [`FaultSpec::materialize`].
///
/// # Examples
///
/// ```
/// use vs_faults::FaultSpec;
///
/// let spec = FaultSpec::parse("due@500ms:d0,panic:chip3x2,crash@1s:c1:chip2").unwrap();
/// let plan = spec.materialize(8);
/// assert_eq!(plan.events().len(), 2);
/// assert_eq!(plan.panic_attempts(vs_types::ChipId(3)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    seeded: Option<u64>,
    explicit: FaultPlan,
}

impl FaultSpec {
    /// Parses a specification string. Returns a human-readable message
    /// naming the offending directive on failure.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for raw in s.split(',') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            spec.parse_directive(item)
                .map_err(|e| format!("bad --inject directive {item:?}: {e}"))?;
        }
        Ok(spec)
    }

    /// Turns the spec into a concrete plan for a fleet of `num_chips`
    /// chips (pass 1 for single-system runs).
    pub fn materialize(&self, num_chips: u64) -> FaultPlan {
        let mut plan = match self.seeded {
            Some(seed) => FaultPlan::seeded(seed, num_chips, InjectionProfile::default()),
            None => FaultPlan::new(),
        };
        for f in self.explicit.events() {
            plan.push(*f);
        }
        for &(chip, attempts) in self.explicit.worker_panics() {
            plan = plan.worker_panic(chip, attempts);
        }
        for &(chip, attempts) in self.explicit.worker_hangs() {
            plan = plan.worker_hang(chip, attempts);
        }
        for &(kind, n) in self.explicit.daemon_faults() {
            plan = plan.daemon_fault(kind, n);
        }
        plan.checkpoint_io_error(self.explicit.checkpoint_io_errors())
    }

    fn parse_directive(&mut self, item: &str) -> Result<(), String> {
        if let Some(rest) = item.strip_prefix("seeded:") {
            let seed = rest.parse::<u64>().map_err(|_| "seed must be a u64")?;
            self.seeded = Some(seed);
            return Ok(());
        }
        if let Some(rest) = item.strip_prefix("panic:") {
            let (chip_part, attempts) = match rest.split_once('x') {
                Some((c, n)) => (
                    c,
                    n.parse::<u32>().map_err(|_| "panic count must be a u32")?,
                ),
                None => (rest, 1),
            };
            let chip = parse_chip(chip_part)?;
            self.explicit = std::mem::take(&mut self.explicit).worker_panic(chip, attempts);
            return Ok(());
        }
        if let Some(rest) = item.strip_prefix("hang:") {
            let (chip_part, attempts) = match rest.split_once('x') {
                Some((c, n)) => (c, n.parse::<u32>().map_err(|_| "hang count must be a u32")?),
                None => (rest, 1),
            };
            let chip = parse_chip(chip_part)?;
            self.explicit = std::mem::take(&mut self.explicit).worker_hang(chip, attempts);
            return Ok(());
        }
        if let Some(rest) = item.strip_prefix("io-error:") {
            let n = rest
                .parse::<u32>()
                .map_err(|_| "io-error count must be a u32")?;
            self.explicit = std::mem::take(&mut self.explicit).checkpoint_io_error(n);
            return Ok(());
        }
        if let Some(rest) = item.strip_prefix("daemon:") {
            let (kind_part, count_part) = rest
                .split_once(':')
                .ok_or("daemon faults are `daemon:KIND:N`")?;
            let kind = DaemonFaultKind::parse(kind_part).ok_or_else(|| {
                format!(
                    "unknown daemon fault kind {kind_part:?} (expected one of {})",
                    DaemonFaultKind::ALL.map(|k| k.label()).join(", ")
                )
            })?;
            let n = count_part
                .parse::<u32>()
                .map_err(|_| "daemon fault count must be a u32")?;
            self.explicit = std::mem::take(&mut self.explicit).daemon_fault(kind, n);
            return Ok(());
        }

        let (head, fields) = match item.split_once(':') {
            Some((h, f)) => (h, f),
            None => return Err("expected `kind@time:fields` or `kind<mv:fields`".into()),
        };
        let mut parts: Vec<&str> = fields.split(':').collect();
        // A trailing `chipN` scopes any timed directive to one chip.
        let chip = match parts.last() {
            Some(last) if last.starts_with("chip") => {
                let c = parse_chip(last)?;
                parts.pop();
                Some(c)
            }
            _ => None,
        };

        let (trigger, kind) = if let Some((kind_name, time)) = head.split_once('@') {
            let at = parse_time(time)?;
            let kind = match (kind_name, parts.as_slice()) {
                ("due", [d]) => FaultKind::Due {
                    domain: parse_domain(d)?,
                },
                ("crash", [c]) => FaultKind::CoreCrash {
                    core: parse_core(c)?,
                },
                ("droop", [d, depth, dur]) => FaultKind::Droop {
                    domain: parse_domain(d)?,
                    depth: parse_millivolts(depth)?,
                    duration: parse_time(dur)?,
                },
                ("stuck", [d, rate, dur]) => FaultKind::MonitorStuck {
                    domain: parse_domain(d)?,
                    rate: rate
                        .parse::<f64>()
                        .ok()
                        .filter(|r| (0.0..=1.0).contains(r))
                        .ok_or("rate must be a number in [0, 1]")?,
                    duration: parse_time(dur)?,
                },
                _ => {
                    return Err(format!(
                        "unknown directive or wrong fields for `{kind_name}@`"
                    ))
                }
            };
            (FaultTrigger::At(at), kind)
        } else if let Some((kind_name, mv)) = head.split_once('<') {
            if kind_name != "crash" {
                return Err(format!(
                    "only `crash<` takes a voltage trigger, got `{kind_name}<`"
                ));
            }
            let [d, c] = parts.as_slice() else {
                return Err("crash< needs `:dD:cC` fields".into());
            };
            (
                FaultTrigger::BelowVoltage {
                    domain: parse_domain(d)?,
                    threshold: parse_millivolts(mv)?,
                },
                FaultKind::CoreCrash {
                    core: parse_core(c)?,
                },
            )
        } else {
            return Err("expected `kind@time` or `crash<mv`".into());
        };

        self.explicit.push(ScheduledFault {
            chip,
            trigger,
            kind,
        });
        Ok(())
    }
}

fn parse_chip(s: &str) -> Result<ChipId, String> {
    s.strip_prefix("chip")
        .and_then(|n| n.parse::<u64>().ok())
        .map(ChipId)
        .ok_or_else(|| format!("expected `chipN`, got {s:?}"))
}

fn parse_domain(s: &str) -> Result<DomainId, String> {
    s.strip_prefix('d')
        .and_then(|n| n.parse::<usize>().ok())
        .map(DomainId)
        .ok_or_else(|| format!("expected `dN`, got {s:?}"))
}

fn parse_core(s: &str) -> Result<CoreId, String> {
    s.strip_prefix('c')
        .and_then(|n| n.parse::<usize>().ok())
        .map(CoreId)
        .ok_or_else(|| format!("expected `cN`, got {s:?}"))
}

fn parse_millivolts(s: &str) -> Result<Millivolts, String> {
    s.strip_suffix("mv")
        .and_then(|n| n.parse::<i32>().ok())
        .map(Millivolts)
        .ok_or_else(|| format!("expected `<n>mv`, got {s:?}"))
}

fn parse_time(s: &str) -> Result<SimTime, String> {
    let (digits, scale) = if let Some(n) = s.strip_suffix("us") {
        (n, 1)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        return Err(format!("expected a time like `500ms`, got {s:?}"));
    };
    digits
        .parse::<u64>()
        .map(|n| SimTime::from_micros(n * scale))
        .map_err(|_| format!("expected a time like `500ms`, got {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grammar_round_trip() {
        let spec = FaultSpec::parse(
            "due@500ms:d0,crash@1s:c1:chip2,crash<650mv:d1:c3,\
             droop@200ms:d0:80mv:50ms,stuck@100ms:d1:0.0:200ms:chip4,panic:chip3x2",
        )
        .unwrap();
        let plan = spec.materialize(8);
        assert_eq!(plan.events().len(), 5);
        assert_eq!(plan.panic_attempts(ChipId(3)), 2);
        assert_eq!(
            plan.events()[0],
            ScheduledFault {
                chip: None,
                trigger: FaultTrigger::At(SimTime::from_millis(500)),
                kind: FaultKind::Due {
                    domain: DomainId(0)
                },
            }
        );
        assert_eq!(plan.events()[1].chip, Some(ChipId(2)));
        assert_eq!(
            plan.events()[2].trigger,
            FaultTrigger::BelowVoltage {
                domain: DomainId(1),
                threshold: Millivolts(650),
            }
        );
        assert_eq!(plan.events()[4].chip, Some(ChipId(4)));
    }

    #[test]
    fn seeded_spec_scales_with_fleet_size() {
        let spec = FaultSpec::parse("seeded:42").unwrap();
        assert_eq!(
            spec.materialize(16),
            FaultPlan::seeded(42, 16, InjectionProfile::default()),
        );
        assert_ne!(spec.materialize(16), spec.materialize(32));
        // Explicit directives stack on top of the seeded population.
        let combo = FaultSpec::parse("seeded:42,panic:chip0x9").unwrap();
        assert_eq!(combo.materialize(16).panic_attempts(ChipId(0)), 9);
    }

    #[test]
    fn errors_name_the_directive() {
        let err = FaultSpec::parse("due@500ms").unwrap_err();
        assert!(err.contains("due@500ms"), "{err}");
        assert!(FaultSpec::parse("wat@1ms:d0").is_err());
        assert!(FaultSpec::parse("stuck@1ms:d0:1.5:2ms").is_err());
        assert!(FaultSpec::parse("panic:3").is_err());
        assert!(FaultSpec::parse("crash<650:d0:c0").is_err());
        assert!(FaultSpec::parse("hang:3").is_err());
        assert!(FaultSpec::parse("hang:chip1xZ").is_err());
        assert!(FaultSpec::parse("io-error:many").is_err());
        assert!(FaultSpec::parse("daemon:torn").is_err());
        assert!(FaultSpec::parse("daemon:meteor:1").is_err());
        assert!(FaultSpec::parse("daemon:torn:lots").is_err());
    }

    #[test]
    fn daemon_directives_parse_and_merge() {
        let spec = FaultSpec::parse("daemon:torn:2,daemon:enospc:1,daemon:torn:1").unwrap();
        let plan = spec.materialize(4);
        assert_eq!(plan.daemon_fault_count(DaemonFaultKind::TornFrame), 2);
        assert_eq!(plan.daemon_fault_count(DaemonFaultKind::Enospc), 1);
        assert_eq!(plan.daemon_fault_count(DaemonFaultKind::Overload), 0);
        assert!(plan.events().is_empty());
    }

    #[test]
    fn hang_and_io_error_directives_parse() {
        let spec = FaultSpec::parse("hang:chip2,hang:chip5x3,io-error:2").unwrap();
        let plan = spec.materialize(8);
        assert_eq!(plan.hang_attempts(ChipId(2)), 1);
        assert_eq!(plan.hang_attempts(ChipId(5)), 3);
        assert_eq!(plan.hang_attempts(ChipId(0)), 0);
        assert_eq!(plan.checkpoint_io_errors(), 2);
        assert!(plan.worker_panics().is_empty());
    }

    #[test]
    fn empty_and_whitespace_specs_are_empty_plans() {
        assert!(FaultSpec::parse("").unwrap().materialize(4).is_empty());
        assert!(FaultSpec::parse(" , ").unwrap().materialize(4).is_empty());
    }
}
