//! Tunables of the firmware rollback path.

use vs_types::{Millivolts, SimTime};

/// How the speculation loop recovers from DUEs and crashes.
///
/// The paper's firmware handles machine-check interrupts by raising the
/// domain back to a safe voltage; this policy parameterizes the simulated
/// cost and limits of that path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Simulated latency charged per rollback (firmware MCA handling plus
    /// core restart). Accounted in `RunStats::recovery_time`, not by
    /// stalling the simulation clock, so recovery never perturbs the
    /// deterministic tick stream.
    pub rollback_latency: SimTime,
    /// Safety margin re-applied above the last-known-safe set point when
    /// rolling back.
    pub safety_margin: Millivolts,
    /// Rollbacks (DUE or crash) a single domain may absorb before it is
    /// quarantined: parked at nominal with speculation disabled for the
    /// rest of the run.
    pub max_rollbacks_per_domain: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            rollback_latency: SimTime::from_millis(5),
            safety_margin: Millivolts(10),
            max_rollbacks_per_domain: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = RecoveryPolicy::default();
        assert!(p.rollback_latency > SimTime::ZERO);
        assert!(p.safety_margin.0 >= 0);
        assert!(p.max_rollbacks_per_domain > 0);
    }
}
