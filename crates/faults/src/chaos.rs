//! Seeded random compositions of the fault grammar, for chaos soaking.
//!
//! `repro --chaos N --seed S` draws `N` plans from this module and runs
//! each under the sentinel. Generation is a pure function of
//! `(seed, case, profile)` via `CounterRng`, so a soak is reproducible and
//! any failing case can be regenerated from its case number alone.

use crate::plan::{DaemonFaultKind, FaultKind, FaultPlan, FaultTrigger, ScheduledFault};
use vs_types::rng::CounterRng;
use vs_types::{ChipId, CoreId, DomainId, Millivolts, SimTime};

/// The shape of the fleet a chaos plan is drawn for, plus the injection
/// window faults are scheduled inside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProfile {
    /// Chips in the fleet (timed faults are scoped to one of them).
    pub num_chips: u64,
    /// Voltage domains per chip.
    pub num_domains: usize,
    /// Cores per chip.
    pub num_cores: usize,
    /// Faults fire at or after this simulated time.
    pub window_start: SimTime,
    /// Faults fire strictly before this simulated time.
    pub window_end: SimTime,
}

impl Default for ChaosProfile {
    /// Matches the quick fleet scale `repro --chaos` runs at: 4 small
    /// chips (one domain, two cores), faults inside [20 ms, 320 ms) of a
    /// 400 ms run.
    fn default() -> ChaosProfile {
        ChaosProfile {
            num_chips: 4,
            num_domains: 1,
            num_cores: 2,
            window_start: SimTime::from_millis(20),
            window_end: SimTime::from_millis(320),
        }
    }
}

/// Draws one random composition of the fault grammar.
///
/// Pure in `(seed, case, profile)`. Every plan carries 1–4 chip-level
/// faults (DUEs, timed and voltage-triggered crashes, droops, stuck
/// monitors), and may add worker panics, a worker hang, and checkpoint
/// I/O errors, so a soak exercises the chip recovery path, the fleet
/// retry/watchdog path, and the checkpoint path together.
pub fn chaos_plan(seed: u64, case: u64, profile: &ChaosProfile) -> FaultPlan {
    let mut rng = CounterRng::from_key(seed, &[0x000C_4A05_u64, case]);
    let mut plan = FaultPlan::new();
    let window_us = profile
        .window_end
        .as_micros()
        .saturating_sub(profile.window_start.as_micros())
        .max(1);

    let faults = 1 + rng.next_below(4);
    for _ in 0..faults {
        let chip = ChipId(rng.next_below(profile.num_chips));
        let domain = DomainId(rng.next_below(profile.num_domains as u64) as usize);
        let core = CoreId(rng.next_below(profile.num_cores as u64) as usize);
        // Snap to whole milliseconds so reproducer strings stay short.
        let at_us = profile.window_start.as_micros() + rng.next_below(window_us);
        let at = SimTime::from_millis(at_us / 1_000);
        let (trigger, kind) = match rng.next_below(5) {
            0 => (FaultTrigger::At(at), FaultKind::Due { domain }),
            1 => (FaultTrigger::At(at), FaultKind::CoreCrash { core }),
            2 => {
                let threshold = Millivolts(620 + rng.next_below(17) as i32 * 10);
                (
                    FaultTrigger::BelowVoltage { domain, threshold },
                    FaultKind::CoreCrash { core },
                )
            }
            3 => {
                let depth = Millivolts(20 + rng.next_below(9) as i32 * 10);
                let duration = SimTime::from_millis(10 + rng.next_below(6) * 10);
                (
                    FaultTrigger::At(at),
                    FaultKind::Droop {
                        domain,
                        depth,
                        duration,
                    },
                )
            }
            _ => {
                let rate = rng.next_below(11) as f64 / 10.0;
                let duration = SimTime::from_millis(10 + rng.next_below(6) * 10);
                (
                    FaultTrigger::At(at),
                    FaultKind::MonitorStuck {
                        domain,
                        rate,
                        duration,
                    },
                )
            }
        };
        plan.push(ScheduledFault {
            chip: Some(chip),
            trigger,
            kind,
        });
    }

    if rng.bernoulli(0.3) {
        let chip = ChipId(rng.next_below(profile.num_chips));
        let attempts = 1 + rng.next_below(2) as u32;
        plan = plan.worker_panic(chip, attempts);
    }
    if rng.bernoulli(0.2) {
        let chip = ChipId(rng.next_below(profile.num_chips));
        plan = plan.worker_hang(chip, 1);
    }
    if rng.bernoulli(0.15) {
        plan = plan.checkpoint_io_error(1 + rng.next_below(2) as u32);
    }
    plan
}

/// Draws one random composition of *daemon-tier* fault budgets.
///
/// Pure in `(seed, case)`. Every plan carries 1–3 daemon fault atoms with
/// small counts, covering the transport (torn frames, stalls,
/// disconnects), the store (ENOSPC, short writes, fsync failures), and
/// admission control (overload) — the surfaces `vs-fleetd`'s torture
/// harness injects into. Chip-level faults are deliberately absent: a
/// daemon chaos case must compute the same results as its fault-free
/// baseline, so any divergence indicts the daemon tier alone.
pub fn daemon_chaos_plan(seed: u64, case: u64) -> FaultPlan {
    let mut rng = CounterRng::from_key(seed, &[0x00DA_E404_u64, case]);
    let mut plan = FaultPlan::new();
    let atoms = 1 + rng.next_below(3);
    for _ in 0..atoms {
        let kind = DaemonFaultKind::ALL[rng.next_below(DaemonFaultKind::ALL.len() as u64) as usize];
        let count = match kind {
            // Overload floods a handful of extra submissions; the rest
            // stay at 1–2 occurrences so cases finish fast.
            DaemonFaultKind::Overload => 2 + rng.next_below(4) as u32,
            _ => 1 + rng.next_below(2) as u32,
        };
        plan = plan.daemon_fault(kind, count);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultSpec;

    #[test]
    fn generation_is_deterministic_in_seed_and_case() {
        let p = ChaosProfile::default();
        for case in 0..20 {
            assert_eq!(chaos_plan(7, case, &p), chaos_plan(7, case, &p));
        }
        assert_ne!(chaos_plan(7, 0, &p), chaos_plan(8, 0, &p));
    }

    #[test]
    fn cases_differ_and_stay_inside_the_profile() {
        let p = ChaosProfile::default();
        let mut distinct = 0;
        for case in 0..50 {
            let plan = chaos_plan(7, case, &p);
            assert!(!plan.is_empty());
            assert!(plan.events().len() <= 4);
            for f in plan.events() {
                let chip = f.chip.expect("chaos faults are chip-scoped");
                assert!(chip.0 < p.num_chips);
                if let crate::plan::FaultTrigger::At(at) = f.trigger {
                    assert!(at >= SimTime::from_millis(20), "{at:?}");
                    assert!(at < p.window_end);
                }
            }
            if chaos_plan(7, case, &p) != chaos_plan(7, (case + 1) % 50, &p) {
                distinct += 1;
            }
        }
        assert!(distinct > 40, "cases should rarely collide: {distinct}");
    }

    #[test]
    fn every_chaos_plan_round_trips_through_the_inject_grammar() {
        let p = ChaosProfile::default();
        for case in 0..50 {
            let plan = chaos_plan(7, case, &p);
            let spec = plan.to_spec_string();
            let reparsed = FaultSpec::parse(&spec)
                .unwrap_or_else(|e| panic!("case {case}: {e}"))
                .materialize(p.num_chips);
            assert_eq!(reparsed, plan, "case {case}, spec {spec}");
        }
    }

    #[test]
    fn daemon_chaos_plans_are_deterministic_daemon_only_and_round_trip() {
        let mut distinct = 0;
        for case in 0..50 {
            let plan = daemon_chaos_plan(7, case);
            assert_eq!(plan, daemon_chaos_plan(7, case));
            assert!(!plan.is_empty());
            assert!(
                plan.events().is_empty(),
                "daemon plans carry no chip faults"
            );
            assert!(plan.worker_panics().is_empty());
            assert!((1..=3).contains(&plan.daemon_faults().len()));
            let spec = plan.to_spec_string();
            let reparsed = FaultSpec::parse(&spec)
                .unwrap_or_else(|e| panic!("case {case}: {e}"))
                .materialize(4);
            assert_eq!(reparsed, plan, "case {case}, spec {spec}");
            if daemon_chaos_plan(7, case) != daemon_chaos_plan(7, (case + 1) % 50) {
                distinct += 1;
            }
        }
        assert!(distinct > 40, "cases should rarely collide: {distinct}");
        assert_ne!(daemon_chaos_plan(7, 0), daemon_chaos_plan(8, 0));
    }
}
