//! The declarative fault schedule.

use vs_types::rng::{splitmix64, CounterRng};
use vs_types::{ChipId, CoreId, DomainId, Millivolts, SimTime};

/// When a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// At a fixed simulated time.
    At(SimTime),
    /// The first tick a domain's effective voltage is observed below a
    /// threshold (the crash-at-undervolt hazard the emergency ceiling
    /// exists to avoid).
    BelowVoltage {
        /// The domain whose rail is watched.
        domain: DomainId,
        /// Fire when `v_eff` drops below this many millivolts.
        threshold: Millivolts,
    },
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A detected-uncorrectable ECC error is consumed by a domain: the
    /// firmware machine-check path must roll the domain back.
    Due {
        /// The domain consuming the DUE.
        domain: DomainId,
    },
    /// A core crashes outright (undervolt latch-up, not modeled by the
    /// organic logic-floor path).
    CoreCrash {
        /// The core that dies.
        core: CoreId,
    },
    /// A transient supply droop: the domain's set point is depressed by
    /// `depth` for `duration`, then restored.
    Droop {
        /// The domain whose rail droops.
        domain: DomainId,
        /// How far the set point is depressed.
        depth: Millivolts,
        /// How long the droop lasts.
        duration: SimTime,
    },
    /// The domain's monitor line sticks at a fixed error rate for
    /// `duration` (stuck-at-0 blinds the controller, stuck-at-1 floods it).
    MonitorStuck {
        /// The domain whose monitor sticks.
        domain: DomainId,
        /// The rate the stuck line reports, in `[0, 1]`.
        rate: f64,
        /// How long the fault lasts.
        duration: SimTime,
    },
}

/// A daemon-tier fault class: faults injected into vs-fleetd's transport,
/// store, or admission path rather than into the chip simulation. Counted
/// (each carries a budget of occurrences), consumed by the torture
/// harness, and invisible to the simulation engine — daemon faults never
/// change *what* a sweep computes, only how rough the road there is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DaemonFaultKind {
    /// A client-side frame write is torn mid-frame (a short write followed
    /// by a failed connection); the server sees a truncated frame.
    TornFrame,
    /// A read stalls (slow-loris) for a bounded pause before completing.
    StalledRead,
    /// The connection drops mid-exchange with a reset.
    Disconnect,
    /// A durable store write fails up front with ENOSPC.
    Enospc,
    /// A durable store write persists only a prefix (power-loss
    /// truncation).
    ShortWrite,
    /// A durability barrier (fsync) fails after the data is written.
    FsyncFail,
    /// Extra filler jobs flood the scheduler past admission control.
    Overload,
}

impl DaemonFaultKind {
    /// Every kind, in canonical (spec-string and digest) order.
    pub const ALL: [DaemonFaultKind; 7] = [
        DaemonFaultKind::TornFrame,
        DaemonFaultKind::StalledRead,
        DaemonFaultKind::Disconnect,
        DaemonFaultKind::Enospc,
        DaemonFaultKind::ShortWrite,
        DaemonFaultKind::FsyncFail,
        DaemonFaultKind::Overload,
    ];

    /// The spec-grammar label (`daemon:<label>:<count>`).
    pub fn label(self) -> &'static str {
        match self {
            DaemonFaultKind::TornFrame => "torn",
            DaemonFaultKind::StalledRead => "stall",
            DaemonFaultKind::Disconnect => "disconnect",
            DaemonFaultKind::Enospc => "enospc",
            DaemonFaultKind::ShortWrite => "short-write",
            DaemonFaultKind::FsyncFail => "fsync",
            DaemonFaultKind::Overload => "overload",
        }
    }

    /// Parses a spec-grammar label back to a kind.
    pub fn parse(label: &str) -> Option<DaemonFaultKind> {
        DaemonFaultKind::ALL
            .into_iter()
            .find(|k| k.label() == label)
    }

    fn index(self) -> u64 {
        DaemonFaultKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind present in ALL") as u64
    }
}

/// One fault in a plan: what, when, and (for fleet plans) on which chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// The chip the fault targets; `None` targets every chip (and is the
    /// only sensible value for single-system plans).
    pub chip: Option<ChipId>,
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What fires.
    pub kind: FaultKind,
}

/// Intensity knobs for [`FaultPlan::seeded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionProfile {
    /// Fraction of chips whose worker job panics (and is retried) once.
    pub panic_fraction: f64,
    /// Fraction of chips whose worker job panics *more* times than any
    /// retry budget will absorb (these land in the quarantine bucket).
    pub doomed_fraction: f64,
    /// Expected DUE injections per chip.
    pub dues_per_chip: f64,
    /// Expected forced core crashes per chip.
    pub crashes_per_chip: f64,
    /// Injection window: faults are scheduled uniformly inside
    /// `[window_start, window_end)`.
    pub window_start: SimTime,
    /// End of the injection window.
    pub window_end: SimTime,
}

impl Default for InjectionProfile {
    fn default() -> InjectionProfile {
        InjectionProfile {
            panic_fraction: 0.25,
            doomed_fraction: 0.0,
            dues_per_chip: 0.5,
            crashes_per_chip: 0.25,
            window_start: SimTime::from_millis(100),
            window_end: SimTime::from_millis(1600),
        }
    }
}

/// A deterministic schedule of faults.
///
/// A plan is pure data: it can be cloned into every fleet worker, scoped
/// to a single chip with [`FaultPlan::for_chip`], and folded into a config
/// fingerprint with [`FaultPlan::digest`]. An empty plan injects nothing
/// and costs nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<ScheduledFault>,
    /// `(chip, attempts)`: the worker job for `chip` panics on its first
    /// `attempts` attempts. Injected at the fleet layer, not in the chip
    /// simulation, so retried attempts replay identically.
    panics: Vec<(ChipId, u32)>,
    /// `(chip, attempts)`: the worker job for `chip` *hangs* (stops
    /// heartbeating, spinning until cancelled) on its first `attempts`
    /// attempts. Exercises the watchdog path: fleet-layer like panics, so
    /// retried attempts replay identically.
    hangs: Vec<(ChipId, u32)>,
    /// The first `n` checkpoint saves of a fleet run fail with an injected
    /// I/O error, exercising the save retry/backoff path deterministically.
    checkpoint_io_errors: u32,
    /// Daemon-tier fault budgets, `(kind, count)` with at most one entry
    /// per kind. Consumed by the vs-fleetd torture harness, never by the
    /// chip simulation.
    daemon: Vec<(DaemonFaultKind, u32)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.panics.is_empty()
            && self.hangs.is_empty()
            && self.checkpoint_io_errors == 0
            && self.daemon.is_empty()
    }

    /// The scheduled chip-level faults.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// The injected worker panics, as `(chip, attempts)` pairs.
    pub fn worker_panics(&self) -> &[(ChipId, u32)] {
        &self.panics
    }

    /// The injected worker hangs, as `(chip, attempts)` pairs.
    pub fn worker_hangs(&self) -> &[(ChipId, u32)] {
        &self.hangs
    }

    /// How many checkpoint saves should fail with an injected I/O error.
    pub fn checkpoint_io_errors(&self) -> u32 {
        self.checkpoint_io_errors
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: ScheduledFault) {
        self.events.push(fault);
    }

    /// Schedules a DUE for `domain` at `at` (builder form).
    pub fn due_at(mut self, at: SimTime, domain: DomainId) -> FaultPlan {
        self.events.push(ScheduledFault {
            chip: None,
            trigger: FaultTrigger::At(at),
            kind: FaultKind::Due { domain },
        });
        self
    }

    /// Schedules a forced crash of `core` at `at` (builder form).
    pub fn crash_at(mut self, at: SimTime, core: CoreId) -> FaultPlan {
        self.events.push(ScheduledFault {
            chip: None,
            trigger: FaultTrigger::At(at),
            kind: FaultKind::CoreCrash { core },
        });
        self
    }

    /// Schedules a crash of `core` the first time `domain` is observed
    /// below `threshold` (builder form).
    pub fn crash_below(
        mut self,
        domain: DomainId,
        threshold: Millivolts,
        core: CoreId,
    ) -> FaultPlan {
        self.events.push(ScheduledFault {
            chip: None,
            trigger: FaultTrigger::BelowVoltage { domain, threshold },
            kind: FaultKind::CoreCrash { core },
        });
        self
    }

    /// Schedules a transient droop (builder form).
    pub fn droop_at(
        mut self,
        at: SimTime,
        domain: DomainId,
        depth: Millivolts,
        duration: SimTime,
    ) -> FaultPlan {
        self.events.push(ScheduledFault {
            chip: None,
            trigger: FaultTrigger::At(at),
            kind: FaultKind::Droop {
                domain,
                depth,
                duration,
            },
        });
        self
    }

    /// Schedules a monitor stuck-at window (builder form).
    pub fn stuck_at(
        mut self,
        at: SimTime,
        domain: DomainId,
        rate: f64,
        duration: SimTime,
    ) -> FaultPlan {
        self.events.push(ScheduledFault {
            chip: None,
            trigger: FaultTrigger::At(at),
            kind: FaultKind::MonitorStuck {
                domain,
                rate,
                duration,
            },
        });
        self
    }

    /// Makes the worker job for `chip` panic on its first `attempts`
    /// attempts (builder form). With a retry budget of `attempts` or more
    /// the chip eventually completes; with less it is quarantined.
    pub fn worker_panic(mut self, chip: ChipId, attempts: u32) -> FaultPlan {
        match self.panics.iter_mut().find(|(c, _)| *c == chip) {
            Some((_, n)) => *n = (*n).max(attempts),
            None => self.panics.push((chip, attempts)),
        }
        self
    }

    /// How many attempts of `chip`'s worker job should panic.
    pub fn panic_attempts(&self, chip: ChipId) -> u32 {
        self.panics
            .iter()
            .find(|(c, _)| *c == chip)
            .map_or(0, |(_, n)| *n)
    }

    /// Makes the worker job for `chip` hang — spin without heartbeating
    /// until its watchdog cancels it — on its first `attempts` attempts
    /// (builder form). With a retry budget of `attempts` or more the chip
    /// eventually completes; with less it is quarantined.
    pub fn worker_hang(mut self, chip: ChipId, attempts: u32) -> FaultPlan {
        match self.hangs.iter_mut().find(|(c, _)| *c == chip) {
            Some((_, n)) => *n = (*n).max(attempts),
            None => self.hangs.push((chip, attempts)),
        }
        self
    }

    /// How many attempts of `chip`'s worker job should hang.
    pub fn hang_attempts(&self, chip: ChipId) -> u32 {
        self.hangs
            .iter()
            .find(|(c, _)| *c == chip)
            .map_or(0, |(_, n)| *n)
    }

    /// Makes the first `n` checkpoint saves fail with an injected I/O
    /// error (builder form). Saturating: combining plans keeps the max.
    pub fn checkpoint_io_error(mut self, n: u32) -> FaultPlan {
        self.checkpoint_io_errors = self.checkpoint_io_errors.max(n);
        self
    }

    /// Budgets `n` occurrences of the daemon-tier fault `kind` (builder
    /// form). Max-merge like panics: combining plans keeps the larger
    /// budget. A zero count is dropped (it injects nothing).
    pub fn daemon_fault(mut self, kind: DaemonFaultKind, n: u32) -> FaultPlan {
        if n == 0 {
            return self;
        }
        match self.daemon.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, have)) => *have = (*have).max(n),
            None => self.daemon.push((kind, n)),
        }
        self
    }

    /// The daemon-tier fault budgets, `(kind, count)` in insertion order.
    pub fn daemon_faults(&self) -> &[(DaemonFaultKind, u32)] {
        &self.daemon
    }

    /// The budget for one daemon-tier fault kind (0 when absent).
    pub fn daemon_fault_count(&self, kind: DaemonFaultKind) -> u32 {
        self.daemon
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// The plan scoped to one chip: events targeting other chips are
    /// dropped and surviving events lose their chip tag (worker panics are
    /// kept as-is; they are consumed at the fleet layer).
    pub fn for_chip(&self, chip: ChipId) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .filter(|f| f.chip.is_none() || f.chip == Some(chip))
                .map(|f| ScheduledFault { chip: None, ..*f })
                .collect(),
            panics: self.panics.clone(),
            hangs: self.hangs.clone(),
            checkpoint_io_errors: self.checkpoint_io_errors,
            daemon: self.daemon.clone(),
        }
    }

    /// Draws a plan from a seed: a deterministic population of worker
    /// panics, DUEs, and forced crashes across `num_chips` chips, shaped
    /// by `profile`. The same `(seed, num_chips, profile)` always yields
    /// the same plan.
    pub fn seeded(seed: u64, num_chips: u64, profile: InjectionProfile) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let span = profile
            .window_end
            .saturating_sub(profile.window_start)
            .as_micros()
            .max(1);
        for chip in 0..num_chips {
            let mut rng = CounterRng::from_key(seed, &[0xFA_017, chip]);
            if rng.next_f64() < profile.doomed_fraction {
                plan = plan.worker_panic(ChipId(chip), u32::MAX);
            } else if rng.next_f64() < profile.panic_fraction {
                plan = plan.worker_panic(ChipId(chip), 1);
            }
            let mut schedule = |plan: &mut FaultPlan, expected: f64, is_due: bool| {
                let n = expected.floor() as u64 + u64::from(rng.bernoulli(expected.fract()));
                for _ in 0..n {
                    let at = profile.window_start + SimTime::from_micros(rng.next_below(span));
                    let kind = if is_due {
                        FaultKind::Due {
                            domain: DomainId(0),
                        }
                    } else {
                        FaultKind::CoreCrash { core: CoreId(0) }
                    };
                    plan.push(ScheduledFault {
                        chip: Some(ChipId(chip)),
                        trigger: FaultTrigger::At(at),
                        kind,
                    });
                }
            };
            schedule(&mut plan, profile.dues_per_chip, true);
            schedule(&mut plan, profile.crashes_per_chip, false);
        }
        plan
    }

    /// A stable 64-bit digest of the plan, for config fingerprints: two
    /// plans digest equal iff they schedule the same faults in the same
    /// order. The empty plan digests to 0.
    pub fn digest(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut h = splitmix64(0xFA17_D163);
        let mut mix = |v: u64| h = splitmix64(h ^ v);
        for f in &self.events {
            mix(match f.chip {
                Some(c) => c.0 + 1,
                None => 0,
            });
            match f.trigger {
                FaultTrigger::At(t) => {
                    mix(1);
                    mix(t.as_micros());
                }
                FaultTrigger::BelowVoltage { domain, threshold } => {
                    mix(2);
                    mix(domain.0 as u64);
                    mix(threshold.0 as u64);
                }
            }
            match f.kind {
                FaultKind::Due { domain } => {
                    mix(1);
                    mix(domain.0 as u64);
                }
                FaultKind::CoreCrash { core } => {
                    mix(2);
                    mix(core.0 as u64);
                }
                FaultKind::Droop {
                    domain,
                    depth,
                    duration,
                } => {
                    mix(3);
                    mix(domain.0 as u64);
                    mix(depth.0 as u64);
                    mix(duration.as_micros());
                }
                FaultKind::MonitorStuck {
                    domain,
                    rate,
                    duration,
                } => {
                    mix(4);
                    mix(domain.0 as u64);
                    mix(rate.to_bits());
                    mix(duration.as_micros());
                }
            }
        }
        for &(chip, attempts) in &self.panics {
            mix(5);
            mix(chip.0);
            mix(u64::from(attempts));
        }
        for &(chip, attempts) in &self.hangs {
            mix(6);
            mix(chip.0);
            mix(u64::from(attempts));
        }
        if self.checkpoint_io_errors > 0 {
            mix(7);
            mix(u64::from(self.checkpoint_io_errors));
        }
        for &(kind, n) in &self.daemon {
            mix(8);
            mix(kind.index());
            mix(u64::from(n));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_scoping() {
        let plan = FaultPlan::new()
            .due_at(SimTime::from_millis(10), DomainId(1))
            .crash_at(SimTime::from_millis(20), CoreId(2))
            .worker_panic(ChipId(3), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.panic_attempts(ChipId(3)), 2);
        assert_eq!(plan.panic_attempts(ChipId(4)), 0);

        let mut fleet = plan.clone();
        fleet.push(ScheduledFault {
            chip: Some(ChipId(7)),
            trigger: FaultTrigger::At(SimTime::from_millis(30)),
            kind: FaultKind::Due {
                domain: DomainId(0),
            },
        });
        // Chip 7 sees the shared events plus its own; chip 1 only shared.
        assert_eq!(fleet.for_chip(ChipId(7)).events().len(), 3);
        assert_eq!(fleet.for_chip(ChipId(1)).events().len(), 2);
        assert!(fleet
            .for_chip(ChipId(7))
            .events()
            .iter()
            .all(|f| f.chip.is_none()));
    }

    #[test]
    fn worker_panic_takes_the_max() {
        let plan = FaultPlan::new()
            .worker_panic(ChipId(1), 3)
            .worker_panic(ChipId(1), 1);
        assert_eq!(plan.panic_attempts(ChipId(1)), 3);
        assert_eq!(plan.worker_panics().len(), 1);
    }

    #[test]
    fn hangs_and_io_errors_count_as_content() {
        let plan = FaultPlan::new().worker_hang(ChipId(2), 1);
        assert!(!plan.is_empty());
        assert_eq!(plan.hang_attempts(ChipId(2)), 1);
        assert_eq!(plan.hang_attempts(ChipId(3)), 0);
        // Max-merge, like panics.
        let plan = plan.worker_hang(ChipId(2), 4).worker_hang(ChipId(2), 2);
        assert_eq!(plan.hang_attempts(ChipId(2)), 4);
        assert_eq!(plan.worker_hangs().len(), 1);
        // Scoping keeps hangs (consumed at the fleet layer, like panics).
        assert_eq!(plan.for_chip(ChipId(9)).hang_attempts(ChipId(2)), 4);

        let io = FaultPlan::new().checkpoint_io_error(3);
        assert!(!io.is_empty());
        assert_eq!(io.checkpoint_io_errors(), 3);
        assert_eq!(io.checkpoint_io_error(1).checkpoint_io_errors(), 3);
        assert_eq!(FaultPlan::new().checkpoint_io_errors(), 0);
    }

    #[test]
    fn digest_distinguishes_hangs_from_panics() {
        let panic = FaultPlan::new().worker_panic(ChipId(1), 2);
        let hang = FaultPlan::new().worker_hang(ChipId(1), 2);
        let io = FaultPlan::new().checkpoint_io_error(2);
        assert_ne!(panic.digest(), hang.digest());
        assert_ne!(panic.digest(), io.digest());
        assert_ne!(hang.digest(), io.digest());
        assert_ne!(hang.digest(), 0);
        assert_eq!(
            hang.digest(),
            FaultPlan::new().worker_hang(ChipId(1), 2).digest()
        );
    }

    #[test]
    fn seeded_is_deterministic_and_profile_shaped() {
        let a = FaultPlan::seeded(42, 64, InjectionProfile::default());
        let b = FaultPlan::seeded(42, 64, InjectionProfile::default());
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(43, 64, InjectionProfile::default()));
        // Roughly a quarter of chips panic once.
        let panics = a.worker_panics().len();
        assert!((4..=30).contains(&panics), "got {panics} panics");
        // Scheduled events exist and fall inside the window.
        assert!(!a.events().is_empty());
        for f in a.events() {
            let FaultTrigger::At(t) = f.trigger else {
                panic!("seeded plans schedule by time")
            };
            assert!(t >= SimTime::from_millis(100) && t < SimTime::from_millis(1600));
            assert!(f.chip.is_some());
        }
    }

    #[test]
    fn daemon_faults_count_as_content_and_max_merge() {
        let plan = FaultPlan::new().daemon_fault(DaemonFaultKind::TornFrame, 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.daemon_fault_count(DaemonFaultKind::TornFrame), 2);
        assert_eq!(plan.daemon_fault_count(DaemonFaultKind::Enospc), 0);
        // Max-merge like panics; zero counts are dropped.
        let plan = plan
            .daemon_fault(DaemonFaultKind::TornFrame, 1)
            .daemon_fault(DaemonFaultKind::TornFrame, 5)
            .daemon_fault(DaemonFaultKind::Overload, 0);
        assert_eq!(plan.daemon_fault_count(DaemonFaultKind::TornFrame), 5);
        assert_eq!(plan.daemon_faults().len(), 1);
        // Scoping keeps daemon faults (they are process-level).
        assert_eq!(
            plan.for_chip(ChipId(3))
                .daemon_fault_count(DaemonFaultKind::TornFrame),
            5
        );
        // Label round-trip for every kind.
        for kind in DaemonFaultKind::ALL {
            assert_eq!(DaemonFaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(DaemonFaultKind::parse("not-a-kind"), None);
    }

    #[test]
    fn digest_distinguishes_daemon_kinds_and_counts() {
        let torn = FaultPlan::new().daemon_fault(DaemonFaultKind::TornFrame, 1);
        let stall = FaultPlan::new().daemon_fault(DaemonFaultKind::StalledRead, 1);
        let torn2 = FaultPlan::new().daemon_fault(DaemonFaultKind::TornFrame, 2);
        assert_ne!(torn.digest(), 0);
        assert_ne!(torn.digest(), stall.digest());
        assert_ne!(torn.digest(), torn2.digest());
        assert_ne!(
            torn.digest(),
            FaultPlan::new().checkpoint_io_error(1).digest()
        );
        assert_eq!(
            torn.digest(),
            FaultPlan::new()
                .daemon_fault(DaemonFaultKind::TornFrame, 1)
                .digest()
        );
    }

    #[test]
    fn digest_tracks_content() {
        assert_eq!(FaultPlan::new().digest(), 0);
        let a = FaultPlan::new().due_at(SimTime::from_millis(10), DomainId(0));
        let b = FaultPlan::new().due_at(SimTime::from_millis(10), DomainId(0));
        assert_eq!(a.digest(), b.digest());
        assert_ne!(
            a.digest(),
            FaultPlan::new()
                .due_at(SimTime::from_millis(11), DomainId(0))
                .digest()
        );
        assert_ne!(a.digest(), a.clone().worker_panic(ChipId(0), 1).digest());
    }
}
