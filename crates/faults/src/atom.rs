//! Plan decomposition and canonical unparsing.
//!
//! Delta-debugging a failing [`FaultPlan`] needs two things the plan type
//! does not otherwise expose: a flat list of independently removable
//! pieces ([`FaultAtom`]), and a way to print any plan back into the
//! `--inject` grammar so a minimized plan is a ready-to-paste reproducer.
//! The unparse is *canonical* — times always pick the largest exact unit,
//! fields are emitted in grammar order — so the same plan always prints
//! the same string, which is what makes minimized reproducers
//! byte-comparable across worker counts.

use crate::plan::{DaemonFaultKind, FaultKind, FaultPlan, FaultTrigger, ScheduledFault};
use std::fmt::Write as _;
use vs_types::{ChipId, SimTime};

/// One independently removable piece of a [`FaultPlan`]: a scheduled
/// chip-level fault, a worker panic/hang schedule, the checkpoint
/// I/O-error count, or a daemon-tier fault budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAtom {
    /// One scheduled chip-level fault.
    Event(ScheduledFault),
    /// `(chip, attempts)`: the chip's worker panics on its first
    /// `attempts` attempts.
    WorkerPanic(ChipId, u32),
    /// `(chip, attempts)`: the chip's worker hangs on its first
    /// `attempts` attempts.
    WorkerHang(ChipId, u32),
    /// The first `n` checkpoint saves fail.
    CheckpointIoErrors(u32),
    /// `(kind, count)`: a counted daemon-tier fault budget.
    Daemon(DaemonFaultKind, u32),
}

impl FaultAtom {
    /// The atom as one `--inject` directive.
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        match *self {
            FaultAtom::Event(f) => write_event(&mut out, &f),
            FaultAtom::WorkerPanic(chip, attempts) => {
                let _ = write!(out, "panic:chip{}", chip.0);
                if attempts != 1 {
                    let _ = write!(out, "x{attempts}");
                }
            }
            FaultAtom::WorkerHang(chip, attempts) => {
                let _ = write!(out, "hang:chip{}", chip.0);
                if attempts != 1 {
                    let _ = write!(out, "x{attempts}");
                }
            }
            FaultAtom::CheckpointIoErrors(n) => {
                let _ = write!(out, "io-error:{n}");
            }
            FaultAtom::Daemon(kind, n) => {
                let _ = write!(out, "daemon:{}:{n}", kind.label());
            }
        }
        out
    }
}

fn write_time(out: &mut String, t: SimTime) {
    let us = t.as_micros();
    if us.is_multiple_of(1_000_000) {
        let _ = write!(out, "{}s", us / 1_000_000);
    } else if us.is_multiple_of(1_000) {
        let _ = write!(out, "{}ms", us / 1_000);
    } else {
        let _ = write!(out, "{us}us");
    }
}

fn write_event(out: &mut String, f: &ScheduledFault) {
    match (f.trigger, f.kind) {
        (FaultTrigger::At(at), FaultKind::Due { domain }) => {
            out.push_str("due@");
            write_time(out, at);
            let _ = write!(out, ":d{}", domain.0);
        }
        (FaultTrigger::At(at), FaultKind::CoreCrash { core }) => {
            out.push_str("crash@");
            write_time(out, at);
            let _ = write!(out, ":c{}", core.0);
        }
        (
            FaultTrigger::At(at),
            FaultKind::Droop {
                domain,
                depth,
                duration,
            },
        ) => {
            out.push_str("droop@");
            write_time(out, at);
            let _ = write!(out, ":d{}:{}mv:", domain.0, depth.0);
            write_time(out, duration);
        }
        (
            FaultTrigger::At(at),
            FaultKind::MonitorStuck {
                domain,
                rate,
                duration,
            },
        ) => {
            out.push_str("stuck@");
            write_time(out, at);
            let _ = write!(out, ":d{}:{rate}:", domain.0);
            write_time(out, duration);
        }
        (FaultTrigger::BelowVoltage { domain, threshold }, FaultKind::CoreCrash { core }) => {
            let _ = write!(out, "crash<{}mv:d{}:c{}", threshold.0, domain.0, core.0);
        }
        // The grammar has no spelling for a voltage-triggered non-crash
        // fault; no builder constructs one, but a hand-built plan could.
        // Render the nearest crash directive so the output still parses.
        (FaultTrigger::BelowVoltage { domain, threshold }, _) => {
            let _ = write!(out, "crash<{}mv:d{}:c0", threshold.0, domain.0);
        }
    }
    if let Some(chip) = f.chip {
        let _ = write!(out, ":chip{}", chip.0);
    }
}

impl FaultPlan {
    /// Decomposes the plan into independently removable atoms, in a
    /// deterministic order: scheduled events first (in plan order), then
    /// panics, hangs, and the I/O-error count.
    pub fn atoms(&self) -> Vec<FaultAtom> {
        let mut atoms: Vec<FaultAtom> = self
            .events()
            .iter()
            .copied()
            .map(FaultAtom::Event)
            .collect();
        atoms.extend(
            self.worker_panics()
                .iter()
                .map(|&(c, n)| FaultAtom::WorkerPanic(c, n)),
        );
        atoms.extend(
            self.worker_hangs()
                .iter()
                .map(|&(c, n)| FaultAtom::WorkerHang(c, n)),
        );
        if self.checkpoint_io_errors() > 0 {
            atoms.push(FaultAtom::CheckpointIoErrors(self.checkpoint_io_errors()));
        }
        atoms.extend(
            self.daemon_faults()
                .iter()
                .map(|&(k, n)| FaultAtom::Daemon(k, n)),
        );
        atoms
    }

    /// Rebuilds a plan from a subset of atoms (the inverse of
    /// [`FaultPlan::atoms`] when given all of them).
    pub fn from_atoms(atoms: &[FaultAtom]) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for atom in atoms {
            match *atom {
                FaultAtom::Event(f) => plan.push(f),
                FaultAtom::WorkerPanic(chip, attempts) => {
                    plan = plan.worker_panic(chip, attempts);
                }
                FaultAtom::WorkerHang(chip, attempts) => {
                    plan = plan.worker_hang(chip, attempts);
                }
                FaultAtom::CheckpointIoErrors(n) => {
                    plan = plan.checkpoint_io_error(n);
                }
                FaultAtom::Daemon(kind, n) => {
                    plan = plan.daemon_fault(kind, n);
                }
            }
        }
        plan
    }

    /// The whole plan as one `--inject` string, in canonical form: the
    /// same plan always prints the same string, and the string parses
    /// back ([`crate::FaultSpec::parse`]) into an equal plan. An empty plan
    /// prints as the empty string.
    pub fn to_spec_string(&self) -> String {
        self.atoms()
            .iter()
            .map(|a| a.to_spec())
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultSpec;
    use vs_types::{CoreId, DomainId, Millivolts};

    fn full_plan() -> FaultPlan {
        FaultPlan::new()
            .due_at(SimTime::from_millis(500), DomainId(0))
            .crash_at(SimTime::from_secs(1), CoreId(1))
            .crash_below(DomainId(1), Millivolts(650), CoreId(3))
            .droop_at(
                SimTime::from_millis(200),
                DomainId(0),
                Millivolts(80),
                SimTime::from_millis(50),
            )
            .stuck_at(
                SimTime::from_micros(100_500),
                DomainId(1),
                0.25,
                SimTime::from_millis(200),
            )
            .worker_panic(ChipId(3), 2)
            .worker_hang(ChipId(5), 1)
            .checkpoint_io_error(2)
            .daemon_fault(DaemonFaultKind::TornFrame, 2)
            .daemon_fault(DaemonFaultKind::Enospc, 1)
    }

    #[test]
    fn atoms_round_trip_through_from_atoms() {
        let plan = full_plan();
        let atoms = plan.atoms();
        assert_eq!(atoms.len(), 10);
        assert_eq!(FaultPlan::from_atoms(&atoms), plan);
        assert_eq!(FaultPlan::from_atoms(&[]), FaultPlan::new());
    }

    #[test]
    fn spec_string_round_trips_through_the_parser() {
        let plan = full_plan();
        let spec = plan.to_spec_string();
        let reparsed = FaultSpec::parse(&spec).unwrap().materialize(8);
        assert_eq!(reparsed, plan, "spec was: {spec}");
        // Canonical: unparse(parse(unparse(p))) == unparse(p).
        assert_eq!(reparsed.to_spec_string(), spec);
    }

    #[test]
    fn times_pick_the_largest_exact_unit() {
        let plan = FaultPlan::new()
            .due_at(SimTime::from_secs(2), DomainId(0))
            .due_at(SimTime::from_millis(1500), DomainId(0))
            .due_at(SimTime::from_micros(1501), DomainId(0));
        assert_eq!(
            plan.to_spec_string(),
            "due@2s:d0,due@1500ms:d0,due@1501us:d0"
        );
    }

    #[test]
    fn chip_scope_and_counts_are_preserved() {
        let mut plan = FaultPlan::new().worker_panic(ChipId(4), 1);
        plan.push(ScheduledFault {
            chip: Some(ChipId(2)),
            trigger: FaultTrigger::At(SimTime::from_millis(5)),
            kind: FaultKind::Due {
                domain: DomainId(1),
            },
        });
        assert_eq!(plan.to_spec_string(), "due@5ms:d1:chip2,panic:chip4");
        let reparsed = FaultSpec::parse(&plan.to_spec_string())
            .unwrap()
            .materialize(8);
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn daemon_atoms_unparse_canonically() {
        let plan = FaultPlan::new()
            .daemon_fault(DaemonFaultKind::Disconnect, 1)
            .daemon_fault(DaemonFaultKind::Overload, 3);
        assert_eq!(
            plan.to_spec_string(),
            "daemon:disconnect:1,daemon:overload:3"
        );
        let reparsed = FaultSpec::parse(&plan.to_spec_string())
            .unwrap()
            .materialize(4);
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn stuck_rate_round_trips_exactly() {
        for rate in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let plan = FaultPlan::new().stuck_at(
                SimTime::from_millis(10),
                DomainId(0),
                rate,
                SimTime::from_millis(20),
            );
            let reparsed = FaultSpec::parse(&plan.to_spec_string())
                .unwrap()
                .materialize(1);
            assert_eq!(reparsed, plan, "rate {rate}");
        }
    }
}
