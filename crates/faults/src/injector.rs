//! The runtime half: turning a plan into per-tick fault actions.

use crate::plan::{FaultKind, FaultPlan, FaultTrigger, ScheduledFault};
use vs_types::{CoreId, DomainId, Millivolts, SimTime};

/// A fault (or fault-window edge) the simulation must apply this tick.
///
/// Transient faults are delivered as start/end pairs so the consumer can
/// apply and undo their effect without tracking windows itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// A DUE was consumed by `domain`: run the firmware rollback path.
    Due {
        /// The affected domain.
        domain: DomainId,
    },
    /// `core` crashed: force it down, then recover it.
    CoreCrash {
        /// The core that dies.
        core: CoreId,
    },
    /// A droop begins: depress the domain's set point by `depth`.
    DroopStart {
        /// The affected domain.
        domain: DomainId,
        /// How far the set point drops.
        depth: Millivolts,
    },
    /// The droop ends: restore the set point by `depth`.
    DroopEnd {
        /// The affected domain.
        domain: DomainId,
        /// How far the set point was dropped.
        depth: Millivolts,
    },
    /// The domain's monitor line sticks at `rate`.
    StuckStart {
        /// The affected domain.
        domain: DomainId,
        /// The rate the stuck line reports.
        rate: f64,
    },
    /// The stuck-at fault clears.
    StuckEnd {
        /// The affected domain.
        domain: DomainId,
    },
}

/// Replays a [`FaultPlan`] against a running simulation.
///
/// Poll once per tick with the current simulated time and the per-domain
/// effective voltages observed that tick; the injector returns the actions
/// firing now. Time-triggered faults fire on the first poll at or after
/// their instant; voltage-triggered faults fire on the first poll that
/// observes the rail below the threshold. Every scheduled fault fires at
/// most once.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    pending: Vec<ScheduledFault>,
    /// Active transient windows: `(end_time, end_action)`.
    active: Vec<(SimTime, FaultAction)>,
}

impl FaultInjector {
    /// Builds an injector over a (chip-scoped) plan. Worker-panic entries
    /// are ignored — they belong to the fleet layer.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        FaultInjector {
            pending: plan.events().to_vec(),
            active: Vec::new(),
        }
    }

    /// True when nothing is pending and no transient window is open.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty()
    }

    /// Advances to `now`, given the per-domain effective voltages observed
    /// this tick, and returns the actions firing. Expired transient
    /// windows produce their end actions first (so a consumer never sees a
    /// new window open on a domain before the old one closes).
    pub fn poll(&mut self, now: SimTime, v_eff_mv: &[f64]) -> Vec<FaultAction> {
        let mut fired = Vec::new();

        // Close expired windows.
        let mut i = 0;
        while i < self.active.len() {
            if now >= self.active[i].0 {
                fired.push(self.active.remove(i).1);
            } else {
                i += 1;
            }
        }

        // Fire pending faults whose trigger condition holds.
        let mut i = 0;
        while i < self.pending.len() {
            let due_now = match self.pending[i].trigger {
                FaultTrigger::At(t) => now >= t,
                FaultTrigger::BelowVoltage { domain, threshold } => v_eff_mv
                    .get(domain.0)
                    .is_some_and(|v| *v < f64::from(threshold.0)),
            };
            if !due_now {
                i += 1;
                continue;
            }
            let fault = self.pending.remove(i);
            match fault.kind {
                FaultKind::Due { domain } => fired.push(FaultAction::Due { domain }),
                FaultKind::CoreCrash { core } => fired.push(FaultAction::CoreCrash { core }),
                FaultKind::Droop {
                    domain,
                    depth,
                    duration,
                } => {
                    fired.push(FaultAction::DroopStart { domain, depth });
                    self.active
                        .push((now + duration, FaultAction::DroopEnd { domain, depth }));
                }
                FaultKind::MonitorStuck {
                    domain,
                    rate,
                    duration,
                } => {
                    fired.push(FaultAction::StuckStart { domain, rate });
                    self.active
                        .push((now + duration, FaultAction::StuckEnd { domain }));
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn time_triggers_fire_once_at_or_after_the_instant() {
        let plan = FaultPlan::new().due_at(ms(5), DomainId(1));
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.poll(ms(4), &[800.0, 800.0]).is_empty());
        // Polling past the instant (e.g. coarse ticks) still fires it.
        assert_eq!(
            inj.poll(ms(7), &[800.0, 800.0]),
            vec![FaultAction::Due {
                domain: DomainId(1)
            }]
        );
        assert!(inj.poll(ms(8), &[800.0, 800.0]).is_empty());
        assert!(inj.is_idle());
    }

    #[test]
    fn voltage_triggers_watch_the_rail() {
        let plan = FaultPlan::new().crash_below(DomainId(0), Millivolts(650), CoreId(1));
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.poll(ms(1), &[700.0]).is_empty());
        assert_eq!(
            inj.poll(ms(2), &[649.0]),
            vec![FaultAction::CoreCrash { core: CoreId(1) }]
        );
        assert!(inj.is_idle());
    }

    #[test]
    fn transient_windows_open_and_close() {
        let plan = FaultPlan::new()
            .droop_at(ms(2), DomainId(0), Millivolts(40), ms(3))
            .stuck_at(ms(2), DomainId(1), 0.0, ms(4));
        let mut inj = FaultInjector::new(&plan);
        let start = inj.poll(ms(2), &[800.0, 800.0]);
        assert!(start.contains(&FaultAction::DroopStart {
            domain: DomainId(0),
            depth: Millivolts(40)
        }));
        assert!(start.contains(&FaultAction::StuckStart {
            domain: DomainId(1),
            rate: 0.0
        }));
        assert!(!inj.is_idle());
        assert!(inj.poll(ms(4), &[800.0, 800.0]).is_empty());
        assert_eq!(
            inj.poll(ms(5), &[800.0, 800.0]),
            vec![FaultAction::DroopEnd {
                domain: DomainId(0),
                depth: Millivolts(40)
            }]
        );
        assert_eq!(
            inj.poll(ms(6), &[800.0, 800.0]),
            vec![FaultAction::StuckEnd {
                domain: DomainId(1)
            }]
        );
        assert!(inj.is_idle());
    }
}
