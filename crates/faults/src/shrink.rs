//! Delta-debugging minimization of failing fault plans.
//!
//! Given a plan that makes some oracle fail (for the chaos harness: "the
//! sentinel reports a violation when the fleet runs under this plan"),
//! [`minimize`] shrinks it to a *1-minimal* plan — removing any single
//! remaining atom makes the failure disappear — using the classic `ddmin`
//! algorithm (Zeller & Hildebrandt, "Simplifying and Isolating
//! Failure-Inducing Input"). After the set is minimal, counted atoms
//! (panic/hang attempts, I/O-error counts) are additionally shrunk to 1.
//!
//! Determinism: the algorithm itself is deterministic (fixed partition
//! order, first failing candidate wins), so as long as the oracle is a
//! pure function of the plan — which fleet runs are, for any worker
//! count — the minimized plan, and therefore its `--inject` string, is
//! identical on every machine and worker count.

use crate::atom::FaultAtom;
use crate::plan::FaultPlan;

/// Shrinks an arbitrary failing item set to a 1-minimal subset.
///
/// Classic `ddmin` over any clonable item type: `fails(candidate)` must
/// return `true` when the candidate subset still reproduces the failure.
/// The input set is expected to fail; if it does not, it is returned
/// unchanged. Relative item order is preserved, the partition order is
/// fixed, and the first failing candidate wins, so the result is
/// deterministic whenever the oracle is a pure function of the subset.
/// The oracle is invoked O(n²) times in the worst case.
pub fn ddmin<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut items = items.to_vec();
    if !fails(&items) {
        return items;
    }
    let mut granularity = 2usize;

    while items.len() >= 2 {
        let chunk = items.len().div_ceil(granularity);
        let chunks: Vec<Vec<T>> = items.chunks(chunk).map(|c| c.to_vec()).collect();
        let mut reduced = false;

        // Try each subset alone.
        for part in &chunks {
            if part.len() < items.len() && fails(part) {
                items = part.clone();
                granularity = 2;
                reduced = true;
                break;
            }
        }
        // Then each complement.
        if !reduced && chunks.len() > 2 {
            for i in 0..chunks.len() {
                let complement: Vec<T> = chunks
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, c)| c.iter().cloned())
                    .collect();
                if fails(&complement) {
                    items = complement;
                    granularity = granularity.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if granularity >= items.len() {
                break;
            }
            granularity = (granularity * 2).min(items.len());
        }
    }
    items
}

/// Shrinks `plan` to a 1-minimal failing plan under `fails`.
///
/// `fails(candidate)` must return `true` when the candidate still
/// reproduces the failure. The input plan is expected to fail; if it does
/// not, it is returned unchanged. Built on [`ddmin`] over the plan's
/// atoms — chaos plans are small (≤ ~7 atoms), so the O(n²) oracle cost
/// stays cheap.
pub fn minimize(plan: &FaultPlan, mut fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    if !fails(plan) {
        return plan.clone();
    }
    let mut atoms = ddmin(&plan.atoms(), |subset| {
        fails(&FaultPlan::from_atoms(subset))
    });

    // The set is 1-minimal; now shrink counts inside the surviving atoms.
    for i in 0..atoms.len() {
        let simpler = match atoms[i] {
            FaultAtom::WorkerPanic(chip, n) if n > 1 => Some(FaultAtom::WorkerPanic(chip, 1)),
            FaultAtom::WorkerHang(chip, n) if n > 1 => Some(FaultAtom::WorkerHang(chip, 1)),
            FaultAtom::CheckpointIoErrors(n) if n > 1 => Some(FaultAtom::CheckpointIoErrors(1)),
            FaultAtom::Daemon(kind, n) if n > 1 => Some(FaultAtom::Daemon(kind, 1)),
            _ => None,
        };
        if let Some(atom) = simpler {
            let mut candidate = atoms.clone();
            candidate[i] = atom;
            if fails(&FaultPlan::from_atoms(&candidate)) {
                atoms = candidate;
            }
        }
    }

    FaultPlan::from_atoms(&atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultTrigger};
    use vs_types::{ChipId, CoreId, DomainId, SimTime};

    fn big_plan() -> FaultPlan {
        FaultPlan::new()
            .due_at(SimTime::from_millis(100), DomainId(0))
            .due_at(SimTime::from_millis(200), DomainId(1))
            .crash_at(SimTime::from_millis(300), CoreId(0))
            .stuck_at(
                SimTime::from_millis(50),
                DomainId(0),
                0.5,
                SimTime::from_millis(100),
            )
            .worker_panic(ChipId(1), 3)
            .checkpoint_io_error(2)
    }

    /// Oracle: fails iff the plan contains a DUE on domain 1.
    fn has_due_on_d1(plan: &FaultPlan) -> bool {
        plan.events().iter().any(|f| {
            matches!(
                (f.trigger, f.kind),
                (
                    FaultTrigger::At(_),
                    FaultKind::Due {
                        domain: DomainId(1)
                    }
                )
            )
        })
    }

    #[test]
    fn shrinks_to_the_single_triggering_atom() {
        let minimal = minimize(&big_plan(), has_due_on_d1);
        assert_eq!(minimal.events().len(), 1);
        assert!(has_due_on_d1(&minimal));
        assert!(minimal.worker_panics().is_empty());
        assert_eq!(minimal.checkpoint_io_errors(), 0);
        assert_eq!(minimal.to_spec_string(), "due@200ms:d1");
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = minimize(&big_plan(), has_due_on_d1);
        let b = minimize(&big_plan(), has_due_on_d1);
        assert_eq!(a, b);
        assert_eq!(a.to_spec_string(), b.to_spec_string());
    }

    #[test]
    fn conjunctive_failures_keep_both_atoms() {
        // Fails only when BOTH dues are present: ddmin must keep the pair.
        let needs_both = |p: &FaultPlan| {
            let dues = p
                .events()
                .iter()
                .filter(|f| matches!(f.kind, FaultKind::Due { .. }))
                .count();
            dues >= 2
        };
        let minimal = minimize(&big_plan(), needs_both);
        assert_eq!(minimal.events().len(), 2);
        assert!(needs_both(&minimal));
    }

    #[test]
    fn counted_atoms_shrink_to_one_attempt() {
        let has_panic = |p: &FaultPlan| !p.worker_panics().is_empty();
        let minimal = minimize(&big_plan(), has_panic);
        assert_eq!(minimal.to_spec_string(), "panic:chip1");
    }

    #[test]
    fn daemon_atoms_shrink_like_other_counted_atoms() {
        use crate::plan::DaemonFaultKind;
        let plan = big_plan()
            .daemon_fault(DaemonFaultKind::TornFrame, 3)
            .daemon_fault(DaemonFaultKind::Enospc, 2);
        let has_torn = |p: &FaultPlan| p.daemon_fault_count(DaemonFaultKind::TornFrame) > 0;
        let minimal = minimize(&plan, has_torn);
        assert_eq!(minimal.to_spec_string(), "daemon:torn:1");
    }

    #[test]
    fn non_failing_plans_are_returned_unchanged() {
        let plan = big_plan();
        assert_eq!(minimize(&plan, |_| false), plan);
    }

    #[test]
    fn single_atom_plans_minimize_to_themselves() {
        let plan = FaultPlan::new().due_at(SimTime::from_millis(5), DomainId(0));
        assert_eq!(minimize(&plan, |p| !p.is_empty()), plan);
    }

    #[test]
    fn generic_ddmin_shrinks_to_the_culprit_pair() {
        // Fails iff both 3 and 7 are present — ddmin must isolate exactly
        // that pair, preserving input order.
        let items: Vec<u32> = (0..10).collect();
        let fails = |s: &[u32]| s.contains(&3) && s.contains(&7);
        assert_eq!(ddmin(&items, fails), vec![3, 7]);
    }

    #[test]
    fn generic_ddmin_returns_non_failing_input_unchanged() {
        let items = vec![1u32, 2, 3];
        assert_eq!(ddmin(&items, |_| false), items);
    }
}
