//! Deterministic fault injection for the voltspec stack.
//!
//! The paper's controller operates *inside* the failure region: correctable
//! errors are the signal, detected-uncorrectable errors (DUEs) and crashes
//! are the hazard. This crate supplies the hazard on demand — a seeded,
//! fully deterministic schedule of faults that the speculation loop
//! (`vs-spec`) and the fleet runner (`vs-fleet`) consume to exercise their
//! recovery paths:
//!
//! * [`FaultPlan`] — a declarative schedule of [`ScheduledFault`]s: DUEs,
//!   forced core crashes, transient voltage droops, and monitor-line
//!   stuck-at faults, each fired at a simulated time or when a domain's
//!   effective voltage falls below a threshold, plus injected *worker*
//!   panics that kill fleet jobs from the outside. Plans can be built
//!   explicitly, parsed from a compact CLI spec ([`FaultSpec`]), or drawn
//!   from a seed ([`FaultPlan::seeded`]).
//! * [`FaultInjector`] — the runtime half: polled once per simulation
//!   tick with the current time and per-domain effective voltages, it
//!   returns the [`FaultAction`]s firing that tick and tracks the active
//!   windows of transient faults (droops, stuck-at) so the consumer also
//!   sees their expirations.
//! * [`RecoveryPolicy`] — tunables of the firmware rollback path: the
//!   simulated latency charged per rollback, the safety margin re-applied
//!   above the last-known-safe voltage, and the per-domain rollback budget
//!   after which a domain is quarantined.
//! * **Chaos tooling** — [`chaos_plan`] draws seeded random compositions
//!   of the whole grammar for soak testing; [`FaultAtom`] decomposes a
//!   plan into independently removable pieces, [`FaultPlan::to_spec_string`]
//!   prints any plan back as a canonical `--inject` string, and
//!   [`minimize`] delta-debugs a failing plan down to a 1-minimal
//!   reproducer.
//!
//! Everything here is pure data + `CounterRng` streams: the same plan
//! replayed against the same chip produces bit-identical faults, which is
//! what lets fleet traces stay byte-identical across worker counts even
//! with injections enabled.
//!
//! # Examples
//!
//! ```
//! use vs_faults::{FaultAction, FaultInjector, FaultPlan};
//! use vs_types::{DomainId, SimTime};
//!
//! let plan = FaultPlan::new().due_at(SimTime::from_millis(5), DomainId(0));
//! let mut inj = FaultInjector::new(&plan);
//! // Nothing before the scheduled instant...
//! assert!(inj.poll(SimTime::from_millis(4), &[800.0]).is_empty());
//! // ...exactly one DUE at it.
//! assert_eq!(
//!     inj.poll(SimTime::from_millis(5), &[800.0]),
//!     vec![FaultAction::Due { domain: DomainId(0) }],
//! );
//! assert!(inj.is_idle());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atom;
mod chaos;
mod injector;
mod plan;
mod recovery;
mod shrink;
mod spec;

pub use atom::FaultAtom;
pub use chaos::{chaos_plan, daemon_chaos_plan, ChaosProfile};
pub use injector::{FaultAction, FaultInjector};
pub use plan::{
    DaemonFaultKind, FaultKind, FaultPlan, FaultTrigger, InjectionProfile, ScheduledFault,
};
pub use recovery::RecoveryPolicy;
pub use shrink::{ddmin, minimize};
pub use spec::FaultSpec;
