//! The per-core power model.

use vs_types::{Millivolts, VddMode, Watts};

/// Calibration constants for the power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Effective switched capacitance per core at full activity, in farads.
    /// Calibrated so a fully active core at 1.1 V / 2.53 GHz dissipates
    /// ~14 W dynamic.
    pub c_eff_farads: f64,
    /// Leakage of one core at the low-voltage anchor (800 mV), in watts.
    pub leak_low_anchor_w: f64,
    /// Exponential leakage slope at the low-voltage point: one e-fold per
    /// this many millivolts (near-threshold DIBL sensitivity).
    pub leak_slope_low_mv: f64,
    /// Leakage of one core at the nominal anchor (1.1 V), in watts.
    pub leak_nominal_anchor_w: f64,
    /// Exponential leakage slope at the nominal point (gentler:
    /// super-threshold operation).
    pub leak_slope_nominal_mv: f64,
    /// Uncore (L3, memory controllers, interconnect) power at the
    /// low-voltage point, in watts. The uncore rails are not speculated.
    pub uncore_low_w: f64,
    /// Uncore power at the nominal point, in watts.
    pub uncore_nominal_w: f64,
    /// Floor on activity: clock distribution and idle logic keep switching
    /// even in a spin-loop.
    pub idle_activity: f64,
}

impl Default for PowerParams {
    fn default() -> PowerParams {
        PowerParams {
            // 14 W = c_eff * (1.1)^2 * 2.53e9  =>  c_eff = 4.573e-9
            c_eff_farads: 4.573e-9,
            leak_low_anchor_w: 0.5,
            leak_slope_low_mv: 60.0,
            leak_nominal_anchor_w: 3.5,
            leak_slope_nominal_mv: 150.0,
            uncore_low_w: 1.6,
            uncore_nominal_w: 28.0,
            idle_activity: 0.12,
        }
    }
}

/// Converts operating conditions into power and current.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerModel {
    params: PowerParams,
}

impl PowerModel {
    /// Creates a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive (except `idle_activity`,
    /// which may be zero).
    pub fn new(params: PowerParams) -> PowerModel {
        assert!(params.c_eff_farads > 0.0, "capacitance must be positive");
        assert!(
            params.leak_low_anchor_w > 0.0,
            "leakage anchors must be positive"
        );
        assert!(
            params.leak_nominal_anchor_w > 0.0,
            "leakage anchors must be positive"
        );
        assert!(
            params.leak_slope_low_mv > 0.0,
            "leakage slopes must be positive"
        );
        assert!(
            params.leak_slope_nominal_mv > 0.0,
            "leakage slopes must be positive"
        );
        assert!(
            params.idle_activity >= 0.0,
            "idle activity cannot be negative"
        );
        PowerModel { params }
    }

    /// The parameters.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Dynamic power of one core: `c_eff · V² · f · activity`.
    ///
    /// `activity` is clamped below by the idle floor; power-virus kernels
    /// may exceed 1.0.
    pub fn core_dynamic(&self, vdd: Millivolts, mode: VddMode, activity: f64) -> Watts {
        let v = vdd.as_volts();
        let a = activity.max(self.params.idle_activity);
        Watts(self.params.c_eff_farads * v * v * mode.frequency().0 * a)
    }

    /// Leakage power of one core at `vdd`, anchored per operating point.
    pub fn core_leakage(&self, vdd: Millivolts, mode: VddMode) -> Watts {
        let (anchor_w, anchor_mv, slope_mv) = match mode {
            VddMode::LowVoltage => (
                self.params.leak_low_anchor_w,
                800.0,
                self.params.leak_slope_low_mv,
            ),
            VddMode::Nominal => (
                self.params.leak_nominal_anchor_w,
                1100.0,
                self.params.leak_slope_nominal_mv,
            ),
        };
        let v_mv = f64::from(vdd.0);
        // Linear-times-exponential: I_leak roughly constant-field scaled by
        // V, with the exponential carrying the sub/near-threshold slope.
        Watts(anchor_w * (v_mv / anchor_mv) * ((v_mv - anchor_mv) / slope_mv).exp())
    }

    /// Total power of one core.
    pub fn core_power(&self, vdd: Millivolts, mode: VddMode, activity: f64) -> Watts {
        self.core_dynamic(vdd, mode, activity) + self.core_leakage(vdd, mode)
    }

    /// Rail current drawn by one core, in amperes (`P / V`).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is zero or negative.
    pub fn core_current_amps(&self, vdd: Millivolts, mode: VddMode, activity: f64) -> f64 {
        assert!(vdd.0 > 0, "current is undefined at non-positive voltage");
        self.core_power(vdd, mode, activity).0 / vdd.as_volts()
    }

    /// Uncore power at an operating point (constant: the uncore rails are
    /// not speculated).
    pub fn uncore_power(&self, mode: VddMode) -> Watts {
        match mode {
            VddMode::LowVoltage => Watts(self.params.uncore_low_w),
            VddMode::Nominal => Watts(self.params.uncore_nominal_w),
        }
    }

    /// Socket power for uniform conditions across `n_cores` (convenience
    /// for reports).
    pub fn socket_power(
        &self,
        n_cores: usize,
        vdd: Millivolts,
        mode: VddMode,
        activity: f64,
    ) -> Watts {
        self.core_power(vdd, mode, activity) * n_cores as f64 + self.uncore_power(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdp_anchor_at_nominal() {
        let m = PowerModel::default();
        let socket = m.socket_power(8, Millivolts(1100), VddMode::Nominal, 1.0);
        assert!(
            (150.0..185.0).contains(&socket.0),
            "8-core socket at nominal full load should be near the 170 W TDP, got {socket}"
        );
    }

    #[test]
    fn low_voltage_point_anchors() {
        let m = PowerModel::default();
        let dyn_w = m.core_dynamic(Millivolts(800), VddMode::LowVoltage, 1.0);
        assert!((0.9..1.1).contains(&dyn_w.0), "dynamic ~1 W, got {dyn_w}");
        let leak = m.core_leakage(Millivolts(800), VddMode::LowVoltage);
        assert!((leak.0 - 0.5).abs() < 1e-9, "leakage anchor, got {leak}");
    }

    #[test]
    fn eight_percent_vdd_cut_saves_about_a_third() {
        // The paper's headline: 8% average Vdd reduction => ~33% power cut.
        let m = PowerModel::default();
        let base = m.core_power(Millivolts(800), VddMode::LowVoltage, 1.0);
        let spec = m.core_power(Millivolts(736), VddMode::LowVoltage, 1.0);
        let savings = 1.0 - spec / base;
        assert!(
            (0.30..0.36).contains(&savings),
            "expected ~33% savings, got {:.1}%",
            savings * 100.0
        );
    }

    #[test]
    fn dynamic_power_quadratic_in_v() {
        let m = PowerModel::default();
        let p1 = m.core_dynamic(Millivolts(600), VddMode::LowVoltage, 1.0);
        let p2 = m.core_dynamic(Millivolts(1200), VddMode::LowVoltage, 1.0);
        assert!((p2.0 / p1.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_monotone_and_steeper_at_low_point() {
        let m = PowerModel::default();
        let mut prev = 0.0;
        for mv in (600..=900).step_by(20) {
            let leak = m.core_leakage(Millivolts(mv), VddMode::LowVoltage).0;
            assert!(leak > prev);
            prev = leak;
        }
        // Relative sensitivity per 50 mV is larger at the low point.
        let low_ratio = m.core_leakage(Millivolts(800), VddMode::LowVoltage)
            / m.core_leakage(Millivolts(750), VddMode::LowVoltage);
        let nom_ratio = m.core_leakage(Millivolts(1100), VddMode::Nominal)
            / m.core_leakage(Millivolts(1050), VddMode::Nominal);
        assert!(low_ratio > nom_ratio);
    }

    #[test]
    fn idle_floor_applies() {
        let m = PowerModel::default();
        let idle = m.core_dynamic(Millivolts(800), VddMode::LowVoltage, 0.0);
        let explicit = m.core_dynamic(Millivolts(800), VddMode::LowVoltage, 0.12);
        assert_eq!(idle, explicit);
    }

    #[test]
    fn current_is_power_over_voltage() {
        let m = PowerModel::default();
        let p = m.core_power(Millivolts(800), VddMode::LowVoltage, 1.0);
        let i = m.core_current_amps(Millivolts(800), VddMode::LowVoltage, 1.0);
        assert!((i - p.0 / 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn current_at_zero_voltage_panics() {
        PowerModel::default().core_current_amps(Millivolts(0), VddMode::LowVoltage, 1.0);
    }

    #[test]
    fn virus_activity_above_one_allowed() {
        let m = PowerModel::default();
        let virus = m.core_dynamic(Millivolts(800), VddMode::LowVoltage, 1.4);
        let normal = m.core_dynamic(Millivolts(800), VddMode::LowVoltage, 1.0);
        assert!(virus > normal);
    }
}
