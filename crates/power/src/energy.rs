//! Energy integration and power-trace recording.

use vs_types::{Joules, SimTime, Watts};

/// One power sample, as collected by the platform's 1 ms logging loop
/// (mirroring the reference platform's register-sampling data collection,
/// §IV-A4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sample timestamp.
    pub at: SimTime,
    /// Instantaneous power.
    pub power: Watts,
}

/// Integrates power over time into energy.
///
/// # Examples
///
/// ```
/// use vs_power::EnergyMeter;
/// use vs_types::{SimTime, Watts, Joules};
///
/// let mut meter = EnergyMeter::new();
/// meter.add(Watts(10.0), SimTime::from_millis(500));
/// meter.add(Watts(20.0), SimTime::from_millis(500));
/// assert_eq!(meter.total(), Joules(15.0));
/// assert!((meter.average_power().unwrap().0 - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    total: Joules,
    elapsed: SimTime,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Accumulates `power` held for `dt`.
    pub fn add(&mut self, power: Watts, dt: SimTime) {
        self.total += power.over_secs(dt.as_secs_f64());
        self.elapsed += dt;
    }

    /// Total energy so far.
    pub fn total(&self) -> Joules {
        self.total
    }

    /// Total integration time so far.
    pub fn elapsed(&self) -> SimTime {
        self.elapsed
    }

    /// Mean power over the integrated interval, or `None` before any
    /// samples.
    pub fn average_power(&self) -> Option<Watts> {
        if self.elapsed == SimTime::ZERO {
            None
        } else {
            Some(Watts(self.total.0 / self.elapsed.as_secs_f64()))
        }
    }
}

/// A bounded-rate recording of power over a run, for the time-trace
/// figures.
#[derive(Debug, Clone, Default)]
pub struct PowerTrace {
    samples: Vec<PowerSample>,
    /// Minimum spacing between retained samples.
    min_spacing: SimTime,
}

impl PowerTrace {
    /// Creates a trace retaining at most one sample per `min_spacing`.
    pub fn with_spacing(min_spacing: SimTime) -> PowerTrace {
        PowerTrace {
            samples: Vec::new(),
            min_spacing,
        }
    }

    /// Offers a sample; it is retained if enough time has passed since the
    /// previous retained sample.
    pub fn offer(&mut self, at: SimTime, power: Watts) {
        if let Some(last) = self.samples.last() {
            if at.saturating_sub(last.at) < self.min_spacing {
                return;
            }
        }
        self.samples.push(PowerSample { at, power });
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Mean of the retained samples, or `None` if empty.
    pub fn mean_power(&self) -> Option<Watts> {
        if self.samples.is_empty() {
            return None;
        }
        Some(Watts(
            self.samples.iter().map(|s| s.power.0).sum::<f64>() / self.samples.len() as f64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_integrates() {
        let mut m = EnergyMeter::new();
        assert!(m.average_power().is_none());
        m.add(Watts(5.0), SimTime::from_secs(2));
        m.add(Watts(1.0), SimTime::from_secs(3));
        assert_eq!(m.total(), Joules(13.0));
        assert_eq!(m.elapsed(), SimTime::from_secs(5));
        assert!((m.average_power().unwrap().0 - 2.6).abs() < 1e-12);
    }

    #[test]
    fn meter_handles_zero_dt() {
        let mut m = EnergyMeter::new();
        m.add(Watts(100.0), SimTime::ZERO);
        assert_eq!(m.total(), Joules(0.0));
        assert!(m.average_power().is_none());
    }

    #[test]
    fn trace_respects_spacing() {
        let mut t = PowerTrace::with_spacing(SimTime::from_millis(10));
        for ms in 0..100 {
            t.offer(SimTime::from_millis(ms), Watts(ms as f64));
        }
        assert_eq!(t.samples().len(), 10);
        assert!(t
            .samples()
            .windows(2)
            .all(|w| w[1].at.saturating_sub(w[0].at) >= SimTime::from_millis(10)));
    }

    #[test]
    fn trace_mean() {
        let mut t = PowerTrace::with_spacing(SimTime::ZERO);
        assert!(t.mean_power().is_none());
        t.offer(SimTime::from_millis(1), Watts(2.0));
        t.offer(SimTime::from_millis(2), Watts(4.0));
        assert_eq!(t.mean_power(), Some(Watts(3.0)));
    }
}
