//! Power and energy models.
//!
//! Voltage speculation's payoff is power: lowering Vdd at constant
//! frequency cuts dynamic power quadratically and leakage (which is
//! steeply voltage-sensitive near threshold) even faster. This crate
//! converts operating conditions into per-core power, derives the rail
//! currents the PDN model needs, and integrates energy over simulated runs.
//!
//! # Calibration
//!
//! The model is anchored per operating point ([`VddMode`](vs_types::VddMode)):
//!
//! * at the nominal point (2.53 GHz, 1.1 V) a fully active core dissipates
//!   ~14 W dynamic + ~3.5 W leakage; with the uncore that lands the 8-core
//!   socket near its 170 W TDP (Table I);
//! * at the low-voltage point (340 MHz, 800 mV) the same effective
//!   capacitance gives ~1 W dynamic, and leakage is anchored at ~0.5 W with
//!   an exponential voltage sensitivity (e-fold every 60 mV, a
//!   near-threshold DIBL slope). With that split, the paper's measured
//!   relationship — an ~8 % average Vdd reduction producing ~33 % average
//!   power savings — reproduces quantitatively:
//!   `0.667 · (0.92)² + 0.333 · 0.92·e^(−64/60) ≈ 0.67`.
//!
//! # Examples
//!
//! ```
//! use vs_power::PowerModel;
//! use vs_types::{Millivolts, VddMode};
//!
//! let model = PowerModel::default();
//! let at_nominal = model.core_power(Millivolts(800), VddMode::LowVoltage, 1.0);
//! let speculated = model.core_power(Millivolts(736), VddMode::LowVoltage, 1.0);
//! let savings = 1.0 - speculated / at_nominal;
//! assert!(savings > 0.25 && savings < 0.40);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod model;
mod thermal;

pub use energy::{EnergyMeter, PowerSample, PowerTrace};
pub use model::{PowerModel, PowerParams};
pub use thermal::{FanSpeed, ThermalParams, ThermalState};
