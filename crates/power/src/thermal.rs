//! Enclosure thermal model.
//!
//! The paper's temperature experiment (§III-D) works by slowing the
//! server-enclosure fans and watching the correctable-error distribution:
//! a ~20 °C rise produced no measurable change. To reproduce that
//! *mechanism* (rather than just the temperature number), this module
//! models the blade's thermal path: silicon temperature follows dissipated
//! power through a first-order RC response whose thermal resistance
//! depends on fan speed.

use vs_types::{Celsius, SimTime, Watts};

/// Enclosure fan setting, as a fraction of full speed.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct FanSpeed(pub f64);

impl FanSpeed {
    /// Full speed.
    pub const FULL: FanSpeed = FanSpeed(1.0);

    /// Creates a fan speed, clamped into `[0.2, 1.0]` (server fans never
    /// fully stop).
    pub fn new(fraction: f64) -> FanSpeed {
        FanSpeed(fraction.clamp(0.2, 1.0))
    }
}

impl Default for FanSpeed {
    fn default() -> FanSpeed {
        FanSpeed::FULL
    }
}

/// Parameters of the thermal path from junction to inlet air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Inlet-air (ambient) temperature.
    pub ambient: Celsius,
    /// Junction-to-air thermal resistance at full fan speed, in °C/W.
    pub resistance_full_fan_c_per_w: f64,
    /// Thermal time constant of the package + heatsink, in seconds.
    pub time_constant_s: f64,
}

impl Default for ThermalParams {
    fn default() -> ThermalParams {
        ThermalParams {
            ambient: Celsius(25.0),
            // Calibrated for the low-voltage operating point: the ~14 W
            // the speculated blade dissipates there sits ~24 C over
            // ambient at full fan (=> ~49 C silicon, the model's reference
            // temperature), and a fan slowdown to 55% adds the ~20 C the
            // paper's experiment reports.
            resistance_full_fan_c_per_w: 1.7,
            time_constant_s: 12.0,
        }
    }
}

/// First-order thermal state of one socket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalState {
    params: ThermalParams,
    fan: FanSpeed,
    temperature: Celsius,
}

impl ThermalState {
    /// Creates a state settled at the steady-state temperature for
    /// `initial_power`.
    pub fn new(params: ThermalParams, initial_power: Watts) -> ThermalState {
        let mut state = ThermalState {
            params,
            fan: FanSpeed::FULL,
            temperature: Celsius(0.0),
        };
        state.temperature = state.steady_state(initial_power);
        state
    }

    /// The current silicon temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// The current fan speed.
    pub fn fan(&self) -> FanSpeed {
        self.fan
    }

    /// Sets the fan speed (the §III-D experiment's knob).
    pub fn set_fan(&mut self, fan: FanSpeed) {
        self.fan = fan;
    }

    /// Effective junction-to-air resistance at the current fan speed.
    /// Slower air means higher resistance, roughly inversely.
    pub fn resistance_c_per_w(&self) -> f64 {
        self.params.resistance_full_fan_c_per_w / self.fan.0.max(0.2)
    }

    /// The steady-state temperature at a given dissipation.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        Celsius(self.params.ambient.0 + self.resistance_c_per_w() * power.0.max(0.0))
    }

    /// Advances the state by `dt` at the given dissipation (first-order
    /// relaxation toward the steady state).
    pub fn advance(&mut self, power: Watts, dt: SimTime) {
        let target = self.steady_state(power);
        let alpha = (dt.as_secs_f64() / self.params.time_constant_s).min(1.0);
        self.temperature = Celsius(self.temperature.0 + alpha * (target.0 - self.temperature.0));
    }

    /// Jumps straight to the steady state for `power` (used when a long
    /// interval passes between samples).
    pub fn settle(&mut self, power: Watts) {
        self.temperature = self.steady_state(power);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ThermalState {
        ThermalState::new(ThermalParams::default(), Watts(14.0))
    }

    #[test]
    fn reference_point_near_50c() {
        let s = state();
        assert!(
            (44.0..55.0).contains(&s.temperature().0),
            "the ~14 W low-voltage blade at full fan should idle near 50 C, got {}",
            s.temperature()
        );
    }

    #[test]
    fn slowing_fans_raises_steady_state_about_20c() {
        // The paper's knob: slowed fans produced up to 20 C of variation.
        let mut s = state();
        let full = s.steady_state(Watts(14.0));
        s.set_fan(FanSpeed::new(0.55));
        let slow = s.steady_state(Watts(14.0));
        let delta = slow.0 - full.0;
        assert!(
            (15.0..28.0).contains(&delta),
            "fan slowdown should add ~20 C, got {delta:.1}"
        );
    }

    #[test]
    fn relaxation_approaches_target_monotonically() {
        let mut s = state();
        let hot = Watts(30.0);
        let target = s.steady_state(hot);
        let mut prev = s.temperature().0;
        for _ in 0..100 {
            s.advance(hot, SimTime::from_millis(500));
            assert!(s.temperature().0 >= prev - 1e-9);
            prev = s.temperature().0;
        }
        assert!((s.temperature().0 - target.0).abs() < 1.0);
    }

    #[test]
    fn settle_jumps_to_steady_state() {
        let mut s = state();
        s.settle(Watts(30.0));
        assert_eq!(s.temperature(), s.steady_state(Watts(30.0)));
    }

    #[test]
    fn fan_speed_clamps() {
        assert_eq!(FanSpeed::new(0.0).0, 0.2);
        assert_eq!(FanSpeed::new(2.0).0, 1.0);
        assert_eq!(FanSpeed::default(), FanSpeed::FULL);
    }

    #[test]
    fn cooling_works_too() {
        let mut s = state();
        s.settle(Watts(30.0));
        let hot = s.temperature().0;
        for _ in 0..100 {
            s.advance(Watts(5.0), SimTime::from_millis(500));
        }
        assert!(s.temperature().0 < hot - 10.0);
    }
}
