//! Hsiao SEC-DED code construction, encoding, and decoding.
//!
//! A Hsiao code is a single-error-correcting, double-error-detecting linear
//! code whose parity-check matrix uses only odd-weight columns. Odd-weight
//! columns give the key decoding property: a single-bit error produces an
//! odd-weight syndrome (equal to that bit's column), while any double-bit
//! error produces a nonzero *even*-weight syndrome, which can never be
//! mistaken for a correctable single-bit error.

use std::fmt;
use std::sync::OnceLock;
use vs_types::FlipMask;

/// Result of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// Syndrome zero: the stored word was read back intact.
    Clean {
        /// The decoded data bits.
        data: u64,
    },
    /// Exactly one bit was flipped; it has been corrected.
    Corrected {
        /// The corrected data bits.
        data: u64,
        /// The codeword bit position that was flipped (data bits come first,
        /// then check bits).
        bit: u32,
        /// The raw syndrome that identified the failing bit.
        syndrome: u32,
    },
    /// Two or more bits were flipped; the data cannot be trusted.
    Uncorrectable {
        /// The raw (nonzero) syndrome.
        syndrome: u32,
    },
}

impl DecodeOutcome {
    /// The decoded data, if the word was clean or corrected.
    pub fn data(&self) -> Option<u64> {
        match *self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => Some(data),
            DecodeOutcome::Uncorrectable { .. } => None,
        }
    }

    /// True when a correctable (single-bit) error was observed.
    pub fn is_correctable_error(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }

    /// True when the error was detected but not correctable.
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, DecodeOutcome::Uncorrectable { .. })
    }
}

/// A Hsiao SEC-DED code over up to 64 data bits.
///
/// Codewords are laid out with data bits in positions `0..data_bits` and
/// check bits in positions `data_bits..data_bits + check_bits`, packed into a
/// `u128`.
///
/// Use [`SecDed::hsiao_72_64`] or [`SecDed::hsiao_39_32`] for the two
/// geometries the simulator needs; [`SecDed::new`] builds any custom
/// geometry for which enough odd-weight columns exist.
#[derive(Clone)]
pub struct SecDed {
    data_bits: u32,
    check_bits: u32,
    /// Syndrome produced by an error in each codeword bit position
    /// (`columns[i]` is the i-th column of the parity-check matrix H).
    columns: Vec<u32>,
    /// Dense inverse map from syndrome to bit position (`u8::MAX` marks an
    /// unused syndrome). Sized `1 << check_bits`.
    syndrome_to_bit: Vec<u8>,
}

impl fmt::Debug for SecDed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecDed")
            .field("data_bits", &self.data_bits)
            .field("check_bits", &self.check_bits)
            .field("codeword_bits", &self.codeword_bits())
            .finish()
    }
}

impl SecDed {
    /// Constructs a Hsiao code with the given geometry.
    ///
    /// Data-bit columns are chosen as the lexicographically smallest
    /// odd-weight (≥3) `check_bits`-bit vectors, taken weight-3 first, then
    /// weight-5, and so on — the standard minimum-weight Hsiao selection,
    /// which minimizes encoder/decoder XOR fan-in in hardware.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is 0 or greater than 64, if `check_bits`
    /// exceeds 16, or if there are not enough odd-weight columns for the
    /// requested geometry.
    pub fn new(data_bits: u32, check_bits: u32) -> SecDed {
        assert!(
            (1..=64).contains(&data_bits),
            "data_bits must be in 1..=64, got {data_bits}"
        );
        assert!(
            (2..=16).contains(&check_bits),
            "check_bits must be in 2..=16, got {check_bits}"
        );

        let mut columns = Vec::with_capacity((data_bits + check_bits) as usize);
        // Data-bit columns: odd weight >= 3, lowest weight first, then
        // numerically ascending within a weight class.
        'outer: for weight in (3..=check_bits).step_by(2) {
            for candidate in 0u32..(1 << check_bits) {
                if candidate.count_ones() == weight {
                    columns.push(candidate);
                    if columns.len() == data_bits as usize {
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            columns.len() == data_bits as usize,
            "not enough odd-weight columns: {} check bits support at most {} data bits",
            check_bits,
            columns.len()
        );
        // Check-bit columns: weight-1 identity columns.
        for j in 0..check_bits {
            columns.push(1 << j);
        }

        let mut syndrome_to_bit = vec![u8::MAX; 1 << check_bits];
        for (bit, &col) in columns.iter().enumerate() {
            debug_assert_eq!(syndrome_to_bit[col as usize], u8::MAX, "duplicate column");
            syndrome_to_bit[col as usize] = bit as u8;
        }

        SecDed {
            data_bits,
            check_bits,
            columns,
            syndrome_to_bit,
        }
    }

    /// The shared (72,64) code instance: 64 data bits, 8 check bits.
    pub fn hsiao_72_64() -> &'static SecDed {
        static CODE: OnceLock<SecDed> = OnceLock::new();
        CODE.get_or_init(|| SecDed::new(64, 8))
    }

    /// The shared (39,32) code instance: 32 data bits, 7 check bits.
    pub fn hsiao_39_32() -> &'static SecDed {
        static CODE: OnceLock<SecDed> = OnceLock::new();
        CODE.get_or_init(|| SecDed::new(32, 7))
    }

    /// Number of data bits per codeword.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Number of check bits per codeword.
    pub fn check_bits(&self) -> u32 {
        self.check_bits
    }

    /// Total codeword width in bits.
    pub fn codeword_bits(&self) -> u32 {
        self.data_bits + self.check_bits
    }

    /// Extracts the data bits of a codeword without decoding.
    ///
    /// Only meaningful for words known to be valid codewords (e.g. freshly
    /// encoded storage read with no injected flips); it skips the syndrome
    /// computation that [`SecDed::decode`] would spend on them.
    #[inline]
    pub fn data_of(&self, word: u128) -> u64 {
        let data_mask: u64 = if self.data_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.data_bits) - 1
        };
        (word as u64) & data_mask
    }

    /// Encodes `data` into a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data` has bits set above `data_bits`.
    pub fn encode(&self, data: u64) -> u128 {
        if self.data_bits < 64 {
            assert!(
                data < (1u64 << self.data_bits),
                "data 0x{data:X} exceeds {} data bits",
                self.data_bits
            );
        }
        let mut check: u32 = 0;
        let mut remaining = data;
        while remaining != 0 {
            let i = remaining.trailing_zeros();
            check ^= self.columns[i as usize];
            remaining &= remaining - 1;
        }
        u128::from(data) | (u128::from(check) << self.data_bits)
    }

    /// Computes the syndrome of a received word (zero iff the word is a
    /// valid codeword).
    pub fn syndrome(&self, word: u128) -> u32 {
        let mut syndrome = 0;
        let mut remaining = word;
        while remaining != 0 {
            let i = remaining.trailing_zeros();
            syndrome ^= self.columns[i as usize];
            remaining &= remaining - 1;
        }
        syndrome
    }

    /// Decodes a received word, correcting a single-bit error if present.
    pub fn decode(&self, word: u128) -> DecodeOutcome {
        let syndrome = self.syndrome(word);
        let data_mask: u64 = if self.data_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.data_bits) - 1
        };
        if syndrome == 0 {
            return DecodeOutcome::Clean {
                data: (word as u64) & data_mask,
            };
        }
        let bit = self.syndrome_to_bit[syndrome as usize];
        if bit == u8::MAX {
            // Nonzero syndrome matching no column: a multi-bit error. For a
            // Hsiao code every double error lands here (even weight).
            return DecodeOutcome::Uncorrectable { syndrome };
        }
        let corrected = word ^ (1u128 << bit);
        DecodeOutcome::Corrected {
            data: (corrected as u64) & data_mask,
            bit: u32::from(bit),
            syndrome,
        }
    }

    /// Flips the given codeword bits (used by fault injection).
    ///
    /// # Panics
    ///
    /// Panics if any bit index is out of range for the codeword.
    pub fn inject(&self, word: u128, bits: &[u32]) -> u128 {
        let mut out = word;
        for &b in bits {
            assert!(
                b < self.codeword_bits(),
                "bit {b} out of range for a {}-bit codeword",
                self.codeword_bits()
            );
            out ^= 1u128 << b;
        }
        out
    }

    /// Flips the codeword bits named by a [`FlipMask`]: the alloc-free
    /// fault-injection primitive (one XOR, no per-bit loop).
    ///
    /// # Panics
    ///
    /// Panics if the mask names a bit at or above the codeword width.
    #[inline]
    pub fn inject_mask(&self, word: u128, mask: FlipMask) -> u128 {
        assert!(
            mask.0 >> self.codeword_bits() == 0,
            "flip mask {mask:?} exceeds the {}-bit codeword",
            self.codeword_bits()
        );
        word ^ mask.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants() {
        let c = SecDed::hsiao_72_64();
        assert_eq!(c.data_bits(), 64);
        assert_eq!(c.check_bits(), 8);
        assert_eq!(c.codeword_bits(), 72);
        let c = SecDed::hsiao_39_32();
        assert_eq!(c.codeword_bits(), 39);
    }

    #[test]
    fn columns_are_unique_and_odd_weight() {
        for code in [SecDed::new(64, 8), SecDed::new(32, 7), SecDed::new(8, 5)] {
            let mut seen = std::collections::HashSet::new();
            for &col in &code.columns {
                assert!(col.count_ones() % 2 == 1, "column {col:b} has even weight");
                assert!(seen.insert(col), "duplicate column {col:b}");
            }
        }
    }

    #[test]
    fn clean_roundtrip() {
        let code = SecDed::hsiao_72_64();
        for data in [
            0u64,
            1,
            u64::MAX,
            0xDEAD_BEEF_0BAD_F00D,
            0x5555_5555_5555_5555,
        ] {
            let word = code.encode(data);
            assert_eq!(code.decode(word), DecodeOutcome::Clean { data });
            assert_eq!(code.syndrome(word), 0);
        }
    }

    #[test]
    fn all_single_bit_errors_corrected_72_64() {
        let code = SecDed::hsiao_72_64();
        let data = 0xA5A5_5A5A_1234_8765u64;
        let word = code.encode(data);
        for bit in 0..code.codeword_bits() {
            let outcome = code.decode(word ^ (1u128 << bit));
            match outcome {
                DecodeOutcome::Corrected {
                    data: d,
                    bit: b,
                    syndrome,
                } => {
                    assert_eq!(d, data, "bit {bit}");
                    assert_eq!(b, bit);
                    assert_ne!(syndrome, 0);
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_single_bit_errors_corrected_39_32() {
        let code = SecDed::hsiao_39_32();
        let data = 0x8BAD_F00Du64 & 0xFFFF_FFFF;
        let word = code.encode(data);
        for bit in 0..code.codeword_bits() {
            let outcome = code.decode(word ^ (1u128 << bit));
            assert!(
                matches!(outcome, DecodeOutcome::Corrected { data: d, .. } if d == data),
                "bit {bit}: got {outcome:?}"
            );
        }
    }

    #[test]
    fn all_double_bit_errors_detected() {
        // Exhaustive over all C(39,2) pairs for the small code and all
        // C(72,2) pairs for the big one — both are cheap.
        for code in [SecDed::hsiao_39_32(), SecDed::hsiao_72_64()] {
            let data = 0x0123_4567u64 & ((1u64 << code.data_bits().min(63)) - 1);
            let word = code.encode(data);
            let n = code.codeword_bits();
            for a in 0..n {
                for b in (a + 1)..n {
                    let corrupted = word ^ (1u128 << a) ^ (1u128 << b);
                    let outcome = code.decode(corrupted);
                    assert!(
                        outcome.is_uncorrectable(),
                        "bits ({a},{b}) of ({},{}) code: got {outcome:?}",
                        code.codeword_bits(),
                        code.data_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn inject_helper() {
        let code = SecDed::hsiao_72_64();
        let word = code.encode(42);
        assert_eq!(code.inject(word, &[]), word);
        assert_eq!(code.inject(word, &[3, 3]), word); // double flip cancels
        let one = code.inject(word, &[5]);
        assert!(code.decode(one).is_correctable_error());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_out_of_range_panics() {
        let code = SecDed::hsiao_72_64();
        code.inject(0, &[72]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn encode_oversized_data_panics() {
        SecDed::hsiao_39_32().encode(1u64 << 32);
    }

    #[test]
    #[should_panic(expected = "not enough odd-weight columns")]
    fn impossible_geometry_panics() {
        // 4 check bits offer only C(4,3)=4 weight-3 columns (plus the single
        // weight-1 identity ones), far fewer than 60 data bits need.
        let _ = SecDed::new(60, 4);
    }

    #[test]
    fn outcome_accessors() {
        let clean = DecodeOutcome::Clean { data: 7 };
        assert_eq!(clean.data(), Some(7));
        assert!(!clean.is_correctable_error());
        let bad = DecodeOutcome::Uncorrectable { syndrome: 0b11 };
        assert_eq!(bad.data(), None);
        assert!(bad.is_uncorrectable());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", SecDed::hsiao_72_64());
        assert!(s.contains("SecDed"));
        assert!(s.contains("72"));
    }
}
