//! SEC-DED error-correcting codes and ECC event reporting.
//!
//! The voltage-speculation system in the reproduced paper is driven entirely
//! by *correctable* error reports from the ECC logic that protects on-chip
//! SRAM. This crate implements that logic for real: cache lines in the
//! simulator are stored as Hsiao-encoded codewords, bit flips are physically
//! injected into the stored words by the SRAM failure model, and the decoder
//! here either corrects them (raising a [`CorrectableError`] event with the
//! failing bit and syndrome) or flags them uncorrectable.
//!
//! Two standard geometries are provided:
//!
//! * [`SecDed::hsiao_72_64`] — 64 data bits + 8 check bits, the classic DRAM
//!   and cache-line word geometry; used for all cache data words.
//! * [`SecDed::hsiao_39_32`] — 32 data bits + 7 check bits; used for the
//!   register-file arrays.
//!
//! # Examples
//!
//! ```
//! use vs_ecc::{SecDed, DecodeOutcome};
//!
//! let code = SecDed::hsiao_72_64();
//! let word = code.encode(0xDEAD_BEEF_CAFE_F00D);
//!
//! // A clean read decodes with no error.
//! assert_eq!(code.decode(word), DecodeOutcome::Clean { data: 0xDEAD_BEEF_CAFE_F00D });
//!
//! // A single flipped bit is corrected and reported.
//! let flipped = word ^ (1u128 << 17);
//! match code.decode(flipped) {
//!     DecodeOutcome::Corrected { data, bit, .. } => {
//!         assert_eq!(data, 0xDEAD_BEEF_CAFE_F00D);
//!         assert_eq!(bit, 17);
//!     }
//!     other => panic!("expected correction, got {other:?}"),
//! }
//!
//! // Two flipped bits are detected but not corrected.
//! let double = word ^ 0b11;
//! assert!(matches!(code.decode(double), DecodeOutcome::Uncorrectable { .. }));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod code;
mod events;

pub use code::{DecodeOutcome, SecDed};
pub use events::{CorrectableError, EccEvent, EccEventLog, UncorrectableError};
