//! ECC event records and the chip-wide event log.
//!
//! On the reference platform, correctable-error reports carry the set and
//! way of the failing cache line (§IV-A4 of the paper); the firmware keeps
//! logs used both for characterization (which lines are weak?) and to drive
//! the speculation algorithm. [`EccEventLog`] plays that role here.

use std::collections::HashMap;
use std::fmt;
use vs_types::{CacheKind, CoreId, LineAddress, SimTime};

/// A single-bit error that the ECC hardware corrected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CorrectableError {
    /// When the event was raised.
    pub at: SimTime,
    /// The line that produced the error.
    pub line: LineAddress,
    /// Which word of the line failed.
    pub word: u32,
    /// Which codeword bit within the word flipped.
    pub bit: u32,
    /// The decoder syndrome.
    pub syndrome: u32,
}

impl fmt::Display for CorrectableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] CE {} word {} bit {} (syndrome 0x{:02X})",
            self.at, self.line, self.word, self.bit, self.syndrome
        )
    }
}

/// A multi-bit error the ECC hardware detected but could not correct.
///
/// In the real system this is a machine-check condition; in the simulator it
/// marks a run as unsafe (the speculation system must never reach it in
/// steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UncorrectableError {
    /// When the event was raised.
    pub at: SimTime,
    /// The line that produced the error.
    pub line: LineAddress,
    /// Which word of the line failed.
    pub word: u32,
    /// The decoder syndrome.
    pub syndrome: u32,
}

impl fmt::Display for UncorrectableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] UE {} word {} (syndrome 0x{:02X})",
            self.at, self.line, self.word, self.syndrome
        )
    }
}

/// Either kind of ECC event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccEvent {
    /// A corrected single-bit error.
    Correctable(CorrectableError),
    /// A detected-but-uncorrectable error.
    Uncorrectable(UncorrectableError),
}

impl EccEvent {
    /// The line that raised the event.
    pub fn line(&self) -> LineAddress {
        match self {
            EccEvent::Correctable(e) => e.line,
            EccEvent::Uncorrectable(e) => e.line,
        }
    }

    /// When the event was raised.
    pub fn at(&self) -> SimTime {
        match self {
            EccEvent::Correctable(e) => e.at,
            EccEvent::Uncorrectable(e) => e.at,
        }
    }
}

/// A chip-wide log of ECC events, with the per-line and per-structure
/// summaries the characterization experiments need.
///
/// # Examples
///
/// ```
/// use vs_ecc::{EccEventLog, CorrectableError};
/// use vs_types::{CoreId, CacheKind, LineAddress, SetWay, SimTime};
///
/// let mut log = EccEventLog::new();
/// log.record_correctable(CorrectableError {
///     at: SimTime::from_millis(10),
///     line: LineAddress::new(CoreId(0), CacheKind::L2Data, SetWay::new(17, 3)),
///     word: 2,
///     bit: 40,
///     syndrome: 0x0B,
/// });
/// assert_eq!(log.correctable_count(), 1);
/// assert_eq!(log.count_for_core(CoreId(0), CacheKind::L2Data), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EccEventLog {
    correctable: Vec<CorrectableError>,
    uncorrectable: Vec<UncorrectableError>,
    per_line: HashMap<LineAddress, u64>,
}

impl EccEventLog {
    /// Creates an empty log.
    pub fn new() -> EccEventLog {
        EccEventLog::default()
    }

    /// Appends a correctable-error event.
    pub fn record_correctable(&mut self, event: CorrectableError) {
        *self.per_line.entry(event.line).or_insert(0) += 1;
        self.correctable.push(event);
    }

    /// Appends an uncorrectable-error event.
    pub fn record_uncorrectable(&mut self, event: UncorrectableError) {
        self.uncorrectable.push(event);
    }

    /// Total number of correctable events recorded.
    pub fn correctable_count(&self) -> u64 {
        self.correctable.len() as u64
    }

    /// Total number of uncorrectable events recorded.
    pub fn uncorrectable_count(&self) -> u64 {
        self.uncorrectable.len() as u64
    }

    /// All correctable events, in arrival order.
    pub fn correctable(&self) -> &[CorrectableError] {
        &self.correctable
    }

    /// All uncorrectable events, in arrival order.
    pub fn uncorrectable(&self) -> &[UncorrectableError] {
        &self.uncorrectable
    }

    /// Number of correctable events from one core's structure.
    pub fn count_for_core(&self, core: CoreId, cache: CacheKind) -> u64 {
        self.per_line
            .iter()
            .filter(|(line, _)| line.core == core && line.cache == cache)
            .map(|(_, n)| *n)
            .sum()
    }

    /// The line with the most correctable events, if any were recorded.
    pub fn hottest_line(&self) -> Option<(LineAddress, u64)> {
        self.per_line
            .iter()
            .max_by_key(|(line, n)| (**n, std::cmp::Reverse(**line)))
            .map(|(line, n)| (*line, *n))
    }

    /// Per-line correctable counts, sorted descending by count (ties broken
    /// by address for determinism).
    pub fn line_histogram(&self) -> Vec<(LineAddress, u64)> {
        let mut entries: Vec<(LineAddress, u64)> =
            self.per_line.iter().map(|(l, n)| (*l, *n)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries
    }

    /// Correctable events raised at or after `since`.
    pub fn correctable_since(&self, since: SimTime) -> u64 {
        self.correctable.iter().filter(|e| e.at >= since).count() as u64
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.correctable.clear();
        self.uncorrectable.clear();
        self.per_line.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_types::SetWay;

    fn ce(core: usize, cache: CacheKind, set: usize, at_ms: u64) -> CorrectableError {
        CorrectableError {
            at: SimTime::from_millis(at_ms),
            line: LineAddress::new(CoreId(core), cache, SetWay::new(set, 0)),
            word: 0,
            bit: 1,
            syndrome: 0x07,
        }
    }

    #[test]
    fn counts_and_filters() {
        let mut log = EccEventLog::new();
        log.record_correctable(ce(0, CacheKind::L2Data, 5, 1));
        log.record_correctable(ce(0, CacheKind::L2Data, 5, 2));
        log.record_correctable(ce(0, CacheKind::L2Instruction, 9, 3));
        log.record_correctable(ce(1, CacheKind::L2Data, 5, 4));
        assert_eq!(log.correctable_count(), 4);
        assert_eq!(log.count_for_core(CoreId(0), CacheKind::L2Data), 2);
        assert_eq!(log.count_for_core(CoreId(0), CacheKind::L2Instruction), 1);
        assert_eq!(log.count_for_core(CoreId(1), CacheKind::L2Data), 1);
        assert_eq!(log.count_for_core(CoreId(2), CacheKind::L2Data), 0);
    }

    #[test]
    fn hottest_line_and_histogram() {
        let mut log = EccEventLog::new();
        for _ in 0..3 {
            log.record_correctable(ce(0, CacheKind::L2Data, 7, 1));
        }
        log.record_correctable(ce(0, CacheKind::L2Data, 2, 1));
        let (line, n) = log.hottest_line().unwrap();
        assert_eq!(line.location.set, 7);
        assert_eq!(n, 3);
        let hist = log.line_histogram();
        assert_eq!(hist.len(), 2);
        assert!(hist[0].1 >= hist[1].1);
    }

    #[test]
    fn hottest_line_empty() {
        assert!(EccEventLog::new().hottest_line().is_none());
    }

    #[test]
    fn since_filter() {
        let mut log = EccEventLog::new();
        log.record_correctable(ce(0, CacheKind::L2Data, 1, 10));
        log.record_correctable(ce(0, CacheKind::L2Data, 1, 20));
        log.record_correctable(ce(0, CacheKind::L2Data, 1, 30));
        assert_eq!(log.correctable_since(SimTime::from_millis(20)), 2);
        assert_eq!(log.correctable_since(SimTime::ZERO), 3);
    }

    #[test]
    fn uncorrectable_tracked_separately() {
        let mut log = EccEventLog::new();
        log.record_uncorrectable(UncorrectableError {
            at: SimTime::ZERO,
            line: LineAddress::new(CoreId(0), CacheKind::L2Data, SetWay::new(0, 0)),
            word: 3,
            syndrome: 0b11,
        });
        assert_eq!(log.uncorrectable_count(), 1);
        assert_eq!(log.correctable_count(), 0);
        log.clear();
        assert_eq!(log.uncorrectable_count(), 0);
    }

    #[test]
    fn event_accessors() {
        let e = EccEvent::Correctable(ce(2, CacheKind::L2Data, 4, 9));
        assert_eq!(e.line().core, CoreId(2));
        assert_eq!(e.at(), SimTime::from_millis(9));
    }

    #[test]
    fn display_strings() {
        let msg = ce(1, CacheKind::L2Instruction, 3, 5).to_string();
        assert!(msg.contains("CE"));
        assert!(msg.contains("core1"));
        assert!(msg.contains("L2I"));
    }
}
