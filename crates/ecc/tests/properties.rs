//! Property-based tests for the Hsiao SEC-DED codec, including the
//! guarantees the code does *not* make (triple-bit behaviour).
//!
//! These are hand-rolled property loops driven by the workspace's own
//! deterministic [`CounterRng`] rather than an external fuzzing crate, so
//! the suite builds fully offline and every failure is reproducible from
//! the printed case index.

use vs_ecc::{DecodeOutcome, SecDed};
use vs_types::rng::CounterRng;

const CASES: usize = 256;

/// Encode/decode is the identity on clean words for both geometries.
#[test]
fn roundtrip_72_64() {
    let mut rng = CounterRng::from_key(0xECC0, &[1]);
    let code = SecDed::hsiao_72_64();
    for case in 0..CASES {
        let data = rng.next_u64();
        assert_eq!(
            code.decode(code.encode(data)),
            DecodeOutcome::Clean { data },
            "case {case}"
        );
    }
}

#[test]
fn roundtrip_39_32() {
    let mut rng = CounterRng::from_key(0xECC0, &[2]);
    let code = SecDed::hsiao_39_32();
    for case in 0..CASES {
        let data = rng.next_u64() & 0xFFFF_FFFF;
        assert_eq!(
            code.decode(code.encode(data)),
            DecodeOutcome::Clean { data },
            "case {case}"
        );
    }
}

/// The syndrome of a clean codeword is always zero, and nonzero for any
/// single corruption.
#[test]
fn syndrome_zero_iff_clean() {
    let mut rng = CounterRng::from_key(0xECC0, &[3]);
    let code = SecDed::hsiao_72_64();
    for case in 0..CASES {
        let data = rng.next_u64();
        let bit = rng.next_below(72) as u32;
        let word = code.encode(data);
        assert_eq!(code.syndrome(word), 0, "case {case}");
        assert_ne!(code.syndrome(code.inject(word, &[bit])), 0, "case {case}");
    }
}

/// Check-bit errors are corrected without touching the data.
#[test]
fn check_bit_errors_leave_data_intact() {
    let mut rng = CounterRng::from_key(0xECC0, &[4]);
    let code = SecDed::hsiao_72_64();
    for case in 0..CASES {
        let data = rng.next_u64();
        let check_bit = 64 + rng.next_below(8) as u32;
        let word = code.encode(data);
        match code.decode(code.inject(word, &[check_bit])) {
            DecodeOutcome::Corrected { data: d, bit, .. } => {
                assert_eq!(d, data, "case {case}");
                assert_eq!(bit, check_bit, "case {case}");
            }
            other => panic!("case {case}: got {other:?}"),
        }
    }
}

/// Triple-bit errors are OUTSIDE the code's guarantee: they may decode as
/// anything except a silent clean result — an odd number of flips always
/// yields a nonzero syndrome for an odd-weight-column code, so a triple
/// flip is never reported Clean.
#[test]
fn triple_flips_never_decode_clean() {
    let mut rng = CounterRng::from_key(0xECC0, &[5]);
    let code = SecDed::hsiao_72_64();
    let mut tried = 0;
    while tried < CASES {
        let data = rng.next_u64();
        let a = rng.next_below(72) as u32;
        let b = rng.next_below(72) as u32;
        let c = rng.next_below(72) as u32;
        if a == b || b == c || a == c {
            continue;
        }
        tried += 1;
        let word = code.encode(data);
        let outcome = code.decode(code.inject(word, &[a, b, c]));
        assert!(
            !matches!(outcome, DecodeOutcome::Clean { .. }),
            "triple flip ({a},{b},{c}) decoded clean: {outcome:?}"
        );
    }
}

/// Correction is idempotent: decoding the corrected word again is clean.
#[test]
fn correction_is_idempotent() {
    let mut rng = CounterRng::from_key(0xECC0, &[6]);
    let code = SecDed::hsiao_72_64();
    for case in 0..CASES {
        let data = rng.next_u64();
        let bit = rng.next_below(72) as u32;
        let corrupted = code.inject(code.encode(data), &[bit]);
        if let DecodeOutcome::Corrected { data: d, .. } = code.decode(corrupted) {
            assert_eq!(
                code.decode(code.encode(d)),
                DecodeOutcome::Clean { data: d },
                "case {case}"
            );
        } else {
            panic!("case {case}: single flip must correct");
        }
    }
}

/// Custom geometries keep the SEC-DED guarantees as long as enough
/// odd-weight columns exist.
#[test]
fn custom_geometry_sec_ded() {
    let mut rng = CounterRng::from_key(0xECC0, &[7]);
    let code = SecDed::new(16, 6);
    assert_eq!(code.codeword_bits(), 22);
    for case in 0..CASES {
        let data = rng.next_u64() & 0xFFFF;
        let a = rng.next_below(22) as u32;
        let b = rng.next_below(22) as u32;
        let word = code.encode(data);
        // Single: corrected.
        let got = code.decode(code.inject(word, &[a]));
        assert!(
            matches!(got, DecodeOutcome::Corrected { data: d, .. } if d == data),
            "case {case}: {got:?}"
        );
        // Double: detected.
        if a != b {
            let got = code.decode(code.inject(word, &[a, b]));
            assert!(got.is_uncorrectable(), "case {case}: {got:?}");
        }
    }
}
