//! Property-based tests for the Hsiao SEC-DED codec, including the
//! guarantees the code does *not* make (triple-bit behaviour).

use proptest::prelude::*;
use vs_ecc::{DecodeOutcome, SecDed};

proptest! {
    /// Encode/decode is the identity on clean words for both geometries.
    #[test]
    fn roundtrip_72_64(data: u64) {
        let code = SecDed::hsiao_72_64();
        prop_assert_eq!(code.decode(code.encode(data)), DecodeOutcome::Clean { data });
    }

    #[test]
    fn roundtrip_39_32(data in 0u64..(1 << 32)) {
        let code = SecDed::hsiao_39_32();
        prop_assert_eq!(code.decode(code.encode(data)), DecodeOutcome::Clean { data });
    }

    /// The syndrome of a clean codeword is always zero, and nonzero for
    /// any single corruption.
    #[test]
    fn syndrome_zero_iff_clean(data: u64, bit in 0u32..72) {
        let code = SecDed::hsiao_72_64();
        let word = code.encode(data);
        prop_assert_eq!(code.syndrome(word), 0);
        prop_assert_ne!(code.syndrome(code.inject(word, &[bit])), 0);
    }

    /// Check-bit errors are corrected without touching the data.
    #[test]
    fn check_bit_errors_leave_data_intact(data: u64, check_bit in 64u32..72) {
        let code = SecDed::hsiao_72_64();
        let word = code.encode(data);
        match code.decode(code.inject(word, &[check_bit])) {
            DecodeOutcome::Corrected { data: d, bit, .. } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(bit, check_bit);
            }
            other => prop_assert!(false, "got {:?}", other),
        }
    }

    /// Triple-bit errors are OUTSIDE the code's guarantee: they may decode
    /// as anything except a silent clean result equal to a *wrong* value
    /// with zero syndrome... in fact an odd number of flips always yields
    /// a nonzero syndrome for an odd-weight-column code, so a triple flip
    /// is never reported Clean.
    #[test]
    fn triple_flips_never_decode_clean(
        data: u64,
        a in 0u32..72,
        b in 0u32..72,
        c in 0u32..72,
    ) {
        prop_assume!(a != b && b != c && a != c);
        let code = SecDed::hsiao_72_64();
        let word = code.encode(data);
        let outcome = code.decode(code.inject(word, &[a, b, c]));
        let clean = matches!(outcome, DecodeOutcome::Clean { .. });
        prop_assert!(!clean, "triple flip decoded clean: {:?}", outcome);
    }

    /// Correction is idempotent: decoding the corrected word again is
    /// clean.
    #[test]
    fn correction_is_idempotent(data: u64, bit in 0u32..72) {
        let code = SecDed::hsiao_72_64();
        let corrupted = code.inject(code.encode(data), &[bit]);
        if let DecodeOutcome::Corrected { data: d, .. } = code.decode(corrupted) {
            prop_assert_eq!(code.decode(code.encode(d)), DecodeOutcome::Clean { data: d });
        } else {
            prop_assert!(false, "single flip must correct");
        }
    }

    /// Custom geometries keep the SEC-DED guarantees as long as enough
    /// odd-weight columns exist.
    #[test]
    fn custom_geometry_sec_ded(data in 0u64..(1 << 16), a in 0u32..22, b in 0u32..22) {
        let code = SecDed::new(16, 6);
        prop_assert_eq!(code.codeword_bits(), 22);
        let word = code.encode(data);
        // Single: corrected.
        let got = code.decode(code.inject(word, &[a]));
        let corrected = matches!(got, DecodeOutcome::Corrected { data: d, .. } if d == data);
        prop_assert!(corrected);
        // Double: detected.
        prop_assume!(a != b);
        let got = code.decode(code.inject(word, &[a, b]));
        prop_assert!(got.is_uncorrectable());
    }
}
