//! The wall-clock watchdog: a supervisor thread that cancels jobs which
//! stop heartbeating past their deadline budget.
//!
//! The watchdog is deliberately *cooperative*: firing cancels the job's
//! [`CancelToken`](crate::CancelToken) — it never kills a thread. A job
//! that polls its token (the fleet worker does so between simulation
//! slices, and injected hangs poll it while they spin) winds down at its
//! next check point; the supervisor marks the handle
//! [`fired`](HeartbeatHandle::fired) so the owner can count the strike,
//! retry the chip, or quarantine it.
//!
//! Wall-clock time decides only *whether* a job is cancelled, never what
//! it computes, so watchdog supervision cannot perturb simulated results.

use crate::cancel::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared state of one supervised job.
#[derive(Debug)]
struct JobState {
    /// Owner-chosen label (the fleet uses the chip id), for diagnostics.
    label: u64,
    /// Budget between heartbeats, in nanoseconds.
    budget_ns: u64,
    /// Last heartbeat, as nanoseconds since the watchdog's origin.
    last_beat_ns: AtomicU64,
    /// The token the watchdog cancels on expiry.
    token: CancelToken,
    /// Set by the owner when the job completes (stops supervision).
    done: AtomicBool,
    /// Set by the watchdog when it cancelled this job.
    fired: AtomicBool,
}

#[derive(Debug)]
struct Shared {
    origin: Instant,
    jobs: Mutex<Vec<Arc<JobState>>>,
    stop: AtomicBool,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A heartbeat registration: the job side of the watchdog.
///
/// Call [`beat`](HeartbeatHandle::beat) at every natural check point;
/// call [`finish`](HeartbeatHandle::finish) (or drop the handle) when the
/// job completes. If the gap between beats ever exceeds the budget the
/// handle was registered with, the watchdog cancels
/// [`token`](HeartbeatHandle::token) and [`fired`](HeartbeatHandle::fired)
/// turns true.
#[derive(Debug)]
pub struct HeartbeatHandle {
    state: Arc<JobState>,
    shared: Arc<Shared>,
}

impl HeartbeatHandle {
    /// Records a heartbeat: the job is alive, its budget restarts.
    pub fn beat(&self) {
        self.state
            .last_beat_ns
            .store(self.shared.now_ns(), Ordering::Relaxed);
    }

    /// The token the watchdog cancels when the job's budget expires. A
    /// child of the parent token the job was registered under, so run-wide
    /// cancellation reaches it too.
    pub fn token(&self) -> &CancelToken {
        &self.state.token
    }

    /// True once the watchdog cancelled this job for missing its budget.
    pub fn fired(&self) -> bool {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// The label the job was registered under.
    pub fn label(&self) -> u64 {
        self.state.label
    }

    /// Ends supervision (idempotent; dropping the handle does the same).
    pub fn finish(&self) {
        self.state.done.store(true, Ordering::SeqCst);
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// The supervisor: one background thread polling every registered job.
///
/// Dropping the watchdog stops the thread (after its current poll) and
/// leaves all tokens as they are.
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns a watchdog that re-checks every supervised job each `poll`
    /// interval. Budgets shorter than the poll interval are detected up to
    /// one interval late — pick `poll` a small fraction of the smallest
    /// budget.
    pub fn spawn(poll: Duration) -> Watchdog {
        let shared = Arc::new(Shared {
            origin: Instant::now(),
            jobs: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let for_thread = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("vs-guard-watchdog".into())
            .spawn(move || watch(&for_thread, poll))
            .expect("spawning the watchdog thread");
        Watchdog {
            shared,
            thread: Some(thread),
        }
    }

    /// Registers a job: `label` for diagnostics, `budget` as the maximum
    /// wall-clock gap between heartbeats, `parent` as the token the job's
    /// own token is a child of. The registration counts as the first
    /// heartbeat.
    pub fn register(&self, label: u64, budget: Duration, parent: &CancelToken) -> HeartbeatHandle {
        let state = Arc::new(JobState {
            label,
            budget_ns: u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX),
            last_beat_ns: AtomicU64::new(self.shared.now_ns()),
            token: parent.child(),
            done: AtomicBool::new(false),
            fired: AtomicBool::new(false),
        });
        self.shared.jobs.lock().unwrap().push(Arc::clone(&state));
        HeartbeatHandle {
            state,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The supervisor loop: cancel expired jobs, prune finished ones.
fn watch(shared: &Shared, poll: Duration) {
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(poll);
        let now = shared.now_ns();
        let mut jobs = shared.jobs.lock().unwrap();
        jobs.retain(|job| {
            if job.done.load(Ordering::SeqCst) {
                return false;
            }
            if job.fired.load(Ordering::SeqCst) {
                return false;
            }
            let idle = now.saturating_sub(job.last_beat_ns.load(Ordering::Relaxed));
            if idle > job.budget_ns {
                job.token.cancel();
                job.fired.store(true, Ordering::SeqCst);
                return false;
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beating_jobs_are_left_alone() {
        let watchdog = Watchdog::spawn(Duration::from_millis(1));
        let handle = watchdog.register(1, Duration::from_millis(20), &CancelToken::new());
        for _ in 0..10 {
            handle.beat();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!handle.fired());
        assert!(!handle.token().is_cancelled());
        handle.finish();
    }

    #[test]
    fn silent_jobs_are_cancelled_and_marked_fired() {
        let watchdog = Watchdog::spawn(Duration::from_millis(1));
        let handle = watchdog.register(7, Duration::from_millis(5), &CancelToken::new());
        let deadline = Instant::now() + Duration::from_secs(5);
        while !handle.token().is_cancelled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(handle.fired());
        assert_eq!(handle.label(), 7);
    }

    #[test]
    fn finished_jobs_are_never_fired() {
        let watchdog = Watchdog::spawn(Duration::from_millis(1));
        let handle = watchdog.register(3, Duration::from_millis(2), &CancelToken::new());
        handle.finish();
        std::thread::sleep(Duration::from_millis(20));
        assert!(!handle.fired());
        assert!(!handle.token().is_cancelled());
    }

    #[test]
    fn run_wide_cancellation_reaches_supervised_tokens() {
        let run = CancelToken::new();
        let watchdog = Watchdog::spawn(Duration::from_millis(1));
        let handle = watchdog.register(0, Duration::from_secs(60), &run);
        assert!(!handle.token().is_cancelled());
        run.cancel();
        assert!(handle.token().is_cancelled());
        assert!(
            !handle.token().is_cancelled_directly(),
            "the job's own flag stays clear — this was a run-wide cancel"
        );
        assert!(!handle.fired());
    }
}
