//! Run supervision for the voltspec stack.
//!
//! The paper's hardware controller must keep servoing safely through
//! droops, errors, and emergencies for the life of the machine; this crate
//! gives the *simulation* the matching process-level resilience. Multi-hour
//! fleet sweeps (the scale of the MPSoC margin-reduction and
//! reduced-voltage-DRAM characterization campaigns the roadmap tracks) get
//! three guarantees:
//!
//! * **Cooperative cancellation** — [`CancelToken`], a cloneable atomic
//!   flag checked inside the fleet worker loop and the per-chip speculation
//!   step loop. Tokens form a parent/child hierarchy: cancelling a parent
//!   cancels every child (the run-wide Ctrl-C token) while a child can be
//!   cancelled alone (one hung chip) without touching its siblings.
//!   [`install_ctrl_c`] wires the run-wide token to SIGINT so an
//!   interrupted sweep flushes a valid checkpoint instead of dying
//!   mid-write; a second Ctrl-C restores the default handler and kills the
//!   process immediately.
//! * **Wall-clock watchdog** — [`Watchdog`], a supervisor thread holding a
//!   registry of [`HeartbeatHandle`]s. Workers beat between simulation
//!   slices; a job that stops beating past its deadline budget has its
//!   token cancelled (and is marked [`HeartbeatHandle::fired`]) so the
//!   owning runner can retry or quarantine the chip without stalling the
//!   rest of the sweep.
//! * **Crash-safe journaling** — [`JournalWriter`] plus the [`frame`] /
//!   [`unframe`] record codec: append-only files of CRC32-checksummed
//!   records, flushed and fsynced per append, so a SIGKILL at any instant
//!   loses at most the record being written (and that record is *detected*
//!   as truncated or corrupt on replay, never silently mis-parsed).
//! * **Filesystem fault injection** — the [`fsfault`] module ("FaultyFs"):
//!   every durable write path above consults a deterministic, counted
//!   fault budget (ENOSPC, short/torn writes, fsync failures) scoped to a
//!   directory prefix, so torture harnesses can prove the recovery story
//!   end to end. With no plan installed the hook is one atomic load.
//!   Fault state is per-[`vfs::Vfs`]-instance so plans compose.
//! * **Crash-consistency checking** — the [`vfs`] module's [`vfs::Vfs`]
//!   seam routes every durable write through either the real filesystem
//!   ([`vfs::StdFs`]) or a deterministic recorder ([`vfs::SimFs`]) that
//!   can materialize the disk image at any crash point, and
//!   [`crashcheck`] exhaustively explores those points against
//!   caller-supplied recovery invariants.
//!
//! Everything is std-only (the workspace builds offline) and wall-clock
//! state never feeds into simulated results: supervision decides *whether*
//! work ran, never *what* it computed, which is what keeps supervised fleet
//! results bit-identical to unsupervised ones.
//!
//! # Examples
//!
//! ```
//! use vs_guard::{CancelToken, Watchdog};
//! use std::time::Duration;
//!
//! // Hierarchical cancellation: the run token governs every job token.
//! let run = CancelToken::new();
//! let job = run.child();
//! assert!(!job.is_cancelled());
//! run.cancel();
//! assert!(job.is_cancelled(), "children observe parent cancellation");
//!
//! // A watchdog cancels jobs that stop heartbeating.
//! let watchdog = Watchdog::spawn(Duration::from_millis(1));
//! let handle = watchdog.register(7, Duration::from_millis(5), &CancelToken::new());
//! while !handle.token().is_cancelled() {
//!     std::thread::sleep(Duration::from_millis(1)); // never beats...
//! }
//! assert!(handle.fired(), "...so the watchdog fired");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cancel;
pub mod crashcheck;
mod crc32;
pub mod fsfault;
mod journal;
pub mod vfs;
mod watchdog;

pub use cancel::{install_ctrl_c, CancelToken};
pub use crc32::crc32;
pub use journal::{frame, unframe, FrameError, JournalWriter};
pub use watchdog::{HeartbeatHandle, Watchdog};
