//! A minimal virtual filesystem seam for every durability path.
//!
//! The paper's safety argument rests on recovery machinery that is only
//! exercised in corner states; the software analogue is the store's
//! crash-recovery path, which production never exercises until the one
//! moment it must work. This module makes that path *checkable*: all
//! durable writes in the stack (journal appends, checkpoint saves,
//! streaming compaction, postmortem bundles, the fleetd store layout) go
//! through the [`Vfs`] trait instead of `std::fs` directly.
//!
//! Two implementations exist:
//!
//! * [`StdFs`] — the production backend. Every method is a thin forward
//!   to `std::fs`; the only extra cost over calling `std::fs` directly is
//!   one dynamic dispatch, and its fault hook is a single relaxed atomic
//!   load when no fault plan is installed.
//! * [`SimFs`] — a deterministic in-memory filesystem that records every
//!   mutation as a numbered operation ([`SimOp`]) and can materialize the
//!   disk image as of any [`CrashPoint`]: any operation index, with the
//!   not-yet-fsynced data dropped ([`PendingMode::Dropped`]), retained
//!   ([`PendingMode::Retained`]), or torn mid-write
//!   ([`PendingMode::Torn`], a durable prefix of the crashed write).
//!
//! The crash model follows ordered-metadata journaling filesystems
//! (ext4-ordered and friends): metadata operations (create, rename,
//! remove, mkdir) are durable at apply time, while file *data* written
//! since the last fsync lives in a per-file pending buffer that a crash
//! may or may not persist. `fsync` promotes a file's pending bytes to
//! durable. This is deliberately the adversarial model ALICE-style
//! checkers use: if recovery survives both extremes (all pending lost,
//! all pending kept) plus torn prefixes of the final write, it survives
//! any subset a real kernel would leave behind.
//!
//! Durability code is written against [`VfsHandle`] (an `Arc<dyn Vfs>`)
//! so a recording [`SimFs`] and the real [`StdFs`] are interchangeable.

use crate::fsfault::{self, FaultState};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// How [`Vfs::open_write`] positions the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Create the file, truncating any existing content.
    Truncate,
    /// Open an existing file and append after its current content.
    Append,
}

/// A writable file handle from a [`Vfs`].
///
/// Extends [`io::Write`] with the two durability barriers the stack
/// uses. The distinction matters to the crash model: data written but
/// not yet synced is exactly what a crash may lose.
pub trait VfsFile: io::Write + Send {
    /// Durability barrier for the file's data (`fdatasync`).
    fn sync(&mut self) -> io::Result<()>;
    /// Durability barrier for data and metadata (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the durability stack needs.
///
/// Deliberately small: open-for-write, whole-file reads, rename, remove,
/// mkdir, directory listing, and directory sync. Callers consult
/// [`Vfs::faults`] before durable writes (the FaultyFs torture hook) and
/// may drop [`Vfs::mark`] labels to tag acknowledgement points in the
/// recorded operation stream.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Opens `path` for writing in the given mode.
    fn open_write(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>>;

    /// Reads the entire file as bytes.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Opens `path` for streaming reads (the compaction path never loads
    /// a whole checkpoint in memory).
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn io::Read + Send>>;

    /// Reads the entire file as UTF-8 text.
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let bytes = self.read(path)?;
        String::from_utf8(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file is not valid UTF-8"))
    }

    /// True when `path` names an existing file or directory.
    fn exists(&self, path: &Path) -> bool;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// The files directly under `dir`, sorted by path (directories are
    /// not listed). A missing directory is an empty listing.
    fn read_dir_sorted(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Durability barrier for a directory's entries (fsync of the
    /// directory fd) — what makes a completed rename survive a crash.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// The fault-injection state consulted before durable writes.
    fn faults(&self) -> &FaultState;

    /// Tags the current point in the mutation stream with `label`.
    ///
    /// No-op on the production backend; [`SimFs`] records `(ops-so-far,
    /// label)` so a crash-point explorer can compute which
    /// acknowledgements precede any crash point.
    fn mark(&self, _label: &str) {}

    /// A deterministic tag for temp-file naming, if this backend wants
    /// one. `None` (the production default) lets callers fall back to
    /// pid-and-serial names; [`SimFs`] returns a per-instance counter so
    /// recorded operation streams are byte-identical across processes.
    fn temp_tag(&self) -> Option<String> {
        None
    }
}

/// A shared, clonable handle to a [`Vfs`] backend.
pub type VfsHandle = Arc<dyn Vfs>;

/// The process-wide production backend (one shared [`StdFs`]).
pub fn std_fs() -> VfsHandle {
    static STD: OnceLock<VfsHandle> = OnceLock::new();
    Arc::clone(STD.get_or_init(|| Arc::new(StdFs)))
}

// ---------------------------------------------------------------------------
// StdFs: the production backend.
// ---------------------------------------------------------------------------

/// The real filesystem. All methods forward to `std::fs`; the fault
/// state is the process-global FaultyFs slot, so the existing `--torture`
/// wiring keeps working unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

#[derive(Debug)]
struct StdFile(File);

impl io::Write for StdFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for StdFile {
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdFs {
    fn open_write(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        let file = match mode {
            OpenMode::Truncate => File::create(path)?,
            OpenMode::Append => OpenOptions::new().append(true).open(path)?,
        };
        Ok(Box::new(StdFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn io::Read + Send>> {
        Ok(Box::new(File::open(path)?))
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir_sorted(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn faults(&self) -> &FaultState {
        fsfault::global()
    }
}

// ---------------------------------------------------------------------------
// SimFs: deterministic in-memory recording backend.
// ---------------------------------------------------------------------------

/// One recorded filesystem mutation. Indices into the recorded stream
/// are 1-based: operation `k` is the `k`-th mutation applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOp {
    /// Truncating create of a file (metadata: durable at apply).
    Create(PathBuf),
    /// Append of `bytes` to a file's *pending* (un-fsynced) data.
    Write {
        /// The file written.
        path: PathBuf,
        /// The appended bytes.
        bytes: Vec<u8>,
    },
    /// fsync/fdatasync of a file: pending data becomes durable.
    Sync(PathBuf),
    /// Rename (metadata: durable at apply).
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path (replaced if present).
        to: PathBuf,
    },
    /// File removal (metadata: durable at apply).
    Remove(PathBuf),
    /// Directory creation (metadata: durable at apply).
    CreateDir(PathBuf),
    /// fsync of a directory (no-op in this model: metadata is already
    /// durable at apply, but the barrier is still a numbered crash
    /// point).
    SyncDir(PathBuf),
}

impl SimOp {
    /// A short deterministic human-readable label (sim paths only).
    pub fn label(&self) -> String {
        match self {
            SimOp::Create(p) => format!("create {}", p.display()),
            SimOp::Write { path, bytes } => {
                format!("write {} ({}B)", path.display(), bytes.len())
            }
            SimOp::Sync(p) => format!("sync {}", p.display()),
            SimOp::Rename { from, to } => {
                format!("rename {} -> {}", from.display(), to.display())
            }
            SimOp::Remove(p) => format!("remove {}", p.display()),
            SimOp::CreateDir(p) => format!("mkdir {}", p.display()),
            SimOp::SyncDir(p) => format!("syncdir {}", p.display()),
        }
    }

    /// For write operations, the payload length (used to enumerate torn
    /// prefixes).
    pub fn write_len(&self) -> Option<usize> {
        match self {
            SimOp::Write { bytes, .. } => Some(bytes.len()),
            _ => None,
        }
    }
}

/// What happens to not-yet-fsynced data at a crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PendingMode {
    /// All pending (un-fsynced) data is lost; only fsynced bytes and
    /// applied metadata survive.
    Dropped,
    /// All pending data happens to reach the platters anyway (the
    /// kernel flushed it before the crash).
    Retained,
    /// Pending data survives, but the crashed operation — which must be
    /// a [`SimOp::Write`] — lands only its first `n` bytes (a torn
    /// write).
    Torn(usize),
}

impl fmt::Display for PendingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PendingMode::Dropped => write!(f, "dropped"),
            PendingMode::Retained => write!(f, "retained"),
            PendingMode::Torn(n) => write!(f, "torn({n})"),
        }
    }
}

/// A crash point: the image after operations `1..=op` with `pending`
/// deciding the fate of un-fsynced data. `op == 0` is the pristine
/// pre-workload state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Number of recorded operations that completed before the crash
    /// (for [`PendingMode::Torn`], the crashed — partially applied —
    /// operation itself).
    pub op: u64,
    /// Fate of un-fsynced data.
    pub pending: PendingMode,
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op={} pending={}", self.op, self.pending)
    }
}

/// A materialized disk image: what a reboot would find.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimImage {
    /// File contents by path.
    pub files: BTreeMap<PathBuf, Vec<u8>>,
    /// Directories present.
    pub dirs: BTreeSet<PathBuf>,
}

#[derive(Debug, Default, Clone)]
struct SimFileState {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

impl SimFileState {
    fn visible(&self) -> Vec<u8> {
        let mut v = self.durable.clone();
        v.extend_from_slice(&self.pending);
        v
    }
}

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<PathBuf, SimFileState>,
    dirs: BTreeSet<PathBuf>,
    ops: Vec<SimOp>,
    marks: Vec<(u64, String)>,
    temp_serial: u64,
}

impl SimState {
    /// Applies one mutation to the live view and records it.
    fn apply_and_record(&mut self, op: SimOp) {
        Self::apply(&mut self.files, &mut self.dirs, &op, None);
        self.ops.push(op);
    }

    /// Applies `op` to a (files, dirs) view. `torn` limits a write to a
    /// prefix (crash-replay only; the live view always passes `None`).
    fn apply(
        files: &mut BTreeMap<PathBuf, SimFileState>,
        dirs: &mut BTreeSet<PathBuf>,
        op: &SimOp,
        torn: Option<usize>,
    ) {
        match op {
            SimOp::Create(p) => {
                files.insert(p.clone(), SimFileState::default());
            }
            SimOp::Write { path, bytes } => {
                let f = files.entry(path.clone()).or_default();
                let n = torn.unwrap_or(bytes.len()).min(bytes.len());
                f.pending.extend_from_slice(&bytes[..n]);
            }
            SimOp::Sync(p) => {
                if let Some(f) = files.get_mut(p) {
                    let pending = std::mem::take(&mut f.pending);
                    f.durable.extend_from_slice(&pending);
                }
            }
            SimOp::Rename { from, to } => {
                if let Some(f) = files.remove(from) {
                    files.insert(to.clone(), f);
                }
            }
            SimOp::Remove(p) => {
                files.remove(p);
            }
            SimOp::CreateDir(p) => {
                let mut cur = PathBuf::new();
                for comp in p.components() {
                    cur.push(comp);
                    dirs.insert(cur.clone());
                }
            }
            SimOp::SyncDir(_) => {}
        }
    }
}

/// A deterministic in-memory filesystem that records every mutation.
///
/// Create one with [`SimFs::new`] (empty) or [`SimFs::from_image`] (a
/// rebooted crash image), hand clones of the `Arc` to durability code as
/// a [`VfsHandle`], then interrogate the recording: [`SimFs::mutations`]
/// counts operations, [`SimFs::crash_image`] materializes any crash
/// point, [`SimFs::marks`] returns acknowledgement tags.
#[derive(Debug, Default)]
pub struct SimFs {
    state: Arc<Mutex<SimState>>,
    faults: FaultState,
}

impl SimFs {
    /// An empty simulated filesystem.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// A simulated filesystem booted from a crash image: every file in
    /// the image is durable, and the operation log starts empty.
    pub fn from_image(image: &SimImage) -> SimFs {
        let sim = SimFs::new();
        {
            let mut st = sim.state.lock().unwrap();
            st.dirs = image.dirs.clone();
            for (path, bytes) in &image.files {
                st.files.insert(
                    path.clone(),
                    SimFileState {
                        durable: bytes.clone(),
                        pending: Vec::new(),
                    },
                );
            }
        }
        sim
    }

    /// The number of mutations recorded so far.
    pub fn mutations(&self) -> u64 {
        self.state.lock().unwrap().ops.len() as u64
    }

    /// The recorded operations, in order (operation `k` is `ops()[k-1]`).
    pub fn ops(&self) -> Vec<SimOp> {
        self.state.lock().unwrap().ops.clone()
    }

    /// The recorded `(ops-so-far, label)` marks, in order.
    pub fn marks(&self) -> Vec<(u64, String)> {
        self.state.lock().unwrap().marks.clone()
    }

    /// The disk image a reboot would find at `point`.
    ///
    /// Replays operations `1..=point.op` from scratch; metadata applies
    /// durably, data lands in pending buffers, syncs promote. The final
    /// image keeps only durable bytes ([`PendingMode::Dropped`]) or
    /// durable plus pending ([`PendingMode::Retained`] /
    /// [`PendingMode::Torn`], the latter truncating the crashed write).
    ///
    /// # Panics
    ///
    /// Panics if `point.op` exceeds the recorded operation count, or if
    /// [`PendingMode::Torn`] is used on a non-write operation — both are
    /// explorer bugs, not recoverable states.
    pub fn crash_image(&self, point: &CrashPoint) -> SimImage {
        let st = self.state.lock().unwrap();
        let k = usize::try_from(point.op).expect("crash point fits usize");
        assert!(
            k <= st.ops.len(),
            "crash point {k} past end of {} recorded ops",
            st.ops.len()
        );
        let mut files: BTreeMap<PathBuf, SimFileState> = BTreeMap::new();
        let mut dirs: BTreeSet<PathBuf> = BTreeSet::new();
        for (i, op) in st.ops[..k].iter().enumerate() {
            let torn = match point.pending {
                PendingMode::Torn(n) if i + 1 == k => {
                    assert!(
                        matches!(op, SimOp::Write { .. }),
                        "torn crash point on non-write op {}",
                        op.label()
                    );
                    Some(n)
                }
                _ => None,
            };
            SimState::apply(&mut files, &mut dirs, op, torn);
        }
        let keep_pending = !matches!(point.pending, PendingMode::Dropped);
        SimImage {
            files: files
                .into_iter()
                .map(|(p, f)| {
                    let bytes = if keep_pending { f.visible() } else { f.durable };
                    (p, bytes)
                })
                .collect(),
            dirs,
        }
    }

    /// The current live view (durable plus pending) of every file — what
    /// a reader sees with no crash. Useful for byte-identity assertions
    /// between recoveries.
    pub fn snapshot(&self) -> SimImage {
        let st = self.state.lock().unwrap();
        SimImage {
            files: st
                .files
                .iter()
                .map(|(p, f)| (p.clone(), f.visible()))
                .collect(),
            dirs: st.dirs.clone(),
        }
    }
}

#[derive(Debug)]
struct SimFile {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
}

impl io::Write for SimFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !buf.is_empty() {
            let mut st = self.state.lock().unwrap();
            st.apply_and_record(SimOp::Write {
                path: self.path.clone(),
                bytes: buf.to_vec(),
            });
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl VfsFile for SimFile {
    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.apply_and_record(SimOp::Sync(self.path.clone()));
        Ok(())
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.sync()
    }
}

impl Vfs for SimFs {
    fn open_write(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.state.lock().unwrap();
        match mode {
            OpenMode::Truncate => {
                st.apply_and_record(SimOp::Create(path.to_path_buf()));
            }
            OpenMode::Append => {
                if !st.files.contains_key(path) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such file: {}", path.display()),
                    ));
                }
            }
        }
        Ok(Box::new(SimFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.state.lock().unwrap();
        st.files.get(path).map(|f| f.visible()).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            )
        })
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn io::Read + Send>> {
        let bytes = self.read(path)?;
        Ok(Box::new(io::Cursor::new(bytes)))
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.state.lock().unwrap();
        st.files.contains_key(path) || st.dirs.contains(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if !st.files.contains_key(from) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", from.display()),
            ));
        }
        st.apply_and_record(SimOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if !st.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            ));
        }
        st.apply_and_record(SimOp::Remove(path.to_path_buf()));
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if !st.dirs.contains(path) {
            st.apply_and_record(SimOp::CreateDir(path.to_path_buf()));
        }
        Ok(())
    }

    fn read_dir_sorted(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let st = self.state.lock().unwrap();
        Ok(st
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.apply_and_record(SimOp::SyncDir(dir.to_path_buf()));
        Ok(())
    }

    fn faults(&self) -> &FaultState {
        &self.faults
    }

    fn mark(&self, label: &str) {
        let mut st = self.state.lock().unwrap();
        let at = st.ops.len() as u64;
        st.marks.push((at, label.to_string()));
    }

    fn temp_tag(&self) -> Option<String> {
        let mut st = self.state.lock().unwrap();
        st.temp_serial += 1;
        Some(format!("sim{}", st.temp_serial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> (Arc<SimFs>, VfsHandle) {
        let sim = Arc::new(SimFs::new());
        let vfs: VfsHandle = Arc::clone(&sim) as VfsHandle;
        (sim, vfs)
    }

    #[test]
    fn writes_are_pending_until_synced() {
        let (sim, vfs) = sim();
        let p = Path::new("/vsim/a");
        let mut f = vfs.open_write(p, OpenMode::Truncate).unwrap();
        f.write_all(b"hello").unwrap();
        // Visible to live readers...
        assert_eq!(vfs.read(p).unwrap(), b"hello");
        // ...but lost at a Dropped crash (ops: create, write).
        let img = sim.crash_image(&CrashPoint {
            op: 2,
            pending: PendingMode::Dropped,
        });
        assert_eq!(img.files[p], b"");
        // Retained keeps it.
        let img = sim.crash_image(&CrashPoint {
            op: 2,
            pending: PendingMode::Retained,
        });
        assert_eq!(img.files[p], b"hello");
        // After sync it is durable even when pending drops.
        f.sync().unwrap();
        let img = sim.crash_image(&CrashPoint {
            op: 3,
            pending: PendingMode::Dropped,
        });
        assert_eq!(img.files[p], b"hello");
    }

    #[test]
    fn torn_write_lands_a_prefix() {
        let (sim, vfs) = sim();
        let p = Path::new("/vsim/t");
        let mut f = vfs.open_write(p, OpenMode::Truncate).unwrap();
        f.write_all(b"0123456789").unwrap();
        let img = sim.crash_image(&CrashPoint {
            op: 2,
            pending: PendingMode::Torn(4),
        });
        assert_eq!(img.files[p], b"0123");
    }

    #[test]
    fn metadata_is_durable_at_apply() {
        let (sim, vfs) = sim();
        vfs.create_dir_all(Path::new("/vsim/store")).unwrap();
        let tmp = Path::new("/vsim/store/x.tmp");
        let fin = Path::new("/vsim/store/x.ckpt");
        let mut f = vfs.open_write(tmp, OpenMode::Truncate).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_all().unwrap();
        drop(f);
        vfs.rename(tmp, fin).unwrap();
        // ops: mkdir, create, write, sync, rename — crash right after the
        // rename with pending dropped still sees the renamed, full file.
        let img = sim.crash_image(&CrashPoint {
            op: sim.mutations(),
            pending: PendingMode::Dropped,
        });
        assert_eq!(img.files[fin], b"data");
        assert!(!img.files.contains_key(tmp));
        assert!(img.dirs.contains(Path::new("/vsim/store")));
    }

    #[test]
    fn crash_image_before_rename_keeps_temp_only() {
        let (sim, vfs) = sim();
        let tmp = Path::new("/vsim/y.tmp");
        let fin = Path::new("/vsim/y.ckpt");
        let mut f = vfs.open_write(tmp, OpenMode::Truncate).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_all().unwrap();
        drop(f);
        vfs.rename(tmp, fin).unwrap();
        // One op earlier: the rename has not happened yet.
        let img = sim.crash_image(&CrashPoint {
            op: sim.mutations() - 1,
            pending: PendingMode::Dropped,
        });
        assert_eq!(img.files[tmp], b"data");
        assert!(!img.files.contains_key(fin));
    }

    #[test]
    fn marks_record_ack_points() {
        let (sim, vfs) = sim();
        let p = Path::new("/vsim/j");
        let mut f = vfs.open_write(p, OpenMode::Truncate).unwrap();
        f.write_all(b"r1\n").unwrap();
        f.sync().unwrap();
        vfs.mark("ack chip=1");
        f.write_all(b"r2\n").unwrap();
        assert_eq!(sim.marks(), vec![(3, "ack chip=1".to_string())]);
    }

    #[test]
    fn from_image_reboots_with_durable_content() {
        let (sim, vfs) = sim();
        vfs.create_dir_all(Path::new("/vsim/d")).unwrap();
        let p = Path::new("/vsim/d/f");
        let mut f = vfs.open_write(p, OpenMode::Truncate).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap();
        let img = sim.crash_image(&CrashPoint {
            op: sim.mutations(),
            pending: PendingMode::Dropped,
        });
        let rebooted = SimFs::from_image(&img);
        assert_eq!(rebooted.read(p).unwrap(), b"abc");
        assert_eq!(rebooted.mutations(), 0, "reboot starts a fresh recording");
        assert!(rebooted.exists(Path::new("/vsim/d")));
    }

    #[test]
    fn read_dir_sorted_lists_direct_files() {
        let (_sim, vfs) = sim();
        vfs.create_dir_all(Path::new("/vsim/s")).unwrap();
        for name in ["b.journal", "a.ckpt", "deep"] {
            let p = PathBuf::from("/vsim/s").join(name);
            vfs.open_write(&p, OpenMode::Truncate).unwrap();
        }
        let nested = Path::new("/vsim/s/sub/x");
        vfs.open_write(nested, OpenMode::Truncate).unwrap();
        let listing = vfs.read_dir_sorted(Path::new("/vsim/s")).unwrap();
        assert_eq!(
            listing,
            vec![
                PathBuf::from("/vsim/s/a.ckpt"),
                PathBuf::from("/vsim/s/b.journal"),
                PathBuf::from("/vsim/s/deep"),
            ]
        );
    }

    #[test]
    fn per_instance_faults_do_not_leak_across_instances() {
        let (_a, vfs_a) = sim();
        let (_b, vfs_b) = sim();
        vfs_a.faults().install(
            Path::new("/vsim"),
            fsfault::FsFaultPlan {
                enospc: 1,
                ..Default::default()
            },
        );
        let p = Path::new("/vsim/x");
        assert!(vfs_a.faults().write_fault(p, 8).is_err());
        assert!(
            vfs_b.faults().write_fault(p, 8).is_ok(),
            "instance B has its own empty fault state"
        );
    }

    #[test]
    fn std_fs_round_trips_and_lists() {
        let dir = std::env::temp_dir().join("vs-guard-vfs-stdfs");
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = std_fs();
        let p = dir.join("std-roundtrip.txt");
        let mut f = vfs.open_write(&p, OpenMode::Truncate).unwrap();
        f.write_all(b"one\n").unwrap();
        f.sync_all().unwrap();
        drop(f);
        let mut f = vfs.open_write(&p, OpenMode::Append).unwrap();
        f.write_all(b"two\n").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read_to_string(&p).unwrap(), "one\ntwo\n");
        assert!(vfs.read_dir_sorted(&dir).unwrap().contains(&p));
        assert!(vfs.temp_tag().is_none(), "production backend has no tag");
        let renamed = dir.join("std-renamed.txt");
        vfs.rename(&p, &renamed).unwrap();
        assert!(vfs.exists(&renamed) && !vfs.exists(&p));
        vfs.remove_file(&renamed).unwrap();
        assert!(!vfs.exists(&renamed));
    }
}
