//! Deterministic filesystem fault injection ("FaultyFs") for torture
//! testing the daemon tier.
//!
//! The durable-write paths guarded by this crate (journal appends,
//! checkpoint saves, postmortem bundles) consult a [`FaultState`] before
//! touching the disk. When no plan is installed the consultation is a
//! single relaxed atomic load — the production fast path. A torture
//! harness installs an [`FsFaultPlan`] scoped to a directory prefix, and
//! writes under that prefix then consume the plan's fault budget in a
//! fixed, deterministic order:
//!
//! 1. **ENOSPC** — the write fails up front with a "no space left on
//!    device" error; nothing reaches the file. Callers classify this by
//!    the error text and can park new work until space returns.
//! 2. **Short writes** — only a prefix of the payload reaches the file
//!    before the write fails, simulating a power-loss truncation point:
//!    the torn prefix *is* durable, exactly what a crash mid-`write(2)`
//!    leaves behind, so replay-side truncation detection gets exercised.
//! 3. **Fsync failures** — the data may be in the page cache but the
//!    durability barrier fails; acknowledgement must not be sent.
//!
//! Fault state is **per [`crate::vfs::Vfs`] instance**: every backend
//! owns a [`FaultState`], so plans against a simulated filesystem
//! compose with plans against the real one (and with each other). The
//! production [`crate::vfs::StdFs`] backend shares one process-global
//! state ([`global`]), which the deprecated free functions (kept for the
//! daemon's `--torture` wiring) also target.
//!
//! Injected faults are tallied in process-wide monotone counters
//! ([`counters`]) so the observability plane can prove every injected
//! fault was accounted for — tallies are global even though budgets are
//! per-instance, because Prometheus counters must never go backwards.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A counted budget of filesystem faults to inject, consumed in the
/// fixed order ENOSPC → short writes → fsync failures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsFaultPlan {
    /// Writes that fail up front with "no space left on device".
    pub enospc: u32,
    /// Writes that persist only a prefix (power-loss truncation).
    pub short_writes: u32,
    /// Durability barriers (fsync) that fail after the data is written.
    pub fsync_failures: u32,
}

impl FsFaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.enospc == 0 && self.short_writes == 0 && self.fsync_failures == 0
    }
}

/// Process-wide tallies of faults injected since startup (monotone, never
/// reset — suitable for Prometheus counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsFaultCounters {
    /// ENOSPC errors injected.
    pub enospc: u64,
    /// Short (torn) writes injected.
    pub short_writes: u64,
    /// Fsync failures injected.
    pub fsync_failures: u64,
}

impl FsFaultCounters {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.enospc + self.short_writes + self.fsync_failures
    }
}

/// What a hooked write should do, as decided by the installed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault: perform the write normally.
    Intact,
    /// Write only the first `n` bytes of the payload, then fail with
    /// [`short_write_error`]. The prefix should be made durable first —
    /// that is what a real power loss leaves behind.
    Short(usize),
}

static INJECTED_ENOSPC: AtomicU64 = AtomicU64::new(0);
static INJECTED_SHORT: AtomicU64 = AtomicU64::new(0);
static INJECTED_FSYNC: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct Scope {
    prefix: PathBuf,
    remaining: FsFaultPlan,
}

/// Per-filesystem-instance fault-injection state: at most one installed
/// [`FsFaultPlan`] scoped to a directory prefix.
///
/// With no plan installed, [`FaultState::write_fault`] and
/// [`FaultState::sync_fault`] are a single relaxed atomic load — safe on
/// the production hot path.
#[derive(Debug, Default)]
pub struct FaultState {
    active: AtomicBool,
    scope: Mutex<Option<Scope>>,
}

impl FaultState {
    /// A fresh state with no plan installed (const: usable in statics).
    pub const fn new() -> FaultState {
        FaultState {
            active: AtomicBool::new(false),
            scope: Mutex::new(None),
        }
    }

    /// Installs `plan` for every durable write whose target path starts
    /// with `prefix`, replacing any previously installed plan.
    pub fn install(&self, prefix: &Path, plan: FsFaultPlan) {
        let mut state = self.scope.lock().unwrap();
        *state = Some(Scope {
            prefix: prefix.to_path_buf(),
            remaining: plan,
        });
        self.active.store(!plan.is_empty(), Ordering::Release);
    }

    /// Removes the installed plan (idempotent).
    pub fn uninstall(&self) {
        let mut state = self.scope.lock().unwrap();
        *state = None;
        self.active.store(false, Ordering::Release);
    }

    /// The fault budget still unconsumed, if a plan is installed.
    pub fn remaining(&self) -> Option<FsFaultPlan> {
        self.scope.lock().unwrap().as_ref().map(|s| s.remaining)
    }

    /// Consults the plan before a durable write of `len` bytes to `path`.
    ///
    /// Returns `Err` for an injected ENOSPC (nothing must be written),
    /// `Ok(WriteFault::Short(n))` when only the first `n` bytes should
    /// land, and `Ok(WriteFault::Intact)` otherwise.
    pub fn write_fault(&self, path: &Path, len: usize) -> io::Result<WriteFault> {
        if !self.active.load(Ordering::Acquire) {
            return Ok(WriteFault::Intact);
        }
        let mut state = self.scope.lock().unwrap();
        let Some(scope) = state.as_mut() else {
            return Ok(WriteFault::Intact);
        };
        if !path.starts_with(&scope.prefix) {
            return Ok(WriteFault::Intact);
        }
        if scope.remaining.enospc > 0 {
            scope.remaining.enospc -= 1;
            INJECTED_ENOSPC.fetch_add(1, Ordering::Relaxed);
            return Err(enospc_error());
        }
        if scope.remaining.short_writes > 0 {
            scope.remaining.short_writes -= 1;
            INJECTED_SHORT.fetch_add(1, Ordering::Relaxed);
            return Ok(WriteFault::Short(len / 2));
        }
        Ok(WriteFault::Intact)
    }

    /// Consults the plan before an fsync of `path`; `Err` means the
    /// barrier failed and the caller must not acknowledge durability.
    pub fn sync_fault(&self, path: &Path) -> io::Result<()> {
        if !self.active.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut state = self.scope.lock().unwrap();
        let Some(scope) = state.as_mut() else {
            return Ok(());
        };
        if !path.starts_with(&scope.prefix) {
            return Ok(());
        }
        if scope.remaining.fsync_failures > 0 {
            scope.remaining.fsync_failures -= 1;
            INJECTED_FSYNC.fetch_add(1, Ordering::Relaxed);
            return Err(fsync_error());
        }
        Ok(())
    }
}

/// The fault state shared by every [`crate::vfs::StdFs`] handle — the
/// process-global slot the daemon's `--torture` flag installs into.
pub fn global() -> &'static FaultState {
    static GLOBAL: FaultState = FaultState::new();
    &GLOBAL
}

/// Uninstalls the global plan when dropped, so a panicking test cannot
/// leak faults into its neighbours.
#[derive(Debug)]
pub struct FsFaultGuard(());

impl Drop for FsFaultGuard {
    fn drop(&mut self) {
        global().uninstall();
    }
}

/// Installs `plan` on the process-global [`FaultState`] (the one
/// [`crate::vfs::StdFs`] consults).
#[deprecated(
    since = "0.1.0",
    note = "install on a specific `Vfs` instance via `vfs.faults().install(..)`; \
            the global slot only exists for `--torture` wiring"
)]
pub fn install(prefix: &Path, plan: FsFaultPlan) -> FsFaultGuard {
    global().install(prefix, plan);
    FsFaultGuard(())
}

/// Removes the global plan (idempotent).
#[deprecated(since = "0.1.0", note = "use `vfs.faults().uninstall()`")]
pub fn uninstall() {
    global().uninstall();
}

/// The global fault budget still unconsumed, if a plan is installed.
#[deprecated(since = "0.1.0", note = "use `vfs.faults().remaining()`")]
pub fn remaining() -> Option<FsFaultPlan> {
    global().remaining()
}

/// Consults the global plan before a durable write (see
/// [`FaultState::write_fault`]).
#[deprecated(since = "0.1.0", note = "use `vfs.faults().write_fault(..)`")]
pub fn write_fault(path: &Path, len: usize) -> io::Result<WriteFault> {
    global().write_fault(path, len)
}

/// Consults the global plan before an fsync (see
/// [`FaultState::sync_fault`]).
#[deprecated(since = "0.1.0", note = "use `vfs.faults().sync_fault(..)`")]
pub fn sync_fault(path: &Path) -> io::Result<()> {
    global().sync_fault(path)
}

/// Process-wide injected-fault tallies.
pub fn counters() -> FsFaultCounters {
    FsFaultCounters {
        enospc: INJECTED_ENOSPC.load(Ordering::Relaxed),
        short_writes: INJECTED_SHORT.load(Ordering::Relaxed),
        fsync_failures: INJECTED_FSYNC.load(Ordering::Relaxed),
    }
}

/// The error an injected ENOSPC surfaces as. The text deliberately
/// matches the kernel's, so classification by message ("no space left")
/// treats injected and real exhaustion identically.
pub fn enospc_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        "injected fault: no space left on device",
    )
}

/// The error a short (torn) write surfaces as after its durable prefix.
pub fn short_write_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::WriteZero,
        "injected fault: short write (power-loss truncation)",
    )
}

/// The error an injected fsync failure surfaces as.
pub fn fsync_error() -> io::Error {
    io::Error::other("injected fault: fsync failed")
}

/// Serializes unit tests that install plans on the global slot.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    // The global slot is process-wide; serialize the tests that use it.
    use super::TEST_LOCK as LOCK;

    #[test]
    fn inactive_hooks_are_transparent() {
        let state = FaultState::new();
        let p = Path::new("/tmp/anywhere");
        assert_eq!(state.write_fault(p, 100).unwrap(), WriteFault::Intact);
        assert!(state.sync_fault(p).is_ok());
    }

    #[test]
    fn budget_is_consumed_in_order_and_counted() {
        let state = FaultState::new();
        let before = counters();
        let scope = Path::new("/tmp/vs-fsfault-scope");
        state.install(
            scope,
            FsFaultPlan {
                enospc: 1,
                short_writes: 1,
                fsync_failures: 1,
            },
        );
        let target = scope.join("store/x.journal");
        // ENOSPC first…
        let err = state.write_fault(&target, 10).unwrap_err();
        assert!(err.to_string().contains("no space left"));
        // …then the short write…
        assert_eq!(
            state.write_fault(&target, 10).unwrap(),
            WriteFault::Short(5)
        );
        // …then the budget is dry.
        assert_eq!(state.write_fault(&target, 10).unwrap(), WriteFault::Intact);
        // Fsync budget is independent of the write budget.
        assert!(state.sync_fault(&target).is_err());
        assert!(state.sync_fault(&target).is_ok());
        let after = counters();
        assert_eq!(after.enospc - before.enospc, 1);
        assert_eq!(after.short_writes - before.short_writes, 1);
        assert_eq!(after.fsync_failures - before.fsync_failures, 1);
        assert_eq!(state.remaining(), Some(FsFaultPlan::default()));
    }

    #[test]
    fn paths_outside_the_scope_are_untouched() {
        let state = FaultState::new();
        state.install(
            Path::new("/tmp/vs-fsfault-only-here"),
            FsFaultPlan {
                enospc: 1,
                ..Default::default()
            },
        );
        let outside = Path::new("/tmp/elsewhere/file");
        assert_eq!(state.write_fault(outside, 10).unwrap(), WriteFault::Intact);
        assert!(state.sync_fault(outside).is_ok());
        // The budget was not consumed by the out-of-scope write.
        assert_eq!(
            state.remaining().unwrap(),
            FsFaultPlan {
                enospc: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn instances_are_independent() {
        let a = FaultState::new();
        let b = FaultState::new();
        let scope = Path::new("/tmp/vs-fsfault-indep");
        a.install(
            scope,
            FsFaultPlan {
                enospc: 1,
                ..Default::default()
            },
        );
        let target = scope.join("f");
        assert!(b.write_fault(&target, 4).is_ok(), "b has no plan");
        assert!(a.write_fault(&target, 4).is_err(), "a consumed its own");
        assert_eq!(b.remaining(), None);
    }

    #[test]
    #[allow(deprecated)]
    fn global_shim_targets_the_stdfs_state_and_uninstalls_on_drop() {
        let _l = LOCK.lock().unwrap();
        let scope = Path::new("/tmp/vs-fsfault-global");
        {
            let _g = install(
                scope,
                FsFaultPlan {
                    enospc: 2,
                    ..Default::default()
                },
            );
            // The shim and the StdFs-shared state are the same slot.
            assert!(global().write_fault(&scope.join("f"), 4).is_err());
            assert_eq!(
                remaining(),
                Some(FsFaultPlan {
                    enospc: 1,
                    ..Default::default()
                })
            );
        }
        assert_eq!(global().remaining(), None, "guard uninstalls on drop");
        assert_eq!(
            write_fault(&scope.join("f"), 4).unwrap(),
            WriteFault::Intact
        );
        assert!(sync_fault(&scope.join("f")).is_ok());
        uninstall(); // idempotent
    }
}
