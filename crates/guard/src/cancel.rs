//! Cooperative cancellation: cloneable atomic tokens with parent links,
//! and a Ctrl-C hook that cancels a token instead of killing the process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// A token's shared state: its own flag plus an optional parent chain.
#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    parent: Option<CancelToken>,
}

/// A cooperative cancellation token.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// flag. Tokens form a hierarchy via [`CancelToken::child`]: a child is
/// cancelled when *either* its own flag or any ancestor's flag is set, so
/// one run-wide token (Ctrl-C) governs every per-job token while the
/// watchdog can still cancel a single hung job without touching the rest.
///
/// Cancellation is one-way and sticky: there is no reset. Consumers poll
/// [`CancelToken::is_cancelled`] at their natural check points (the fleet
/// worker loop between claims, the speculation run between slices); the
/// token never preempts anything, which is exactly why a cancelled run can
/// finish its in-flight writes and exit with consistent state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, uncancelled token with no parent.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                parent: None,
            }),
        }
    }

    /// A child token: cancelled when its own flag *or* any ancestor's flag
    /// is set. Cancelling the child leaves the parent (and siblings)
    /// untouched.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Sets this token's flag. Every clone — and every descendant — now
    /// reports cancelled.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once this token or any ancestor has been cancelled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        match &self.inner.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// True when this token's *own* flag is set (ignoring ancestors) —
    /// how a runner tells "this job was cancelled individually" apart
    /// from "the whole run is being torn down".
    #[inline]
    pub fn is_cancelled_directly(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }
}

/// The token the SIGINT handler cancels. Set once by [`install_ctrl_c`];
/// the handler itself only performs atomic loads/stores (async-signal
/// safe: no allocation, no locking).
static CTRL_C_TOKEN: OnceLock<CancelToken> = OnceLock::new();

#[cfg(unix)]
mod sigint {
    use super::CTRL_C_TOKEN;

    const SIGINT: i32 = 2;
    /// `SIG_DFL` — the platform default disposition (terminate).
    const SIG_DFL: usize = 0;

    // Minimal libc binding, declared locally so the workspace stays free
    // of external crates. `signal(2)` is in every libc we link against.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// First Ctrl-C: cancel the registered token and fall back to the
    /// default disposition, so a second Ctrl-C terminates immediately
    /// (the escape hatch when a graceful wind-down itself wedges).
    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = CTRL_C_TOKEN.get() {
            token.cancel();
        }
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

/// Routes the first Ctrl-C (SIGINT) to `token.cancel()` instead of
/// process death; a second Ctrl-C terminates immediately. Returns `false`
/// (and changes nothing) if a token was already installed or the platform
/// has no signal support.
///
/// The handler holds no locks and allocates nothing — it performs exactly
/// one atomic store — so it is safe to run at any interruption point.
pub fn install_ctrl_c(token: &CancelToken) -> bool {
    if CTRL_C_TOKEN.set(token.clone()).is_err() {
        return false;
    }
    #[cfg(unix)]
    {
        sigint::install();
        true
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.is_cancelled_directly());
    }

    #[test]
    fn children_observe_ancestors_but_not_vice_versa() {
        let run = CancelToken::new();
        let job_a = run.child();
        let job_b = run.child();
        let grandchild = job_a.child();

        job_a.cancel();
        assert!(job_a.is_cancelled());
        assert!(grandchild.is_cancelled(), "descendants see the cut");
        assert!(!job_b.is_cancelled(), "siblings are untouched");
        assert!(!run.is_cancelled(), "parents are untouched");
        assert!(!grandchild.is_cancelled_directly());

        run.cancel();
        assert!(job_b.is_cancelled(), "run-wide cancel reaches every child");
        assert!(!job_b.is_cancelled_directly());
    }

    #[test]
    fn tokens_cross_threads() {
        let token = CancelToken::new();
        let child = token.child();
        let waiter = std::thread::spawn(move || {
            while !child.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn ctrl_c_installs_at_most_once() {
        let token = CancelToken::new();
        let first = install_ctrl_c(&token);
        // Whatever the platform answered first, a second registration is
        // always refused: the process-wide slot is taken.
        assert!(!install_ctrl_c(&CancelToken::new()));
        if first {
            assert!(!token.is_cancelled(), "installation must not cancel");
        }
    }
}
