//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), hand-rolled because the
//! workspace builds offline with no external crates.

/// The reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 checksum of `bytes` (init `0xFFFF_FFFF`, final xor, i.e.
/// exactly what `zlib.crc32` / `cksum -o 3` compute).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC catalogue's check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base = crc32(b"chip 3 seed=0000000000000003");
        let mut bytes = b"chip 3 seed=0000000000000003".to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x01;
            assert_ne!(crc32(&bytes), base, "flip at byte {i} must change the crc");
            bytes[i] ^= 0x01;
        }
        assert_eq!(crc32(&bytes), base);
    }
}
