//! Crash-safe append-only journaling: CRC32-framed records, fsynced per
//! append.
//!
//! A journal is a line-oriented file. Header lines (format magic,
//! fingerprints) are written raw by the owner; every *record* is framed as
//!
//! ```text
//! <crc32 of payload, 8 hex digits> <payload>
//! ```
//!
//! and the writer flushes **and fsyncs** after each record. The
//! consequence is the write-ahead property long sweeps need: a SIGKILL at
//! any instant loses at most the record being appended, and on replay that
//! record is *detected* — [`unframe`] reports it as truncated or
//! corrupt — rather than silently mis-parsed.

use crate::crc32::crc32;
use crate::vfs::{self, OpenMode, VfsFile, VfsHandle};
use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Why a framed journal line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line is too short to carry a frame (an interrupted write).
    Truncated,
    /// The payload does not match its checksum (bit rot, or a write torn
    /// mid-line).
    BadCrc {
        /// The checksum the frame claims.
        expected: u32,
        /// The checksum of the payload actually present.
        found: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated journal record"),
            FrameError::BadCrc { expected, found } => write!(
                f,
                "journal record fails its checksum (recorded {expected:08x}, computed {found:08x})"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Frames one payload line: `"<crc32:08x> <payload>"`.
///
/// The payload must not contain a newline (records are line-delimited).
pub fn frame(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "journal payloads are single lines");
    format!("{:08x} {payload}", crc32(payload.as_bytes()))
}

/// Decodes a framed line back to its payload, verifying the checksum.
pub fn unframe(line: &str) -> Result<&str, FrameError> {
    let (crc_hex, payload) = line.split_at_checked(8).ok_or(FrameError::Truncated)?;
    let payload = payload.strip_prefix(' ').ok_or(FrameError::Truncated)?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| FrameError::Truncated)?;
    let found = crc32(payload.as_bytes());
    if expected != found {
        return Err(FrameError::BadCrc { expected, found });
    }
    Ok(payload)
}

/// An append-only journal file: every append is framed, flushed, and
/// fsynced before the call returns, so acknowledged records survive
/// SIGKILL.
pub struct JournalWriter {
    path: PathBuf,
    vfs: VfsHandle,
    file: Box<dyn VfsFile>,
}

impl fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalWriter")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` on the real filesystem
    /// and durably writes the given raw header lines. See
    /// [`JournalWriter::create_on`].
    pub fn create(path: &Path, header: &[&str]) -> io::Result<JournalWriter> {
        JournalWriter::create_on(&vfs::std_fs(), path, header)
    }

    /// Creates (truncating) a journal at `path` on `vfs` and durably
    /// writes the given raw header lines. Under an installed
    /// [`crate::fsfault`] plan, creation consumes ENOSPC budget *before*
    /// touching the file — a store that is out of space cannot start a
    /// new journal, and the caller sees the failure up front rather than
    /// mid-run.
    pub fn create_on(vfs: &VfsHandle, path: &Path, header: &[&str]) -> io::Result<JournalWriter> {
        let header_len: usize = header.iter().map(|l| l.len() + 1).sum();
        if let crate::fsfault::WriteFault::Short(_) = vfs.faults().write_fault(path, header_len)? {
            // A torn header leaves no usable journal; surface it as the
            // creation failing outright.
            return Err(crate::fsfault::short_write_error());
        }
        let file = vfs.open_write(path, OpenMode::Truncate)?;
        let mut writer = JournalWriter {
            path: path.to_path_buf(),
            vfs: VfsHandle::clone(vfs),
            file,
        };
        for line in header {
            writer.file.write_all(line.as_bytes())?;
            writer.file.write_all(b"\n")?;
        }
        writer.sync()?;
        Ok(writer)
    }

    /// Opens an existing journal on the real filesystem for appending.
    /// See [`JournalWriter::open_append_on`].
    pub fn open_append(path: &Path) -> io::Result<JournalWriter> {
        JournalWriter::open_append_on(&vfs::std_fs(), path)
    }

    /// Opens an existing journal on `vfs` for appending (records go
    /// after whatever is already there). Consumes injected ENOSPC budget
    /// like [`create_on`](JournalWriter::create_on); reopening on a full
    /// disk fails.
    pub fn open_append_on(vfs: &VfsHandle, path: &Path) -> io::Result<JournalWriter> {
        if let crate::fsfault::WriteFault::Short(_) = vfs.faults().write_fault(path, 1)? {
            return Err(crate::fsfault::short_write_error());
        }
        let file = vfs.open_write(path, OpenMode::Append)?;
        Ok(JournalWriter {
            path: path.to_path_buf(),
            vfs: VfsHandle::clone(vfs),
            file,
        })
    }

    /// Appends one framed record and fsyncs. When this returns `Ok`, the
    /// record is durable. Under an installed [`crate::fsfault`] plan the
    /// append can fail with injected ENOSPC (nothing written), a torn
    /// write (a durable prefix of the record — exactly what a power loss
    /// mid-write leaves), or an fsync failure (record written but not
    /// acknowledged durable).
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        let mut line = frame(payload);
        line.push('\n');
        let bytes = line.as_bytes();
        match self.vfs.faults().write_fault(&self.path, bytes.len())? {
            crate::fsfault::WriteFault::Intact => self.file.write_all(bytes)?,
            crate::fsfault::WriteFault::Short(n) => {
                self.file.write_all(&bytes[..n])?;
                // Make the torn prefix durable, as a real crash would.
                self.file.flush()?;
                let _ = self.file.sync();
                return Err(crate::fsfault::short_write_error());
            }
        }
        self.sync()
    }

    /// Flushes and fsyncs the underlying file.
    fn sync(&mut self) -> io::Result<()> {
        self.vfs.faults().sync_fault(&self.path)?;
        self.file.flush()?;
        self.file.sync()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The filesystem this journal writes to (used by owners to drop
    /// acknowledgement [`crate::vfs::Vfs::mark`]s after durable appends).
    pub fn vfs(&self) -> &VfsHandle {
        &self.vfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-guard-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn frame_round_trips() {
        for payload in ["", "chip 3 seed=03", "x".repeat(4096).as_str()] {
            assert_eq!(unframe(&frame(payload)), Ok(payload));
        }
    }

    #[test]
    fn corruption_is_typed_not_silent() {
        let line = frame("chip 5 es=deadbeef");
        // Flip one payload byte: BadCrc.
        let mut corrupt = line.clone().into_bytes();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x20;
        let corrupt = String::from_utf8(corrupt).unwrap();
        assert!(matches!(unframe(&corrupt), Err(FrameError::BadCrc { .. })));
        // Chop the line anywhere inside the frame header: Truncated.
        assert_eq!(unframe(&line[..4]), Err(FrameError::Truncated));
        assert_eq!(unframe(""), Err(FrameError::Truncated));
        // Chop inside the payload: the crc no longer matches.
        assert!(unframe(&line[..line.len() - 3]).is_err());
    }

    #[test]
    fn writer_appends_durable_records_after_header() {
        let path = scratch("writer.journal");
        let mut w = JournalWriter::create(&path, &["magic v1", "fingerprint 00ff"]).unwrap();
        w.append("record one").unwrap();
        w.append("record two").unwrap();
        drop(w);

        // Re-open and append more — nothing already written is disturbed.
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append("record three").unwrap();
        assert_eq!(w.path(), path.as_path());
        drop(w);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "magic v1");
        assert_eq!(lines[1], "fingerprint 00ff");
        assert_eq!(unframe(lines[2]), Ok("record one"));
        assert_eq!(unframe(lines[3]), Ok("record two"));
        assert_eq!(unframe(lines[4]), Ok("record three"));
    }

    #[test]
    #[allow(deprecated)]
    fn injected_torn_append_is_durable_prefix_and_detected_on_replay() {
        let _l = crate::fsfault::TEST_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("vs-guard-journal-fsfault");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        let mut w = JournalWriter::create(&path, &["magic v1"]).unwrap();
        w.append("record one").unwrap();

        let _g = crate::fsfault::install(
            &dir,
            crate::fsfault::FsFaultPlan {
                short_writes: 1,
                ..Default::default()
            },
        );
        let err = w.append("record two").unwrap_err();
        assert!(err.to_string().contains("short write"));
        drop(w);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header, good record, torn prefix");
        assert_eq!(unframe(lines[1]), Ok("record one"));
        assert!(
            unframe(lines[2]).is_err(),
            "the torn record must be detected, not silently parsed"
        );
    }
}
