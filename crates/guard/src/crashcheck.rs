//! Exhaustive crash-point exploration over a recorded [`SimFs`] workload.
//!
//! A crash-consistency check has three parts: *record* a workload once on
//! a [`SimFs`] (counting its N mutations), *enumerate* every crash point
//! — each operation index under each [`PendingMode`], plus torn-prefix
//! variants of every write — and *check* each point by materializing the
//! image, rebooting the recovery path on it, and testing invariants. This
//! module owns the enumeration and the deterministic parallel driver; the
//! invariant checker itself is a caller-supplied closure, because only
//! the caller knows what "recovery" means for its store.
//!
//! Determinism contract: [`explore`] returns findings sorted by crash
//! point index regardless of worker count, so a violating run prints
//! byte-identical output on 1 or 16 workers — the property the
//! minimizer's reproducers rely on.

use crate::vfs::SimFs;
pub use crate::vfs::{CrashPoint, PendingMode};
use std::sync::Mutex;

/// One invariant violation at one crash point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashFinding {
    /// Index of the point in the enumerated sequence (stable across
    /// worker counts).
    pub index: usize,
    /// The crash point that violated.
    pub point: CrashPoint,
    /// Deterministic description of the violated invariant.
    pub violation: String,
}

/// Enumerates every crash point of a recorded workload.
///
/// For each operation `k` in `1..=N`: the image with pending data
/// dropped, the image with pending data retained, and — when operation
/// `k` is a write of `L ≥ 2` bytes — torn variants landing the first
/// `1`, `L/2`, and `L-1` bytes (deduplicated, ascending). Index 0 is the
/// pristine pre-workload image.
pub fn enumerate(sim: &SimFs) -> Vec<CrashPoint> {
    let ops = sim.ops();
    let mut points = vec![CrashPoint {
        op: 0,
        pending: PendingMode::Dropped,
    }];
    for (i, op) in ops.iter().enumerate() {
        let k = (i + 1) as u64;
        points.push(CrashPoint {
            op: k,
            pending: PendingMode::Dropped,
        });
        points.push(CrashPoint {
            op: k,
            pending: PendingMode::Retained,
        });
        if let Some(len) = op.write_len() {
            let mut torn: Vec<usize> = [1, len / 2, len.saturating_sub(1)]
                .into_iter()
                .filter(|&j| j >= 1 && j < len)
                .collect();
            torn.sort_unstable();
            torn.dedup();
            for j in torn {
                points.push(CrashPoint {
                    op: k,
                    pending: PendingMode::Torn(j),
                });
            }
        }
    }
    points
}

/// Checks every crash point with `check` across `workers` threads.
///
/// `check` returns `None` when all invariants hold at a point and
/// `Some(violation)` otherwise. Work is striped by index (worker `w`
/// takes points `w, w+workers, …`) and findings are merged and sorted by
/// index, so the result — and anything printed from it — is identical
/// for any worker count.
pub fn explore<F>(points: &[CrashPoint], workers: usize, check: F) -> Vec<CrashFinding>
where
    F: Fn(&CrashPoint) -> Option<String> + Sync,
{
    let workers = workers.max(1).min(points.len().max(1));
    let findings: Mutex<Vec<CrashFinding>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let check = &check;
            let findings = &findings;
            scope.spawn(move || {
                let mut local = Vec::new();
                for (index, point) in points.iter().enumerate().skip(w).step_by(workers) {
                    if let Some(violation) = check(point) {
                        local.push(CrashFinding {
                            index,
                            point: *point,
                            violation,
                        });
                    }
                }
                findings.lock().unwrap().extend(local);
            });
        }
    });
    let mut findings = findings.into_inner().unwrap();
    findings.sort_by_key(|f| f.index);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{OpenMode, VfsHandle};
    use std::io::Write as _;
    use std::path::Path;
    use std::sync::Arc;

    fn recorded_sim() -> Arc<SimFs> {
        let sim = Arc::new(SimFs::new());
        let vfs: VfsHandle = Arc::clone(&sim) as VfsHandle;
        vfs.create_dir_all(Path::new("/vsim/s")).unwrap();
        let mut f = vfs
            .open_write(Path::new("/vsim/s/f"), OpenMode::Truncate)
            .unwrap();
        f.write_all(b"0123456789").unwrap();
        f.sync().unwrap();
        sim
    }

    #[test]
    fn enumerate_covers_all_ops_and_torn_prefixes() {
        let sim = recorded_sim();
        // ops: mkdir, create, write(10B), sync
        assert_eq!(sim.mutations(), 4);
        let points = enumerate(&sim);
        // 1 pristine + 4*2 modes + torn {1,5,9} on the write.
        assert_eq!(points.len(), 1 + 8 + 3);
        assert_eq!(
            points[0],
            CrashPoint {
                op: 0,
                pending: PendingMode::Dropped
            }
        );
        let torn: Vec<_> = points
            .iter()
            .filter(|p| matches!(p.pending, PendingMode::Torn(_)))
            .collect();
        assert_eq!(torn.len(), 3);
        assert!(torn.iter().all(|p| p.op == 3), "torn only on the write op");
    }

    #[test]
    fn explore_is_deterministic_across_worker_counts() {
        let sim = recorded_sim();
        let points = enumerate(&sim);
        // A synthetic invariant that "fails" on every dropped-pending
        // image where the file is missing or empty.
        let check = |point: &CrashPoint| {
            let img = sim.crash_image(point);
            match img.files.get(Path::new("/vsim/s/f")) {
                Some(bytes) if !bytes.is_empty() => None,
                _ => Some(format!("file empty or missing at {point}")),
            }
        };
        let one = explore(&points, 1, check);
        let four = explore(&points, 4, check);
        assert_eq!(one, four, "findings identical for 1 vs 4 workers");
        assert!(!one.is_empty());
        assert!(one.windows(2).all(|w| w[0].index < w[1].index));
    }
}
