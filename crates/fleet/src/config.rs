//! Fleet configuration: what population to simulate and how.

use vs_faults::FaultPlan;
use vs_platform::characterize::CharacterizeOptions;
use vs_platform::ChipConfig;
use vs_spec::{ControllerConfig, SoftwareConfig};
use vs_types::rng::splitmix64;
use vs_types::{ChipId, ConfigError, FleetSeed, SimTime};
use vs_workload::AssignmentPolicy;

/// Which speculation mechanism every chip of the fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerVariant {
    /// The paper's hardware ECC-monitor controller (§III).
    Hardware,
    /// The firmware/software speculation baseline (prior work, §V-F).
    Software,
    /// No speculation: fixed nominal voltage (the energy denominator).
    Baseline,
}

impl ControllerVariant {
    /// Short label used in reports and checkpoints.
    pub fn label(self) -> &'static str {
        match self {
            ControllerVariant::Hardware => "hw",
            ControllerVariant::Software => "sw",
            ControllerVariant::Baseline => "baseline",
        }
    }

    /// Parses a label produced by [`ControllerVariant::label`].
    pub fn parse(s: &str) -> Option<ControllerVariant> {
        match s {
            "hw" => Some(ControllerVariant::Hardware),
            "sw" => Some(ControllerVariant::Software),
            "baseline" => Some(ControllerVariant::Baseline),
            _ => None,
        }
    }
}

/// How per-core voltage margins are characterized for each die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarginsMode {
    /// Oracle margins straight from the silicon model
    /// ([`vs_platform::characterize::analytic_core_margins`]) —
    /// milliseconds per die; the fleet default.
    Analytic,
    /// Measured margins via the faithful voltage-stepped stress sweeps
    /// (seconds per core — reserve for small fleets).
    Measured(CharacterizeOptions),
}

/// Full description of one fleet experiment.
///
/// A fleet is `num_chips` independent dies. Die `i`'s silicon is derived
/// purely from `(seed, wafer, i)`; its workloads purely from the
/// assignment policy and the same key. Nothing depends on worker count or
/// scheduling, which is what makes fleet results bit-identical under any
/// sharding (asserted by `tests/determinism.rs`).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed: one number determines the whole population.
    pub seed: FleetSeed,
    /// Number of chips to simulate.
    pub num_chips: u64,
    /// Process-variation re-draw generation. Bumping this re-draws every
    /// die's variation map (a fresh wafer) while keeping chip ids, counts
    /// and workload policy fixed — the knob population-robustness
    /// experiments turn.
    pub wafer: u64,
    /// Template chip configuration; the per-die `seed` field is
    /// overwritten for each chip.
    pub base_chip: ChipConfig,
    /// Which speculation mechanism the fleet runs.
    pub variant: ControllerVariant,
    /// Hardware-controller tunables (used by the `Hardware` variant).
    pub controller: ControllerConfig,
    /// Firmware-baseline tunables (used by the `Software` variant).
    pub software: SoftwareConfig,
    /// How workloads are assigned to cores across the population.
    pub assignment: AssignmentPolicy,
    /// Simulated duration of each chip's speculation run.
    pub run_duration: SimTime,
    /// How margins are characterized.
    pub margins: MarginsMode,
    /// Ticks per resumable-run slice (granularity of progress reporting;
    /// does not affect results).
    pub slice_ticks: u64,
    /// Faults to inject across the population (empty by default). Chip
    /// events are replayed inside each chip's speculation run; worker
    /// panics are consumed by the [`FleetRunner`](crate::FleetRunner)
    /// retry machinery. Part of the fingerprint when non-empty, so a
    /// faulted fleet never resumes a clean checkpoint (or vice versa).
    pub faults: FaultPlan,
}

impl FleetConfig {
    /// A fleet of `num_chips` reference dies with paper-faithful defaults:
    /// 8-core chips, hardware controller, suites split round-robin across
    /// the population, analytic margins.
    pub fn new(seed: FleetSeed, num_chips: u64) -> FleetConfig {
        FleetConfig {
            seed,
            num_chips,
            wafer: 0,
            base_chip: ChipConfig::low_voltage(0),
            variant: ControllerVariant::Hardware,
            controller: ControllerConfig::default(),
            software: SoftwareConfig::default(),
            assignment: AssignmentPolicy::RoundRobinSuites {
                per_benchmark: SimTime::from_secs(1),
            },
            run_duration: SimTime::from_secs(4),
            margins: MarginsMode::Analytic,
            slice_ticks: 1000,
            faults: FaultPlan::new(),
        }
    }

    /// A reduced-cost fleet for tests: 2-core dies, short runs.
    pub fn small(seed: FleetSeed, num_chips: u64) -> FleetConfig {
        let mut config = FleetConfig::new(seed, num_chips);
        config.base_chip.num_cores = 2;
        config.base_chip.weak_lines_tracked = 8;
        config.run_duration = SimTime::from_secs(2);
        config
    }

    /// The seed the population is actually drawn from: the master seed
    /// re-keyed by the wafer generation (generation 0 is the master seed
    /// itself).
    pub fn effective_seed(&self) -> FleetSeed {
        if self.wafer == 0 {
            self.seed
        } else {
            FleetSeed(splitmix64(
                self.seed.0 ^ splitmix64(0x57AF_E800 ^ self.wafer),
            ))
        }
    }

    /// The die seed of one chip.
    pub fn die_seed(&self, chip: ChipId) -> u64 {
        self.effective_seed().chip_seed(chip)
    }

    /// The full chip configuration of one die.
    pub fn chip_config(&self, chip: ChipId) -> ChipConfig {
        ChipConfig {
            seed: self.die_seed(chip),
            ..self.base_chip.clone()
        }
    }

    /// A stable fingerprint of everything that determines per-chip
    /// results. Checkpoints record it; resuming under a config with a
    /// different fingerprint is refused (the saved summaries would be
    /// silently wrong).
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitmix64(0xF1EE_F1EE ^ self.seed.0);
        let mut mix = |v: u64| h = splitmix64(h ^ v);
        mix(self.wafer);
        mix(self.base_chip.seed); // template seed is ignored per-die
        mix(self.base_chip.num_cores as u64);
        mix(self.base_chip.cores_per_domain as u64);
        mix(self.base_chip.weak_lines_tracked as u64);
        mix(self.base_chip.tick.as_micros());
        mix(match self.base_chip.mode {
            vs_types::VddMode::LowVoltage => 1,
            vs_types::VddMode::Nominal => 2,
        });
        mix(self
            .variant
            .label()
            .bytes()
            .fold(0u64, |a, b| splitmix64(a ^ u64::from(b))));
        mix(self.run_duration.as_micros());
        mix(match self.margins {
            MarginsMode::Analytic => 1,
            MarginsMode::Measured(opts) => {
                splitmix64(2 ^ opts.window.as_micros() ^ (opts.step.0 as u64) << 32)
            }
        });
        mix(self
            .assignment
            .label()
            .bytes()
            .fold(0u64, |a, b| splitmix64(a ^ u64::from(b))));
        // Only mixed when faults are present, so fingerprints of clean
        // fleets are unchanged from before fault injection existed.
        if !self.faults.is_empty() {
            mix(self.faults.digest());
        }
        h
    }

    /// The sentinel envelope matching this fleet: regulator clamps from
    /// the base chip's operating point, band ceiling from the controller,
    /// rollback budget from the default recovery policy the chip jobs run
    /// under. Mode defaults to record-and-continue; callers flip it before
    /// handing the config to [`FleetRunner::with_sentinel`](crate::FleetRunner::with_sentinel).
    pub fn sentinel_config(&self) -> vs_sentinel::SentinelConfig {
        let (floor, max) = self.base_chip.regulator_range();
        vs_sentinel::SentinelConfig {
            floor_mv: floor.0,
            max_mv: max.0,
            ceiling: self.controller.ceiling,
            max_rollbacks_per_domain: vs_faults::RecoveryPolicy::default().max_rollbacks_per_domain,
            ..vs_sentinel::SentinelConfig::low_voltage()
        }
    }

    /// Validates internal consistency, naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_chips == 0 {
            return Err(ConfigError::non_positive("num_chips"));
        }
        if self.slice_ticks == 0 {
            return Err(ConfigError::non_positive("slice_ticks"));
        }
        if self.run_duration <= SimTime::ZERO {
            return Err(ConfigError::non_positive("run_duration"));
        }
        self.base_chip.validate()?;
        self.controller.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(FleetConfig::new(FleetSeed(1), 16).validate(), Ok(()));
        assert_eq!(FleetConfig::small(FleetSeed(1), 4).validate(), Ok(()));
    }

    #[test]
    fn bad_configs_name_the_field() {
        let empty = FleetConfig {
            num_chips: 0,
            ..FleetConfig::small(FleetSeed(1), 4)
        };
        assert_eq!(empty.validate().unwrap_err().field(), "num_chips");
        let frozen = FleetConfig {
            run_duration: SimTime::ZERO,
            ..FleetConfig::small(FleetSeed(1), 4)
        };
        assert_eq!(frozen.validate().unwrap_err().field(), "run_duration");
    }

    #[test]
    fn die_seeds_are_distinct_and_stable() {
        let cfg = FleetConfig::new(FleetSeed(5), 8);
        let again = FleetConfig::new(FleetSeed(5), 8);
        for i in 0..8 {
            assert_eq!(cfg.die_seed(ChipId(i)), again.die_seed(ChipId(i)));
            for j in (i + 1)..8 {
                assert_ne!(cfg.die_seed(ChipId(i)), cfg.die_seed(ChipId(j)));
            }
        }
    }

    #[test]
    fn wafer_redraw_changes_every_die_but_generation_zero_is_master() {
        let base = FleetConfig::new(FleetSeed(5), 8);
        let redrawn = FleetConfig {
            wafer: 1,
            ..FleetConfig::new(FleetSeed(5), 8)
        };
        assert_eq!(base.effective_seed(), FleetSeed(5));
        for i in 0..8 {
            assert_ne!(base.die_seed(ChipId(i)), redrawn.die_seed(ChipId(i)));
        }
    }

    #[test]
    fn fingerprint_tracks_result_relevant_fields() {
        let a = FleetConfig::new(FleetSeed(5), 8);
        let same = FleetConfig::new(FleetSeed(5), 8);
        assert_eq!(a.fingerprint(), same.fingerprint());
        let other_seed = FleetConfig::new(FleetSeed(6), 8);
        assert_ne!(a.fingerprint(), other_seed.fingerprint());
        let other_wafer = FleetConfig {
            wafer: 3,
            ..FleetConfig::new(FleetSeed(5), 8)
        };
        assert_ne!(a.fingerprint(), other_wafer.fingerprint());
        let other_variant = FleetConfig {
            variant: ControllerVariant::Software,
            ..FleetConfig::new(FleetSeed(5), 8)
        };
        assert_ne!(a.fingerprint(), other_variant.fingerprint());
        // Chip count is deliberately NOT in the fingerprint: growing a
        // fleet resumes cleanly from a smaller run's checkpoint.
        let more_chips = FleetConfig::new(FleetSeed(5), 32);
        assert_eq!(a.fingerprint(), more_chips.fingerprint());
        // Injected faults change results, so they change the fingerprint;
        // an empty plan leaves clean-fleet fingerprints untouched.
        let faulted = FleetConfig {
            faults: FaultPlan::new().due_at(SimTime::from_millis(5), vs_types::DomainId(0)),
            ..FleetConfig::new(FleetSeed(5), 8)
        };
        assert_ne!(a.fingerprint(), faulted.fingerprint());
        let empty_plan = FleetConfig {
            faults: FaultPlan::new(),
            ..FleetConfig::new(FleetSeed(5), 8)
        };
        assert_eq!(a.fingerprint(), empty_plan.fingerprint());
    }

    #[test]
    fn variant_labels_round_trip() {
        for v in [
            ControllerVariant::Hardware,
            ControllerVariant::Software,
            ControllerVariant::Baseline,
        ] {
            assert_eq!(ControllerVariant::parse(v.label()), Some(v));
        }
        assert_eq!(ControllerVariant::parse("nope"), None);
    }
}
