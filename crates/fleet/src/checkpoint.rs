//! Checkpoint/resume for long fleet sweeps.
//!
//! The checkpoint is a line-oriented text file: a header binding the file
//! to a [`FleetConfig::fingerprint`](crate::FleetConfig::fingerprint),
//! then one line per completed chip. Floating-point fields are stored as
//! their exact IEEE-754 bit patterns (16 hex digits), so a resumed fleet
//! aggregates to *bit-identical* statistics — text round-tripping loses
//! nothing.
//!
//! Saves are atomic and durable: the checkpoint is written to a uniquely
//! named sibling temp file (pid + counter, so concurrent savers to
//! sibling paths never collide), fsynced, renamed over the target, and
//! the parent directory is fsynced so the rename itself survives a crash.
//! A sweep killed mid-save leaves the previous checkpoint intact.
//!
//! Each record carries an optional trailing `crc=` field (CRC-32 of the
//! record body). Loading is deliberately lenient about *records* —
//! a truncated final line, a record failing its checksum, or a malformed
//! record is skipped with a typed [`CheckpointWarning`], never a panic —
//! while *header* problems (wrong magic, wrong fingerprint) stay hard
//! errors, because they mean the whole file is the wrong file. Records
//! written before the `crc=` field existed still load.

use crate::summary::{ChipSummary, CoreMarginSummary};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use vs_guard::crc32;
use vs_guard::vfs::{self, OpenMode, VfsHandle};
use vs_types::ChipId;

/// File-format magic: first line of every checkpoint.
pub const MAGIC: &str = "voltspec-fleet-checkpoint v1";

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file is not a v1 fleet checkpoint, or a record is malformed.
    Format(String),
    /// The checkpoint belongs to a different fleet configuration.
    FingerprintMismatch {
        /// Fingerprint of the config attempting to resume.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different fleet config \
                 (expected fingerprint {expected:016x}, file has {found:016x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// Why one chip record was skipped during a load. Record-level damage is
/// never fatal: the rest of the checkpoint still resumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointWarning {
    /// The record is missing trailing fields (an interrupted final write).
    Truncated,
    /// The record fails its `crc=` checksum.
    BadCrc {
        /// The checksum the record claims.
        expected: u32,
        /// The checksum of the record body actually present.
        found: u32,
    },
    /// The record does not parse as a chip record.
    Malformed(String),
}

impl fmt::Display for CheckpointWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointWarning::Truncated => write!(f, "truncated record"),
            CheckpointWarning::BadCrc { expected, found } => write!(
                f,
                "record fails its checksum (recorded {expected:08x}, computed {found:08x})"
            ),
            CheckpointWarning::Malformed(msg) => write!(f, "malformed record: {msg}"),
        }
    }
}

/// The result of a lenient [`load_report`]: everything that decoded, plus
/// a typed warning per skipped record (`(1-based line number, warning)`).
#[derive(Debug)]
pub struct CheckpointLoad {
    /// The summaries that decoded cleanly, in chip-id order.
    pub summaries: Vec<ChipSummary>,
    /// One entry per skipped record.
    pub warnings: Vec<(usize, CheckpointWarning)>,
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn malformed(msg: String) -> CheckpointWarning {
    CheckpointWarning::Malformed(msg)
}

fn parse_f64_hex(s: &str) -> Result<f64, CheckpointWarning> {
    // Exactly 16 hex digits: a shorter string is a truncated write, and
    // accepting it would silently mis-parse the value.
    if s.len() != 16 {
        return Err(malformed(format!("bad f64 bit pattern {s:?}")));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| malformed(format!("bad f64 bit pattern {s:?}")))
}

fn parse_u64(s: &str) -> Result<u64, CheckpointWarning> {
    s.parse()
        .map_err(|_| malformed(format!("bad integer {s:?}")))
}

fn parse_i32(s: &str) -> Result<i32, CheckpointWarning> {
    s.parse()
        .map_err(|_| malformed(format!("bad integer {s:?}")))
}

/// Renders one chip record as a single checkpoint line, ending with a
/// `crc=` field covering everything before it.
pub(crate) fn encode_chip(s: &ChipSummary) -> String {
    let margins = s
        .margins
        .iter()
        .map(|m| format!("{}:{}:{}", m.core, m.first_error_mv, m.min_safe_mv))
        .collect::<Vec<_>>()
        .join(";");
    let join_hex = |v: &[f64]| v.iter().map(|x| f64_hex(*x)).collect::<Vec<_>>().join(",");
    let mut line = format!(
        "chip {} seed={:016x} margins={} vdd={} red={} es={} ce={} em={} cr={} sw={}",
        s.chip.0,
        s.die_seed,
        margins,
        join_hex(&s.mean_vdd_mv),
        join_hex(&s.vdd_reduction),
        f64_hex(s.energy_savings),
        s.correctable,
        s.emergencies,
        s.crashes,
        f64_hex(s.sw_overhead),
    );
    // Resilience counters are appended only when set, keeping clean-fleet
    // checkpoints byte-identical to the pre-fault format.
    if s.dues > 0 {
        line.push_str(&format!(" du={}", s.dues));
    }
    if s.rollbacks > 0 {
        line.push_str(&format!(" rb={}", s.rollbacks));
    }
    let crc = crc32(line.as_bytes());
    line.push_str(&format!(" crc={crc:08x}"));
    line
}

/// Splits a record's trailing `crc=` field off, if present, returning the
/// record body and the recorded checksum. Records written before the
/// `crc=` field existed come back unchanged with no checksum.
fn split_crc(line: &str) -> Result<(&str, Option<u32>), CheckpointWarning> {
    match line.rsplit_once(" crc=") {
        Some((body, hex)) if !hex.contains(' ') => {
            let crc = u32::from_str_radix(hex, 16)
                .map_err(|_| malformed(format!("bad crc field {hex:?}")))?;
            Ok((body, Some(crc)))
        }
        _ => Ok((line, None)),
    }
}

/// Parses one chip record line, verifying its `crc=` checksum when one is
/// present (legacy records without one still load). Returns `Ok(None)`
/// for an incomplete (truncated) line so partial final writes do not
/// poison a resume.
pub(crate) fn decode_chip(line: &str) -> Result<Option<ChipSummary>, CheckpointWarning> {
    let (line, recorded) = split_crc(line)?;
    if let Some(expected) = recorded {
        let found = crc32(line.as_bytes());
        if expected != found {
            return Err(CheckpointWarning::BadCrc { expected, found });
        }
    }
    let mut parts = line.split_whitespace();
    if parts.next() != Some("chip") {
        return Err(malformed(format!("expected a chip record, got {line:?}")));
    }
    let chip = match parts.next() {
        Some(id) => ChipId(parse_u64(id)?),
        None => return Ok(None),
    };
    let mut die_seed = None;
    let mut margins = None;
    let mut mean_vdd_mv = None;
    let mut vdd_reduction = None;
    let mut energy_savings = None;
    let mut correctable = None;
    let mut emergencies = None;
    let mut crashes = None;
    let mut sw_overhead = None;
    // Optional resilience counters: absent in pre-fault checkpoints (and
    // in clean-fleet saves), defaulting to zero.
    let mut dues = 0;
    let mut rollbacks = 0;
    for field in parts {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| malformed(format!("field {field:?} is not key=value")))?;
        match key {
            "seed" => {
                die_seed = Some(
                    u64::from_str_radix(value, 16)
                        .map_err(|_| malformed(format!("bad seed {value:?}")))?,
                )
            }
            "margins" => {
                let mut list = Vec::new();
                for entry in value.split(';').filter(|e| !e.is_empty()) {
                    let mut nums = entry.split(':');
                    let core = nums
                        .next()
                        .ok_or_else(|| malformed("empty margin entry".into()))?;
                    let fe = nums
                        .next()
                        .ok_or_else(|| malformed(format!("margin entry {entry:?} truncated")))?;
                    let ms = nums
                        .next()
                        .ok_or_else(|| malformed(format!("margin entry {entry:?} truncated")))?;
                    list.push(CoreMarginSummary {
                        core: parse_u64(core)? as usize,
                        first_error_mv: parse_i32(fe)?,
                        min_safe_mv: parse_i32(ms)?,
                    });
                }
                margins = Some(list);
            }
            "vdd" | "red" => {
                let list = value
                    .split(',')
                    .filter(|e| !e.is_empty())
                    .map(parse_f64_hex)
                    .collect::<Result<Vec<f64>, _>>()?;
                if key == "vdd" {
                    mean_vdd_mv = Some(list);
                } else {
                    vdd_reduction = Some(list);
                }
            }
            "es" => energy_savings = Some(parse_f64_hex(value)?),
            "ce" => correctable = Some(parse_u64(value)?),
            "em" => emergencies = Some(parse_u64(value)?),
            "cr" => crashes = Some(parse_u64(value)?),
            "sw" => sw_overhead = Some(parse_f64_hex(value)?),
            "du" => dues = parse_u64(value)?,
            "rb" => rollbacks = parse_u64(value)?,
            other => return Err(malformed(format!("unknown field {other:?} in chip record"))),
        }
    }
    // A record missing trailing fields is a truncated final write.
    match (
        die_seed,
        margins,
        mean_vdd_mv,
        vdd_reduction,
        energy_savings,
        correctable,
        emergencies,
        crashes,
        sw_overhead,
    ) {
        (
            Some(die_seed),
            Some(margins),
            Some(mean_vdd_mv),
            Some(vdd_reduction),
            Some(energy_savings),
            Some(correctable),
            Some(emergencies),
            Some(crashes),
            Some(sw_overhead),
        ) => Ok(Some(ChipSummary {
            chip,
            die_seed,
            margins,
            mean_vdd_mv,
            vdd_reduction,
            energy_savings,
            correctable,
            emergencies,
            crashes,
            sw_overhead,
            dues,
            rollbacks,
        })),
        _ => Ok(None),
    }
}

/// A process-wide counter making every temp-file name unique: two savers
/// targeting sibling paths (or the same path, racing) never clobber each
/// other's in-flight temp file.
static TEMP_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A temp path unique to this (process, save): `<path>.tmp.<pid>.<n>`.
pub(crate) fn unique_temp(path: &Path) -> PathBuf {
    let serial = TEMP_SERIAL.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(format!(".tmp.{pid}.{serial}"));
    path.with_file_name(name)
}

/// A temp path unique within `vfs`. A backend with a deterministic
/// [`vs_guard::vfs::Vfs::temp_tag`] (SimFs) names by its own counter so
/// recorded operation streams are byte-identical across processes; the
/// production backend falls back to pid-and-serial names.
pub(crate) fn unique_temp_on(vfs: &VfsHandle, path: &Path) -> PathBuf {
    match vfs.temp_tag() {
        Some(tag) => {
            let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
            name.push(format!(".tmp.{tag}"));
            path.with_file_name(name)
        }
        None => unique_temp(path),
    }
}

/// Fsyncs `path`'s parent directory on `vfs` so a just-completed rename
/// survives a crash. Best-effort: directory fsync is not portable, and a
/// failure here cannot lose record *content* (the data file itself is
/// already synced), only the rename's durability.
pub(crate) fn sync_parent_dir_on(vfs: &VfsHandle, path: &Path) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let _ = vfs.sync_dir(parent);
    }
}

/// Atomically and durably writes a checkpoint: header, then one line per
/// summary in chip-id order. The text is written to a uniquely named
/// sibling temp file, fsynced, renamed over `path`, and the parent
/// directory is fsynced — so after `Ok` the new checkpoint survives
/// SIGKILL, and after any failure the previous one is intact.
pub fn save(
    path: &Path,
    fingerprint: u64,
    summaries: &[ChipSummary],
) -> Result<(), CheckpointError> {
    save_on(&vfs::std_fs(), path, fingerprint, summaries)
}

/// [`save`] against an explicit filesystem backend — the seam the
/// crash-consistency checker records through.
pub fn save_on(
    vfs: &VfsHandle,
    path: &Path,
    fingerprint: u64,
    summaries: &[ChipSummary],
) -> Result<(), CheckpointError> {
    let mut sorted: Vec<&ChipSummary> = summaries.iter().collect();
    sorted.sort_by_key(|s| s.chip);
    let mut text = String::new();
    text.push_str(MAGIC);
    text.push('\n');
    text.push_str(&format!("fingerprint {fingerprint:016x}\n"));
    for s in sorted {
        text.push_str(&encode_chip(s));
        text.push('\n');
    }
    let tmp = unique_temp_on(vfs, path);
    let result = (|| {
        use std::io::Write as _;
        // FaultyFs consultation keys on the *final* path so torture
        // scopes match the store directory, not the temp name. A torn
        // write here only loses the temp file — the rename never
        // happens, so the previous checkpoint stays intact.
        let fault = vfs.faults().write_fault(path, text.len())?;
        let mut file = vfs.open_write(&tmp, OpenMode::Truncate)?;
        match fault {
            vs_guard::fsfault::WriteFault::Intact => file.write_all(text.as_bytes())?,
            vs_guard::fsfault::WriteFault::Short(n) => {
                file.write_all(&text.as_bytes()[..n])?;
                let _ = file.sync_all();
                return Err(vs_guard::fsfault::short_write_error().into());
            }
        }
        vfs.faults().sync_fault(path)?;
        // The fsync-before-rename is what makes the rename safe: without
        // it, a crash after the (metadata-durable) rename can expose a
        // checkpoint whose *content* never reached the platters. The
        // `planted-crash` feature removes the barrier so the crash-matrix
        // CI job can prove the checker catches exactly this bug.
        #[cfg(not(feature = "planted-crash"))]
        file.sync_all()?;
        vfs.rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        // Never leave a stray temp file behind a failed save.
        let _ = vfs.remove_file(&tmp);
    } else {
        sync_parent_dir_on(vfs, path);
    }
    result
}

/// Loads a checkpoint leniently, verifying it belongs to the config with
/// `fingerprint`.
///
/// Header problems (missing file, wrong magic, wrong fingerprint) are
/// hard errors — the file as a whole is unusable. Record problems — a
/// truncated final line, a checksum failure, a malformed record — skip
/// only that record and surface as typed [`CheckpointWarning`]s with
/// their 1-based line numbers, so the caller can report partial damage
/// without abandoning the resume. Never panics on arbitrary file bytes.
pub fn load_report(path: &Path, fingerprint: u64) -> Result<CheckpointLoad, CheckpointError> {
    load_report_on(&vfs::std_fs(), path, fingerprint)
}

/// [`load_report`] against an explicit filesystem backend.
pub fn load_report_on(
    vfs: &VfsHandle,
    path: &Path,
    fingerprint: u64,
) -> Result<CheckpointLoad, CheckpointError> {
    let text = vfs.read_to_string(path)?;
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, MAGIC)) => {}
        other => {
            return Err(CheckpointError::Format(format!(
                "bad header {:?} (expected {MAGIC:?})",
                other.map(|(_, l)| l)
            )))
        }
    }
    let found = match lines
        .next()
        .and_then(|(_, l)| l.strip_prefix("fingerprint "))
    {
        Some(hex) => u64::from_str_radix(hex, 16)
            .map_err(|_| CheckpointError::Format(format!("bad fingerprint {hex:?}")))?,
        None => return Err(CheckpointError::Format("missing fingerprint line".into())),
    };
    if found != fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            expected: fingerprint,
            found,
        });
    }
    let mut summaries = Vec::new();
    let mut warnings = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        match decode_chip(line) {
            Ok(Some(summary)) => summaries.push(summary),
            Ok(None) => warnings.push((idx + 1, CheckpointWarning::Truncated)),
            Err(warning) => warnings.push((idx + 1, warning)),
        }
    }
    summaries.sort_by_key(|s| s.chip);
    Ok(CheckpointLoad {
        summaries,
        warnings,
    })
}

/// Loads a checkpoint, verifying it belongs to the config with
/// `fingerprint`. Returns the completed summaries (chip-id order).
///
/// The lenient [`load_report`] with the warnings discarded: damaged
/// records (truncated final write, failed checksum, malformed line) are
/// skipped silently.
pub fn load(path: &Path, fingerprint: u64) -> Result<Vec<ChipSummary>, CheckpointError> {
    load_report(path, fingerprint).map(|l| l.summaries)
}

/// [`load`] against an explicit filesystem backend.
pub fn load_on(
    vfs: &VfsHandle,
    path: &Path,
    fingerprint: u64,
) -> Result<Vec<ChipSummary>, CheckpointError> {
    load_report_on(vfs, path, fingerprint).map(|l| l.summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-checkpoint-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn summary(id: u64) -> ChipSummary {
        ChipSummary {
            chip: ChipId(id),
            die_seed: 0xDEAD_BEEF ^ id,
            margins: vec![
                CoreMarginSummary {
                    core: 0,
                    first_error_mv: 735,
                    min_safe_mv: 640,
                },
                CoreMarginSummary {
                    core: 1,
                    first_error_mv: 720,
                    min_safe_mv: 655,
                },
            ],
            // Deliberately awkward values: round-tripping must be exact.
            mean_vdd_mv: vec![743.333_333_333_1, 760.000_000_000_2],
            vdd_reduction: vec![0.1 + 0.2 - 0.3 + 0.07, f64::MIN_POSITIVE],
            energy_savings: 1.0 / 3.0,
            correctable: 12345,
            emergencies: 2,
            crashes: 0,
            sw_overhead: 0.0123456789,
            dues: id % 3,
            rollbacks: id % 2,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let path = scratch("roundtrip.ckpt");
        let originals: Vec<ChipSummary> = (0..5).map(summary).collect();
        save(&path, 0xABCD, &originals).unwrap();
        let loaded = load(&path, 0xABCD).unwrap();
        assert_eq!(originals, loaded);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = scratch("fingerprint.ckpt");
        save(&path, 1, &[summary(0)]).unwrap();
        match load(&path, 2) {
            Err(CheckpointError::FingerprintMismatch { expected, found }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_final_record_is_skipped() {
        let path = scratch("truncated.ckpt");
        save(&path, 7, &[summary(0), summary(1)]).unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        // Chop the last record mid-field.
        let cut = text.rfind("es=").unwrap();
        text.truncate(cut);
        fs::write(&path, text).unwrap();
        let loaded = load(&path, 7).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].chip, ChipId(0));
    }

    #[test]
    fn pre_fault_records_decode_with_zero_counters() {
        // A record written before the `du`/`rb` fields existed must load
        // with both counters at zero.
        let mut s = summary(4);
        s.dues = 0;
        s.rollbacks = 0;
        let line = encode_chip(&s);
        assert!(!line.contains("du=") && !line.contains("rb="), "{line}");
        let decoded = decode_chip(&line).unwrap().unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn records_without_crc_still_load() {
        // A record written before the `crc=` field existed must decode
        // identically — the checksum is strictly additive.
        let s = summary(2);
        let line = encode_chip(&s);
        let (body, crc) = line.rsplit_once(" crc=").unwrap();
        assert_eq!(crc.len(), 8, "crc renders as 8 hex digits");
        assert_eq!(decode_chip(body).unwrap().unwrap(), s);
        assert_eq!(decode_chip(&line).unwrap().unwrap(), s);
    }

    #[test]
    fn bad_crc_is_a_typed_warning_not_a_panic() {
        let path = scratch("badcrc.ckpt");
        save(&path, 9, &[summary(0), summary(1), summary(2)]).unwrap();
        // Corrupt one byte inside chip 1's record body.
        let mut text = fs::read_to_string(&path).unwrap();
        let pos = text.find("chip 1 ").unwrap() + "chip 1 seed=00000000d".len();
        unsafe { text.as_bytes_mut()[pos] ^= 0x01 };
        fs::write(&path, &text).unwrap();

        let report = load_report(&path, 9).unwrap();
        assert_eq!(report.summaries.len(), 2, "the damaged record is skipped");
        assert_eq!(report.summaries[0].chip, ChipId(0));
        assert_eq!(report.summaries[1].chip, ChipId(2));
        assert_eq!(report.warnings.len(), 1);
        let (line_no, warning) = &report.warnings[0];
        assert_eq!(*line_no, 4, "header is two lines, chip 1 is line 4");
        assert!(matches!(warning, CheckpointWarning::BadCrc { .. }));
        // The silent wrapper agrees on the surviving records.
        assert_eq!(load(&path, 9).unwrap(), report.summaries);
    }

    #[test]
    fn malformed_records_are_warnings_not_errors() {
        let path = scratch("malformed.ckpt");
        save(&path, 3, &[summary(0)]).unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("chip 1 wat=huh\n");
        text.push_str("not-a-record-at-all\n");
        fs::write(&path, &text).unwrap();
        let report = load_report(&path, 3).unwrap();
        assert_eq!(report.summaries.len(), 1);
        assert_eq!(report.warnings.len(), 2);
        assert!(report
            .warnings
            .iter()
            .all(|(_, w)| matches!(w, CheckpointWarning::Malformed(_))));
    }

    #[test]
    fn concurrent_saves_to_sibling_paths_do_not_collide() {
        // The old implementation derived the temp name with
        // `with_extension("tmp")`, so `a.ckpt` and `a.tmp` (or two racing
        // savers of the same path) could clobber each other. Unique names
        // make simultaneous saves safe.
        let dir = scratch("unique-temp-dir");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("x.ckpt");
        let a = unique_temp(&target);
        let b = unique_temp(&target);
        assert_ne!(a, b, "every save gets its own temp file");
        let name = a.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("x.ckpt.tmp."), "{name}");

        save(&target, 1, &[summary(0)]).unwrap();
        save(&target, 1, &[summary(0), summary(1)]).unwrap();
        assert_eq!(load(&target, 1).unwrap().len(), 2);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "saves must not leave temp files behind"
        );
    }

    #[test]
    fn garbage_is_rejected() {
        let path = scratch("garbage.ckpt");
        fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(matches!(load(&path, 0), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = scratch("does-not-exist.ckpt");
        let _ = fs::remove_file(&path);
        assert!(matches!(load(&path, 0), Err(CheckpointError::Io(_))));
    }
}
