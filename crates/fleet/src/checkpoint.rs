//! Checkpoint/resume for long fleet sweeps.
//!
//! The checkpoint is a line-oriented text file: a header binding the file
//! to a [`FleetConfig::fingerprint`](crate::FleetConfig::fingerprint),
//! then one line per completed chip. Floating-point fields are stored as
//! their exact IEEE-754 bit patterns (16 hex digits), so a resumed fleet
//! aggregates to *bit-identical* statistics — text round-tripping loses
//! nothing.
//!
//! Saves are atomic (write to a sibling temp file, then rename), so a
//! sweep killed mid-save leaves the previous checkpoint intact. Loading
//! tolerates a truncated final line for the same reason.

use crate::summary::{ChipSummary, CoreMarginSummary};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use vs_types::ChipId;

/// File-format magic: first line of every checkpoint.
const MAGIC: &str = "voltspec-fleet-checkpoint v1";

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file is not a v1 fleet checkpoint, or a record is malformed.
    Format(String),
    /// The checkpoint belongs to a different fleet configuration.
    FingerprintMismatch {
        /// Fingerprint of the config attempting to resume.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different fleet config \
                 (expected fingerprint {expected:016x}, file has {found:016x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Format(format!("bad f64 bit pattern {s:?}")))
}

fn parse_u64(s: &str) -> Result<u64, CheckpointError> {
    s.parse()
        .map_err(|_| CheckpointError::Format(format!("bad integer {s:?}")))
}

fn parse_i32(s: &str) -> Result<i32, CheckpointError> {
    s.parse()
        .map_err(|_| CheckpointError::Format(format!("bad integer {s:?}")))
}

/// Renders one chip record as a single checkpoint line.
fn encode_chip(s: &ChipSummary) -> String {
    let margins = s
        .margins
        .iter()
        .map(|m| format!("{}:{}:{}", m.core, m.first_error_mv, m.min_safe_mv))
        .collect::<Vec<_>>()
        .join(";");
    let join_hex = |v: &[f64]| v.iter().map(|x| f64_hex(*x)).collect::<Vec<_>>().join(",");
    let mut line = format!(
        "chip {} seed={:016x} margins={} vdd={} red={} es={} ce={} em={} cr={} sw={}",
        s.chip.0,
        s.die_seed,
        margins,
        join_hex(&s.mean_vdd_mv),
        join_hex(&s.vdd_reduction),
        f64_hex(s.energy_savings),
        s.correctable,
        s.emergencies,
        s.crashes,
        f64_hex(s.sw_overhead),
    );
    // Resilience counters are appended only when set, keeping clean-fleet
    // checkpoints byte-identical to the pre-fault format.
    if s.dues > 0 {
        line.push_str(&format!(" du={}", s.dues));
    }
    if s.rollbacks > 0 {
        line.push_str(&format!(" rb={}", s.rollbacks));
    }
    line
}

/// Parses one chip record line. Returns `Ok(None)` for an incomplete
/// (truncated) line so partial final writes do not poison a resume.
fn decode_chip(line: &str) -> Result<Option<ChipSummary>, CheckpointError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("chip") {
        return Err(CheckpointError::Format(format!(
            "expected a chip record, got {line:?}"
        )));
    }
    let chip = match parts.next() {
        Some(id) => ChipId(parse_u64(id)?),
        None => return Ok(None),
    };
    let mut die_seed = None;
    let mut margins = None;
    let mut mean_vdd_mv = None;
    let mut vdd_reduction = None;
    let mut energy_savings = None;
    let mut correctable = None;
    let mut emergencies = None;
    let mut crashes = None;
    let mut sw_overhead = None;
    // Optional resilience counters: absent in pre-fault checkpoints (and
    // in clean-fleet saves), defaulting to zero.
    let mut dues = 0;
    let mut rollbacks = 0;
    for field in parts {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| CheckpointError::Format(format!("field {field:?} is not key=value")))?;
        match key {
            "seed" => {
                die_seed = Some(
                    u64::from_str_radix(value, 16)
                        .map_err(|_| CheckpointError::Format(format!("bad seed {value:?}")))?,
                )
            }
            "margins" => {
                let mut list = Vec::new();
                for entry in value.split(';').filter(|e| !e.is_empty()) {
                    let mut nums = entry.split(':');
                    let core = nums
                        .next()
                        .ok_or_else(|| CheckpointError::Format("empty margin entry".into()))?;
                    let fe = nums.next().ok_or_else(|| {
                        CheckpointError::Format(format!("margin entry {entry:?} truncated"))
                    })?;
                    let ms = nums.next().ok_or_else(|| {
                        CheckpointError::Format(format!("margin entry {entry:?} truncated"))
                    })?;
                    list.push(CoreMarginSummary {
                        core: parse_u64(core)? as usize,
                        first_error_mv: parse_i32(fe)?,
                        min_safe_mv: parse_i32(ms)?,
                    });
                }
                margins = Some(list);
            }
            "vdd" | "red" => {
                let list = value
                    .split(',')
                    .filter(|e| !e.is_empty())
                    .map(parse_f64_hex)
                    .collect::<Result<Vec<f64>, _>>()?;
                if key == "vdd" {
                    mean_vdd_mv = Some(list);
                } else {
                    vdd_reduction = Some(list);
                }
            }
            "es" => energy_savings = Some(parse_f64_hex(value)?),
            "ce" => correctable = Some(parse_u64(value)?),
            "em" => emergencies = Some(parse_u64(value)?),
            "cr" => crashes = Some(parse_u64(value)?),
            "sw" => sw_overhead = Some(parse_f64_hex(value)?),
            "du" => dues = parse_u64(value)?,
            "rb" => rollbacks = parse_u64(value)?,
            other => {
                return Err(CheckpointError::Format(format!(
                    "unknown field {other:?} in chip record"
                )))
            }
        }
    }
    // A record missing trailing fields is a truncated final write.
    match (
        die_seed,
        margins,
        mean_vdd_mv,
        vdd_reduction,
        energy_savings,
        correctable,
        emergencies,
        crashes,
        sw_overhead,
    ) {
        (
            Some(die_seed),
            Some(margins),
            Some(mean_vdd_mv),
            Some(vdd_reduction),
            Some(energy_savings),
            Some(correctable),
            Some(emergencies),
            Some(crashes),
            Some(sw_overhead),
        ) => Ok(Some(ChipSummary {
            chip,
            die_seed,
            margins,
            mean_vdd_mv,
            vdd_reduction,
            energy_savings,
            correctable,
            emergencies,
            crashes,
            sw_overhead,
            dues,
            rollbacks,
        })),
        _ => Ok(None),
    }
}

/// Atomically writes a checkpoint: header, then one line per summary in
/// chip-id order.
pub fn save(
    path: &Path,
    fingerprint: u64,
    summaries: &[ChipSummary],
) -> Result<(), CheckpointError> {
    let mut sorted: Vec<&ChipSummary> = summaries.iter().collect();
    sorted.sort_by_key(|s| s.chip);
    let mut text = String::new();
    text.push_str(MAGIC);
    text.push('\n');
    text.push_str(&format!("fingerprint {fingerprint:016x}\n"));
    for s in sorted {
        text.push_str(&encode_chip(s));
        text.push('\n');
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a checkpoint, verifying it belongs to the config with
/// `fingerprint`. Returns the completed summaries (chip-id order).
///
/// A truncated final record (e.g. the process died mid-write without the
/// atomic rename, or the file was hand-edited) is skipped, not fatal.
pub fn load(path: &Path, fingerprint: u64) -> Result<Vec<ChipSummary>, CheckpointError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    match lines.next() {
        Some(MAGIC) => {}
        other => {
            return Err(CheckpointError::Format(format!(
                "bad header {other:?} (expected {MAGIC:?})"
            )))
        }
    }
    let found = match lines.next().and_then(|l| l.strip_prefix("fingerprint ")) {
        Some(hex) => u64::from_str_radix(hex, 16)
            .map_err(|_| CheckpointError::Format(format!("bad fingerprint {hex:?}")))?,
        None => return Err(CheckpointError::Format("missing fingerprint line".into())),
    };
    if found != fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            expected: fingerprint,
            found,
        });
    }
    let mut summaries = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(summary) = decode_chip(line)? {
            summaries.push(summary);
        }
    }
    summaries.sort_by_key(|s| s.chip);
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-checkpoint-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn summary(id: u64) -> ChipSummary {
        ChipSummary {
            chip: ChipId(id),
            die_seed: 0xDEAD_BEEF ^ id,
            margins: vec![
                CoreMarginSummary {
                    core: 0,
                    first_error_mv: 735,
                    min_safe_mv: 640,
                },
                CoreMarginSummary {
                    core: 1,
                    first_error_mv: 720,
                    min_safe_mv: 655,
                },
            ],
            // Deliberately awkward values: round-tripping must be exact.
            mean_vdd_mv: vec![743.333_333_333_1, 760.000_000_000_2],
            vdd_reduction: vec![0.1 + 0.2 - 0.3 + 0.07, f64::MIN_POSITIVE],
            energy_savings: 1.0 / 3.0,
            correctable: 12345,
            emergencies: 2,
            crashes: 0,
            sw_overhead: 0.0123456789,
            dues: id % 3,
            rollbacks: id % 2,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let path = scratch("roundtrip.ckpt");
        let originals: Vec<ChipSummary> = (0..5).map(summary).collect();
        save(&path, 0xABCD, &originals).unwrap();
        let loaded = load(&path, 0xABCD).unwrap();
        assert_eq!(originals, loaded);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = scratch("fingerprint.ckpt");
        save(&path, 1, &[summary(0)]).unwrap();
        match load(&path, 2) {
            Err(CheckpointError::FingerprintMismatch { expected, found }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_final_record_is_skipped() {
        let path = scratch("truncated.ckpt");
        save(&path, 7, &[summary(0), summary(1)]).unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        // Chop the last record mid-field.
        let cut = text.rfind("es=").unwrap();
        text.truncate(cut);
        fs::write(&path, text).unwrap();
        let loaded = load(&path, 7).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].chip, ChipId(0));
    }

    #[test]
    fn pre_fault_records_decode_with_zero_counters() {
        // A record written before the `du`/`rb` fields existed must load
        // with both counters at zero.
        let mut s = summary(4);
        s.dues = 0;
        s.rollbacks = 0;
        let line = encode_chip(&s);
        assert!(!line.contains("du=") && !line.contains("rb="), "{line}");
        let decoded = decode_chip(&line).unwrap().unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn garbage_is_rejected() {
        let path = scratch("garbage.ckpt");
        fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(matches!(load(&path, 0), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = scratch("does-not-exist.ckpt");
        let _ = fs::remove_file(&path);
        assert!(matches!(load(&path, 0), Err(CheckpointError::Io(_))));
    }
}
