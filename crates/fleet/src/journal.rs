//! The write-ahead progress journal: crash-safe sidecar to the periodic
//! checkpoint.
//!
//! The checkpoint is rewritten whole every `checkpoint_every` chips, so a
//! SIGKILL can lose up to `checkpoint_every - 1` finished chips. The
//! journal closes that window: as each chip completes, its record (the
//! same line format as the checkpoint, CRC32-framed by `vs-guard`) is
//! appended and fsynced before the coordinator moves on. Resume therefore
//! recovers *every* finished chip — checkpoint ∪ journal — losing at most
//! the record that was mid-append when the process died, and that record
//! is detected as damaged, never silently mis-parsed.
//!
//! On resume (and at every checkpoint save) the journal is **compacted**:
//! the merged summaries are saved into the checkpoint first, then the
//! journal is recreated empty. A crash between those two steps merely
//! leaves duplicate records, which replay dedups by chip id — the
//! simulation is deterministic, so duplicates are bit-identical.

use crate::checkpoint::{decode_chip, encode_chip, CheckpointError, CheckpointWarning};
use crate::summary::ChipSummary;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use vs_guard::vfs::{self, VfsHandle};
use vs_guard::{unframe, FrameError, JournalWriter};

/// File-format magic: first line of every progress journal.
pub const MAGIC: &str = "voltspec-fleet-journal v1";

/// An open progress journal: one durable record per completed chip.
#[derive(Debug)]
pub struct ChipJournal {
    writer: JournalWriter,
}

impl ChipJournal {
    /// Creates (truncating) a journal bound to a config fingerprint.
    pub fn create(path: &Path, fingerprint: u64) -> io::Result<ChipJournal> {
        ChipJournal::create_on(&vfs::std_fs(), path, fingerprint)
    }

    /// [`ChipJournal::create`] against an explicit filesystem backend.
    pub fn create_on(vfs: &VfsHandle, path: &Path, fingerprint: u64) -> io::Result<ChipJournal> {
        let writer = JournalWriter::create_on(
            vfs,
            path,
            &[MAGIC, &format!("fingerprint {fingerprint:016x}")],
        )?;
        Ok(ChipJournal { writer })
    }

    /// Opens an existing journal for appending.
    pub fn open_append(path: &Path) -> io::Result<ChipJournal> {
        ChipJournal::open_append_on(&vfs::std_fs(), path)
    }

    /// [`ChipJournal::open_append`] against an explicit backend.
    pub fn open_append_on(vfs: &VfsHandle, path: &Path) -> io::Result<ChipJournal> {
        let writer = JournalWriter::open_append_on(vfs, path)?;
        Ok(ChipJournal { writer })
    }

    /// Durably appends one finished chip. When this returns `Ok`, the
    /// record survives SIGKILL — and the backend's mutation stream is
    /// marked with the acknowledgement, so a crash-point explorer knows
    /// exactly which chips were acked before any crash.
    pub fn append(&mut self, summary: &ChipSummary) -> io::Result<()> {
        self.writer.append(&encode_chip(summary))?;
        self.writer
            .vfs()
            .mark(&format!("ack chip={}", summary.chip.0));
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        self.writer.path()
    }
}

/// The result of replaying a journal: every record that decoded, plus a
/// typed warning per damaged one (`(1-based line number, warning)`).
#[derive(Debug)]
pub struct JournalReplay {
    /// The journaled summaries, deduped by chip id, in chip-id order.
    pub summaries: Vec<ChipSummary>,
    /// One entry per skipped record.
    pub warnings: Vec<(usize, CheckpointWarning)>,
}

/// Replays a progress journal, verifying it belongs to the config with
/// `fingerprint`.
///
/// Mirrors the checkpoint loader's contract: header problems are hard
/// errors, record problems (the frame that was mid-append at SIGKILL, bit
/// rot) skip only that record with a typed warning. Duplicate records for
/// one chip — the crash-between-compaction-steps window — dedup to the
/// last occurrence. Never panics on arbitrary file bytes.
pub fn replay_journal(path: &Path, fingerprint: u64) -> Result<JournalReplay, CheckpointError> {
    replay_journal_on(&vfs::std_fs(), path, fingerprint)
}

/// [`replay_journal`] against an explicit filesystem backend.
pub fn replay_journal_on(
    vfs: &VfsHandle,
    path: &Path,
    fingerprint: u64,
) -> Result<JournalReplay, CheckpointError> {
    let text = vfs.read_to_string(path)?;
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, MAGIC)) => {}
        other => {
            return Err(CheckpointError::Format(format!(
                "bad journal header {:?} (expected {MAGIC:?})",
                other.map(|(_, l)| l)
            )))
        }
    }
    let found = match lines
        .next()
        .and_then(|(_, l)| l.strip_prefix("fingerprint "))
    {
        Some(hex) => u64::from_str_radix(hex, 16)
            .map_err(|_| CheckpointError::Format(format!("bad fingerprint {hex:?}")))?,
        None => {
            return Err(CheckpointError::Format(
                "missing journal fingerprint line".into(),
            ))
        }
    };
    if found != fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            expected: fingerprint,
            found,
        });
    }
    let mut summaries: Vec<ChipSummary> = Vec::new();
    let mut warnings = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let payload = match unframe(line) {
            Ok(p) => p,
            Err(FrameError::Truncated) => {
                warnings.push((idx + 1, CheckpointWarning::Truncated));
                continue;
            }
            Err(FrameError::BadCrc { expected, found }) => {
                warnings.push((idx + 1, CheckpointWarning::BadCrc { expected, found }));
                continue;
            }
        };
        match decode_chip(payload) {
            Ok(Some(summary)) => {
                // Dedup by chip id, last occurrence wins (duplicates are
                // bit-identical anyway — the simulation is deterministic).
                match summaries.iter_mut().find(|s| s.chip == summary.chip) {
                    Some(slot) => *slot = summary,
                    None => summaries.push(summary),
                }
            }
            Ok(None) => warnings.push((idx + 1, CheckpointWarning::Truncated)),
            Err(warning) => warnings.push((idx + 1, warning)),
        }
    }
    summaries.sort_by_key(|s| s.chip);
    Ok(JournalReplay {
        summaries,
        warnings,
    })
}

/// The result of a *streaming* replay: encoded records (the unframed
/// checkpoint-format payload, not decoded summaries) keyed by chip id,
/// so a compaction pass can splice them into a checkpoint without
/// re-encoding. Memory is O(journal window).
#[derive(Debug)]
pub(crate) struct StreamingReplay {
    /// The fingerprint the journal header declares.
    pub fingerprint: u64,
    /// Encoded (unframed) records, deduped by chip id, last wins.
    pub records: BTreeMap<u64, String>,
    /// Damaged records skipped (torn tail, bit rot).
    pub skipped: u64,
}

/// Replays a journal line by line, keeping records *encoded*.
///
/// Unlike [`replay_journal`] this reads the fingerprint from the header
/// rather than checking it against an expectation — the caller decides
/// what store the records may be folded into. Each record is decoded
/// just far enough to learn its chip id and prove it parses; the
/// checkpoint-format payload string is what's kept.
pub(crate) fn replay_journal_streaming_on(
    vfs: &VfsHandle,
    path: &Path,
) -> Result<StreamingReplay, CheckpointError> {
    use std::io::BufRead as _;
    let reader = io::BufReader::new(vfs.open_read(path)?);
    streaming_from_lines(reader.lines())
}

fn streaming_from_lines(
    mut lines: impl Iterator<Item = io::Result<String>>,
) -> Result<StreamingReplay, CheckpointError> {
    match lines.next().transpose()? {
        Some(ref l) if l == MAGIC => {}
        other => {
            return Err(CheckpointError::Format(format!(
                "bad journal header {other:?} (expected {MAGIC:?})"
            )))
        }
    }
    let fingerprint = match lines
        .next()
        .transpose()?
        .as_deref()
        .and_then(|l| l.strip_prefix("fingerprint "))
    {
        Some(hex) => u64::from_str_radix(hex, 16)
            .map_err(|_| CheckpointError::Format(format!("bad fingerprint {hex:?}")))?,
        None => {
            return Err(CheckpointError::Format(
                "missing journal fingerprint line".into(),
            ))
        }
    };
    let mut records: BTreeMap<u64, String> = BTreeMap::new();
    let mut skipped = 0u64;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let payload = match unframe(&line) {
            Ok(p) => p,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        match decode_chip(payload) {
            Ok(Some(summary)) => {
                records.insert(summary.chip.0, payload.to_string());
            }
            _ => skipped += 1,
        }
    }
    Ok(StreamingReplay {
        fingerprint,
        records,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::CoreMarginSummary;
    use std::fs;
    use std::path::PathBuf;
    use vs_types::ChipId;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-journal-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn summary(id: u64) -> ChipSummary {
        ChipSummary {
            chip: ChipId(id),
            die_seed: 0x5EED ^ id,
            margins: vec![CoreMarginSummary {
                core: 0,
                first_error_mv: 735,
                min_safe_mv: 640,
            }],
            mean_vdd_mv: vec![743.25],
            vdd_reduction: vec![0.061 + id as f64 * 1e-9],
            energy_savings: 1.0 / 3.0,
            correctable: 100 + id,
            emergencies: 1,
            crashes: 0,
            sw_overhead: 0.01,
            dues: 0,
            rollbacks: 0,
        }
    }

    #[test]
    fn journal_round_trips_bit_exact() {
        let path = scratch("roundtrip.journal");
        let mut j = ChipJournal::create(&path, 0xF00D).unwrap();
        let originals: Vec<ChipSummary> = (0..4).map(summary).collect();
        // Append out of order — replay sorts by chip id.
        for i in [2usize, 0, 3, 1] {
            j.append(&originals[i]).unwrap();
        }
        assert_eq!(j.path(), path.as_path());
        drop(j);
        let replay = replay_journal(&path, 0xF00D).unwrap();
        assert_eq!(replay.summaries, originals);
        assert!(replay.warnings.is_empty());
    }

    #[test]
    fn reopen_appends_and_duplicates_dedup() {
        let path = scratch("reopen.journal");
        let mut j = ChipJournal::create(&path, 1).unwrap();
        j.append(&summary(0)).unwrap();
        j.append(&summary(1)).unwrap();
        drop(j);
        let mut j = ChipJournal::open_append(&path).unwrap();
        j.append(&summary(1)).unwrap(); // the compaction-crash duplicate
        j.append(&summary(2)).unwrap();
        drop(j);
        let replay = replay_journal(&path, 1).unwrap();
        assert_eq!(replay.summaries.len(), 3);
        assert!(replay.warnings.is_empty());
    }

    #[test]
    fn torn_final_record_is_detected_not_fatal() {
        let path = scratch("torn.journal");
        let mut j = ChipJournal::create(&path, 2).unwrap();
        j.append(&summary(0)).unwrap();
        j.append(&summary(1)).unwrap();
        drop(j);
        // Simulate SIGKILL mid-append: chop the last record partway.
        let mut text = fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 10);
        fs::write(&path, &text).unwrap();
        let replay = replay_journal(&path, 2).unwrap();
        assert_eq!(replay.summaries.len(), 1);
        assert_eq!(replay.summaries[0].chip, ChipId(0));
        assert_eq!(replay.warnings.len(), 1);
    }

    #[test]
    fn wrong_fingerprint_and_garbage_are_hard_errors() {
        let path = scratch("fingerprint.journal");
        ChipJournal::create(&path, 7).unwrap();
        assert!(matches!(
            replay_journal(&path, 8),
            Err(CheckpointError::FingerprintMismatch {
                expected: 8,
                found: 7
            })
        ));
        let garbage = scratch("garbage.journal");
        fs::write(&garbage, "you are not a journal\n").unwrap();
        assert!(matches!(
            replay_journal(&garbage, 0),
            Err(CheckpointError::Format(_))
        ));
        let missing = scratch("missing.journal");
        let _ = fs::remove_file(&missing);
        assert!(matches!(
            replay_journal(&missing, 0),
            Err(CheckpointError::Io(_))
        ));
    }
}
