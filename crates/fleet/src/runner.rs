//! The fleet execution engine: shard a chip population across worker
//! threads, stream summaries as chips complete, checkpoint progress.
//!
//! # Determinism under any sharding
//!
//! Workers claim chips dynamically from a shared atomic counter (natural
//! load balancing — die-to-die variation makes chip runtimes uneven), and
//! each chip is simulated by the pure function
//! [`simulate_chip`](crate::simulate_chip). Completion *order* therefore
//! varies run to run, but completion *content* cannot; the aggregate is
//! computed over chip-id-sorted summaries, so fleet results are
//! bit-identical for any worker count. `tests/determinism.rs` asserts
//! this end to end.

use crate::aggregate::PopulationStats;
use crate::checkpoint::{self, CheckpointError};
use crate::config::FleetConfig;
use crate::job::simulate_chip_traced;
use crate::summary::ChipSummary;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use vs_telemetry::{
    to_jsonl, EventFilter, FleetProfile, LatencyHistogram, ProgressReport, ProgressSink,
    SilentProgress, Stopwatch, TelemetryEvent, WorkerProfile,
};
use vs_types::ChipId;

/// The completed fleet: every chip's summary in chip-id order, plus how
/// the run was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// One summary per chip, sorted by chip id.
    pub summaries: Vec<ChipSummary>,
    /// Chips simulated by this run (the rest came from a checkpoint).
    pub simulated: u64,
    /// Chips restored from the checkpoint.
    pub resumed: u64,
}

impl FleetResult {
    /// Aggregates the fleet into population statistics.
    pub fn stats(&self, config: &FleetConfig) -> PopulationStats {
        PopulationStats::from_summaries(&self.summaries, config.base_chip.mode.nominal_vdd())
    }
}

/// The observability side of a fleet run, kept strictly apart from the
/// deterministic results.
///
/// `events` is deterministic: per-chip streams are pure functions of the
/// config and are merged in chip-id order, so the serialized trace is
/// byte-identical for any worker count. `profile` is wall-clock and
/// varies run to run; callers must never mix it into determinism-checked
/// output.
#[derive(Debug, Clone, Default)]
pub struct FleetTrace {
    /// Telemetry events of every chip simulated this run, merged in
    /// chip-id order (chips restored from a checkpoint have no events).
    pub events: Vec<TelemetryEvent>,
    /// Wall-clock profile: per-worker busy/steal/idle and job latency.
    pub profile: FleetProfile,
}

impl FleetTrace {
    /// Serializes the (deterministic) event stream as JSONL — the exact
    /// bytes `repro --trace FILE` writes.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }
}

/// Drives a fleet of chips across a pool of worker threads.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: FleetConfig,
    workers: usize,
    checkpoint: Option<PathBuf>,
    /// Completed chips between checkpoint saves.
    checkpoint_every: u64,
}

impl FleetRunner {
    /// A runner over `config` with `workers` threads (0 is treated as 1).
    pub fn new(config: FleetConfig, workers: usize) -> FleetRunner {
        config.validate();
        FleetRunner {
            config,
            workers: workers.max(1),
            checkpoint: None,
            checkpoint_every: 32,
        }
    }

    /// Enables checkpoint/resume at `path`: existing progress there is
    /// restored (refusing files from a different config), and progress is
    /// saved periodically and at completion.
    pub fn with_checkpoint(mut self, path: PathBuf) -> FleetRunner {
        self.checkpoint = Some(path);
        self
    }

    /// Sets how many chip completions elapse between checkpoint saves.
    pub fn with_checkpoint_every(mut self, chips: u64) -> FleetRunner {
        self.checkpoint_every = chips.max(1);
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the whole fleet to completion.
    pub fn run(&self) -> Result<FleetResult, CheckpointError> {
        self.run_streaming(|_| {})
    }

    /// Runs the fleet, invoking `on_chip` (on the calling thread) for each
    /// newly simulated chip as it completes. Completion order is
    /// scheduling-dependent; summary *contents* are not.
    pub fn run_streaming(
        &self,
        mut on_chip: impl FnMut(&ChipSummary),
    ) -> Result<FleetResult, CheckpointError> {
        let mut progress = SilentProgress;
        self.run_core(EventFilter::none(), &mut on_chip, &mut progress)
            .map(|(result, _)| result)
    }

    /// Runs the fleet with telemetry: per-chip event streams (kept per
    /// `filter`, merged in chip-id order — byte-identical for any worker
    /// count), a wall-clock profile, and pluggable progress reporting.
    pub fn run_reporting(
        &self,
        filter: EventFilter,
        progress: &mut dyn ProgressSink,
    ) -> Result<(FleetResult, FleetTrace), CheckpointError> {
        self.run_core(filter, &mut |_| {}, progress)
    }

    fn run_core(
        &self,
        filter: EventFilter,
        on_chip: &mut dyn FnMut(&ChipSummary),
        progress: &mut dyn ProgressSink,
    ) -> Result<(FleetResult, FleetTrace), CheckpointError> {
        let fingerprint = self.config.fingerprint();

        // Restore prior progress, dropping chips beyond the current fleet
        // size (a shrunk re-run) — the fingerprint pins everything else.
        let mut done: Vec<ChipSummary> = match &self.checkpoint {
            Some(path) if path.exists() => checkpoint::load(path, fingerprint)?
                .into_iter()
                .filter(|s| s.chip.0 < self.config.num_chips)
                .collect(),
            _ => Vec::new(),
        };
        let resumed = done.len() as u64;
        let todo: Vec<ChipId> = {
            let have: std::collections::HashSet<u64> = done.iter().map(|s| s.chip.0).collect();
            (0..self.config.num_chips)
                .filter(|i| !have.contains(i))
                .map(ChipId)
                .collect()
        };

        let simulated = todo.len() as u64;
        let next = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<(ChipSummary, Vec<TelemetryEvent>)>();
        let config = &self.config;
        let todo_ref = &todo;
        // Per-chip event streams, buffered until the run completes and
        // merged in chip-id order (never completion order) so the trace is
        // independent of scheduling.
        let mut traces: Vec<(ChipId, Vec<TelemetryEvent>)> = Vec::new();
        let mut profile = FleetProfile::default();
        let run_watch = Stopwatch::start();

        std::thread::scope(|scope| -> Result<(), CheckpointError> {
            let mut handles = Vec::new();
            for worker in 0..self.workers.min(todo_ref.len().max(1)) {
                let tx = tx.clone();
                let next = &next;
                handles.push(scope.spawn(move || {
                    let mut stats = WorkerProfile {
                        worker,
                        ..WorkerProfile::default()
                    };
                    let mut latency = LatencyHistogram::new();
                    let wall = Stopwatch::start();
                    loop {
                        let claim = Stopwatch::start();
                        let idx = next.fetch_add(1, Ordering::Relaxed) as usize;
                        let chip = todo_ref.get(idx).copied();
                        stats.steal_ns += claim.elapsed_ns();
                        let Some(chip) = chip else {
                            break;
                        };
                        let busy = Stopwatch::start();
                        let out = simulate_chip_traced(config, chip, filter);
                        let busy_ns = busy.elapsed_ns();
                        stats.busy_ns += busy_ns;
                        stats.jobs += 1;
                        latency.observe_ns(busy_ns);
                        // A send can only fail if the receiver hung up,
                        // which only happens when the collector bailed on
                        // an I/O error; the remaining work is moot either
                        // way.
                        let send = Stopwatch::start();
                        let disconnected = tx.send(out).is_err();
                        stats.steal_ns += send.elapsed_ns();
                        if disconnected {
                            break;
                        }
                    }
                    stats.wall_ns = wall.elapsed_ns();
                    (stats, latency)
                }));
            }
            drop(tx);

            let mut since_save = 0u64;
            for (completed, (summary, events)) in (resumed + 1..).zip(rx) {
                on_chip(&summary);
                progress.chip_done(&ProgressReport {
                    chip: summary.chip,
                    completed,
                    total: self.config.num_chips,
                });
                if !events.is_empty() {
                    traces.push((summary.chip, events));
                }
                done.push(summary);
                since_save += 1;
                if since_save >= self.checkpoint_every {
                    since_save = 0;
                    self.save(fingerprint, &done)?;
                }
            }
            for handle in handles {
                let (stats, latency) = handle.join().expect("fleet worker panicked");
                profile.workers.push(stats);
                profile.job_latency.merge(&latency);
            }
            Ok(())
        })?;
        profile.wall_ns = run_watch.elapsed_ns();
        progress.finished(self.config.num_chips);

        done.sort_by_key(|s| s.chip);
        if simulated > 0 {
            self.save(fingerprint, &done)?;
        }
        traces.sort_by_key(|(chip, _)| *chip);
        let events = traces.into_iter().flat_map(|(_, e)| e).collect();
        Ok((
            FleetResult {
                summaries: done,
                simulated,
                resumed,
            },
            FleetTrace { events, profile },
        ))
    }

    fn save(&self, fingerprint: u64, done: &[ChipSummary]) -> Result<(), CheckpointError> {
        match &self.checkpoint {
            Some(path) => checkpoint::save(path, fingerprint, done),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_types::FleetSeed;

    fn tiny_config() -> FleetConfig {
        let mut config = FleetConfig::small(FleetSeed(77), 6);
        config.run_duration = vs_types::SimTime::from_millis(500);
        config
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let one = FleetRunner::new(tiny_config(), 1).run().unwrap();
        let four = FleetRunner::new(tiny_config(), 4).run().unwrap();
        assert_eq!(one.summaries, four.summaries);
        assert_eq!(one.summaries.len(), 6);
        assert!(one.summaries.windows(2).all(|w| w[0].chip < w[1].chip));
    }

    #[test]
    fn streaming_sees_every_chip_exactly_once() {
        let mut seen = Vec::new();
        let result = FleetRunner::new(tiny_config(), 2)
            .run_streaming(|s| seen.push(s.chip))
            .unwrap();
        assert_eq!(seen.len(), 6);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        assert_eq!(result.simulated, 6);
        assert_eq!(result.resumed, 0);
    }

    #[test]
    fn checkpoint_resume_skips_completed_chips_and_matches_fresh_run() {
        let path = scratch("resume.ckpt");
        let _ = std::fs::remove_file(&path);

        // Run the first half and checkpoint it.
        let mut half = tiny_config();
        half.num_chips = 3;
        FleetRunner::new(half, 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();

        // Resume into the full fleet: only the second half is simulated.
        let resumed = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.simulated, 3);

        let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
        assert_eq!(
            resumed.summaries, fresh.summaries,
            "a resumed fleet must be bit-identical to a fresh one"
        );
    }

    #[test]
    fn checkpoint_from_other_config_is_refused() {
        let path = scratch("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        FleetRunner::new(tiny_config(), 1)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        let other = FleetConfig {
            seed: FleetSeed(78),
            ..tiny_config()
        };
        let err = FleetRunner::new(other, 1)
            .with_checkpoint(path.clone())
            .run();
        assert!(matches!(
            err,
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn stats_shortcut_aggregates() {
        let config = tiny_config();
        let result = FleetRunner::new(config.clone(), 2).run().unwrap();
        let stats = result.stats(&config);
        assert_eq!(stats.num_chips, 6);
        assert_eq!(stats.healthy_chips, 6);
    }
}
