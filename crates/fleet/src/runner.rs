//! The fleet execution engine: shard a chip population across worker
//! threads, stream summaries as chips complete, checkpoint progress.
//!
//! # Determinism under any sharding
//!
//! Workers claim chips dynamically from a shared atomic counter (natural
//! load balancing — die-to-die variation makes chip runtimes uneven), and
//! each chip is simulated by the pure function
//! [`simulate_chip`](crate::simulate_chip). Completion *order* therefore
//! varies run to run, but completion *content* cannot; the aggregate is
//! computed over chip-id-sorted summaries, so fleet results are
//! bit-identical for any worker count. `tests/determinism.rs` asserts
//! this end to end.
//!
//! # Graceful degradation
//!
//! Every chip job runs under [`std::panic::catch_unwind`]: a panicking
//! job (injected via [`FaultPlan::worker_panic`](vs_faults::FaultPlan) or
//! organic) kills neither its worker nor the fleet. Failed jobs are
//! retried with bounded backoff; chips that keep failing are quarantined
//! and the run completes with partial results plus an explicit
//! [`DegradationReport`]. Retry and quarantine decisions depend only on
//! per-chip attempt counts — never on scheduling — so degraded results
//! are as deterministic as clean ones.
//!
//! # Supervision & durability
//!
//! Three opt-in guards (built on `vs-guard`) harden long runs:
//!
//! * [`with_cancel`](FleetRunner::with_cancel) — a cooperative
//!   cancellation token (wire it to Ctrl-C with
//!   [`vs_guard::install_ctrl_c`]) checked between claims and between
//!   simulation slices. An interrupted run flushes its progress and
//!   returns partial results with `degradation.interrupted` set.
//! * [`with_deadline`](FleetRunner::with_deadline) — a wall-clock
//!   watchdog gives every job attempt a heartbeat budget; a job that
//!   goes silent past it is cancelled (never killed), retried under the
//!   normal retry policy, and quarantined if it keeps hanging — the rest
//!   of the fleet never stalls.
//! * [`with_journal`](FleetRunner::with_journal) — a write-ahead journal
//!   fsyncs each finished chip, closing the up-to-`checkpoint_every`
//!   window a SIGKILL could otherwise lose; resume replays it and
//!   compacts it into the checkpoint.
//!
//! Wall-clock guard decisions affect *which* chips complete, never their
//! contents, and guard telemetry is emitted in sorted order after the
//! per-chip streams — traces stay byte-identical across worker counts.

use crate::aggregate::PopulationStats;
use crate::checkpoint::{self, CheckpointError};
use crate::config::FleetConfig;
use crate::degrade::DegradationReport;
use crate::job::simulate_chip_guarded;
use crate::journal::{replay_journal_on, ChipJournal};
use crate::summary::ChipSummary;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;
use vs_guard::vfs::{self, VfsHandle};
use vs_guard::{CancelToken, Watchdog};
use vs_obs::flight::{
    write_bundle_on, PostmortemBundle, PostmortemTrigger, DEFAULT_FLIGHT_CAPACITY,
};
use vs_obs::span::{job_span, lane_of, lane_span, ROOT};
use vs_sentinel::{SentinelConfig, SentinelMode, SentinelMonitor, Violation};
use vs_telemetry::{
    to_jsonl, EventCategory, EventFilter, EventRing, FleetProfile, LatencyHistogram,
    ProgressReport, ProgressSink, SilentProgress, SpanLevel, Stopwatch, TelemetryEvent,
    WorkerProfile,
};
use vs_types::{ChipId, SimTime};

/// Why a fleet run could not produce a (possibly degraded) result.
#[derive(Debug)]
pub enum FleetError {
    /// A checkpoint could not be *loaded* (corrupt file, wrong config).
    /// Save failures do not abort the run — they land in the
    /// [`DegradationReport`] instead.
    Checkpoint(CheckpointError),
    /// A chip job exhausted its retries under
    /// [`FleetRunner::with_fail_fast`]; without fail-fast the chip would
    /// have been quarantined and the run would have completed.
    JobFailed {
        /// The chip whose job kept failing.
        chip: ChipId,
        /// Failed attempts consumed (first try plus retries).
        attempts: u32,
        /// Description of the last failure.
        error: String,
    },
    /// The sentinel found a safety-invariant violation while running in
    /// [`SentinelMode::FailFast`]; in record mode the run would have
    /// completed with the violation in [`FleetResult::violations`].
    InvariantViolation {
        /// The first violation found (stream order on the violating chip).
        violation: Violation,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Checkpoint(e) => write!(f, "{e}"),
            FleetError::JobFailed {
                chip,
                attempts,
                error,
            } => write!(
                f,
                "chip {} failed {attempts} attempts (fail-fast): {error}",
                chip.0
            ),
            FleetError::InvariantViolation { violation } => {
                write!(f, "safety invariant violated (fail-fast): {violation}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Checkpoint(e) => Some(e),
            FleetError::JobFailed { .. } | FleetError::InvariantViolation { .. } => None,
        }
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> FleetError {
        FleetError::Checkpoint(e)
    }
}

/// The completed fleet: every chip's summary in chip-id order, plus how
/// the run was produced and what it survived.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// One summary per *successful* chip, sorted by chip id (quarantined
    /// chips have none — see `degradation`).
    pub summaries: Vec<ChipSummary>,
    /// Chips simulated successfully by this run (the rest came from a
    /// checkpoint or were quarantined).
    pub simulated: u64,
    /// Chips restored from the checkpoint.
    pub resumed: u64,
    /// What the run absorbed: retries, quarantined chips, failed
    /// checkpoint saves. Empty (`is_clean`) on an undisturbed run.
    pub degradation: DegradationReport,
    /// Safety-invariant violations the sentinel found, sorted by chip id
    /// (stream order within a chip). Always empty unless the runner was
    /// armed with [`FleetRunner::with_sentinel`]; in
    /// [`SentinelMode::FailFast`] the run aborts with
    /// [`FleetError::InvariantViolation`] instead of filling this.
    pub violations: Vec<Violation>,
    /// Postmortem flight-recorder bundles written this run, sorted by
    /// path. Always empty unless the runner was armed with
    /// [`FleetRunner::with_flight_recorder`].
    pub postmortems: Vec<PathBuf>,
}

impl FleetResult {
    /// Aggregates the fleet into population statistics. Quarantined chips
    /// have no summary and are therefore excluded from every
    /// distribution.
    pub fn stats(&self, config: &FleetConfig) -> PopulationStats {
        PopulationStats::from_summaries(&self.summaries, config.base_chip.mode.nominal_vdd())
    }
}

/// The observability side of a fleet run, kept strictly apart from the
/// deterministic results.
///
/// `events` is deterministic: per-chip streams are pure functions of the
/// config and are merged in chip-id order, so the serialized trace is
/// byte-identical for any worker count (retried chips contribute the
/// events of their successful attempt only; quarantined chips contribute
/// none). `profile` is wall-clock and varies run to run; callers must
/// never mix it into determinism-checked output.
#[derive(Debug, Clone, Default)]
pub struct FleetTrace {
    /// Telemetry events of every chip simulated this run, merged in
    /// chip-id order (chips restored from a checkpoint have no events).
    pub events: Vec<TelemetryEvent>,
    /// Wall-clock profile: per-worker busy/steal/idle and job latency.
    pub profile: FleetProfile,
}

impl FleetTrace {
    /// Serializes the (deterministic) event stream as JSONL — the exact
    /// bytes `repro --trace FILE` writes.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }
}

/// Marker payload for plan-scheduled worker panics, so the quiet panic
/// hook can tell them apart from organic ones (which keep the default
/// backtrace output).
struct InjectedPanic;

/// Suppresses default panic output for [`InjectedPanic`] payloads only.
/// Installed at most once per process, the first time a fleet with
/// scheduled worker panics runs.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Human-readable description of a caught panic payload.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if payload.downcast_ref::<InjectedPanic>().is_some() {
        "injected worker panic".to_owned()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_owned()
    }
}

/// Wall-clock backoff before retry `attempt` (1-based): 5 ms doubling,
/// capped at 40 ms. Wall time never feeds into simulated results, so the
/// backoff cannot perturb determinism.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis((5u64 << attempt.saturating_sub(1).min(3)).min(40))
}

/// What one claimed chip produced.
enum JobOutcome {
    /// The job succeeded (possibly after retries).
    Done {
        summary: ChipSummary,
        events: Vec<TelemetryEvent>,
        failed_attempts: u32,
        /// Attempt indices the watchdog cancelled before success.
        fired_attempts: Vec<u32>,
    },
    /// The job failed every attempt; the chip is quarantined.
    Failed {
        chip: ChipId,
        attempts: u32,
        error: String,
        /// Attempt indices the watchdog cancelled.
        fired_attempts: Vec<u32>,
    },
    /// The run-wide token was cancelled mid-job; the chip is neither done
    /// nor failed, and the run winds down with partial results.
    Cancelled,
}

/// Drives a fleet of chips across a pool of worker threads.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: FleetConfig,
    workers: usize,
    checkpoint: Option<PathBuf>,
    /// Completed chips between checkpoint saves.
    checkpoint_every: u64,
    /// Retries granted per chip after its first failed attempt.
    max_retries: u32,
    /// Abort the run on the first quarantined chip instead of degrading.
    fail_fast: bool,
    /// Run-wide cooperative cancellation token (Ctrl-C).
    cancel: Option<CancelToken>,
    /// Per-attempt wall-clock heartbeat budget; silence past it means the
    /// watchdog cancels the attempt.
    deadline: Option<Duration>,
    /// Write-ahead journal path: one fsynced record per finished chip.
    journal: Option<PathBuf>,
    /// Online safety-invariant monitoring of every chip's event stream.
    sentinel: Option<SentinelConfig>,
    /// Causal span tracing: `Some(job)` threads job → lane → chip →
    /// tick-batch spans through the trace under this job id.
    spans: Option<u64>,
    /// Crash flight recorder: postmortem bundles are written into this
    /// directory on sentinel violations, worker panics, and watchdog
    /// cancellations.
    flight: Option<PathBuf>,
    /// Filesystem backend for every durability path (checkpoint,
    /// journal, postmortem bundles). The production default is the real
    /// filesystem; the crash-consistency checker substitutes a recorder.
    vfs: VfsHandle,
}

impl FleetRunner {
    /// A runner over `config` with `workers` threads (0 is treated as 1).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid; use [`FleetRunner::try_new`] to
    /// handle the error as data instead.
    pub fn new(config: FleetConfig, workers: usize) -> FleetRunner {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        FleetRunner {
            config,
            workers: workers.max(1),
            checkpoint: None,
            checkpoint_every: 32,
            max_retries: 2,
            fail_fast: false,
            cancel: None,
            deadline: None,
            journal: None,
            sentinel: None,
            spans: None,
            flight: None,
            vfs: vfs::std_fs(),
        }
    }

    /// A runner over `config` with `workers` threads, rejecting invalid
    /// configurations as a [`vs_types::ConfigError`] instead of
    /// panicking.
    pub fn try_new(
        config: FleetConfig,
        workers: usize,
    ) -> Result<FleetRunner, vs_types::ConfigError> {
        config.validate()?;
        Ok(FleetRunner::new(config, workers))
    }

    /// Enables checkpoint/resume at `path`: existing progress there is
    /// restored (refusing files from a different config), and progress is
    /// saved periodically and at completion. Save failures never abort
    /// the run; they are reported in the result's [`DegradationReport`].
    pub fn with_checkpoint(mut self, path: PathBuf) -> FleetRunner {
        self.checkpoint = Some(path);
        self
    }

    /// Sets how many chip completions elapse between checkpoint saves.
    pub fn with_checkpoint_every(mut self, chips: u64) -> FleetRunner {
        self.checkpoint_every = chips.max(1);
        self
    }

    /// Sets the retry budget per chip (default 2): a job may fail this
    /// many times *after* its first attempt before the chip is
    /// quarantined.
    pub fn with_max_retries(mut self, retries: u32) -> FleetRunner {
        self.max_retries = retries;
        self
    }

    /// Aborts the run with [`FleetError::JobFailed`] as soon as any chip
    /// exhausts its retries, instead of quarantining it and completing
    /// with partial results.
    pub fn with_fail_fast(mut self, fail_fast: bool) -> FleetRunner {
        self.fail_fast = fail_fast;
        self
    }

    /// Attaches a run-wide cancellation token. When it is cancelled
    /// (e.g. by Ctrl-C via [`vs_guard::install_ctrl_c`]), workers stop
    /// claiming chips, in-flight jobs wind down at their next slice
    /// boundary, progress is flushed to the checkpoint/journal, and the
    /// run returns partial results with `degradation.interrupted` set.
    pub fn with_cancel(mut self, token: CancelToken) -> FleetRunner {
        self.cancel = Some(token);
        self
    }

    /// Gives every job attempt a wall-clock heartbeat budget, supervised
    /// by a watchdog thread. An attempt that goes silent longer than
    /// `deadline` is cooperatively cancelled — never killed — then
    /// retried under the normal retry policy and quarantined if it keeps
    /// hanging. Wall time never feeds simulated results: the watchdog
    /// decides *whether* a chip completes, not *what* it computes.
    pub fn with_deadline(mut self, deadline: Duration) -> FleetRunner {
        self.deadline = Some(deadline.max(Duration::from_millis(1)));
        self
    }

    /// Enables the crash-safe write-ahead journal at `path`: each
    /// finished chip is appended and fsynced before the run moves on, so
    /// resume after SIGKILL recovers every finished chip even if the
    /// periodic checkpoint never got to save them. On start the journal
    /// is replayed, merged with the checkpoint, and compacted into it.
    pub fn with_journal(mut self, path: PathBuf) -> FleetRunner {
        self.journal = Some(path);
        self
    }

    /// Arms the online safety sentinel: every chip's telemetry stream is
    /// checked against the invariant catalogue of [`vs_sentinel`] as the
    /// chip completes, and checkpoint/journal records are cross-checked
    /// on resume. Violations land in [`FleetResult::violations`] (sorted
    /// by chip id, so the list is identical for any worker count); in
    /// [`SentinelMode::FailFast`] the first violating chip aborts the run
    /// with [`FleetError::InvariantViolation`] instead.
    ///
    /// The sentinel widens the *recording* filter of a
    /// [`run_reporting`](FleetRunner::run_reporting) call by
    /// [`SentinelConfig::required_categories`] internally, then strips the
    /// extra events before they reach the returned trace — the trace (and
    /// its byte-identity across worker counts) is unchanged by arming the
    /// sentinel.
    pub fn with_sentinel(mut self, config: SentinelConfig) -> FleetRunner {
        self.sentinel = Some(config);
        self
    }

    /// Arms causal span tracing under job id `job` (a daemon job number;
    /// 0 for standalone runs). A [`run_reporting`](FleetRunner::run_reporting)
    /// trace then carries the job → lane → chip → tick-batch span
    /// hierarchy: span ids are pure functions of position in the
    /// hierarchy (the "lane" is `chip mod LANES`, never the physical
    /// worker), and causality rides in explicit `id`/`parent` links, so
    /// the same tree reconstructs from the merged trace under any worker
    /// count. Span events live in their own
    /// [`EventCategory::Span`] category, which
    /// [`EventFilter::all`] deliberately excludes — arming spans never
    /// changes the bytes of a trace that did not ask for them, and
    /// stripping `span` events from a span-armed trace yields the plain
    /// trace byte for byte.
    pub fn with_spans(mut self, job: u64) -> FleetRunner {
        self.spans = Some(job);
        self
    }

    /// Arms the crash flight recorder: every chip records the full event
    /// taxonomy internally, and when a chip trips a sentinel violation,
    /// exhausts its retries (panic or hang), or needs a watchdog cancel
    /// on the way to success, the last
    /// [`DEFAULT_FLIGHT_CAPACITY`] of its events are dumped into `dir`
    /// as a postmortem bundle together with the config fingerprint and
    /// the violation context. Bundles are written with the vs-guard
    /// journal discipline (per-line CRC frames, temp + fsync + rename)
    /// and their bytes are a pure function of the config — identical for
    /// any worker count. The widened internal recording is stripped
    /// before events reach the returned trace, so arming the recorder
    /// changes no trace bytes.
    pub fn with_flight_recorder(mut self, dir: PathBuf) -> FleetRunner {
        self.flight = Some(dir);
        self
    }

    /// Routes every durability path (checkpoint saves, journal appends,
    /// postmortem bundles) through `vfs` instead of the real filesystem.
    /// The crash-consistency checker uses this to record a sweep's
    /// complete mutation stream on a [`vs_guard::vfs::SimFs`].
    pub fn with_vfs(mut self, vfs: VfsHandle) -> FleetRunner {
        self.vfs = vfs;
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the whole fleet to completion.
    pub fn run(&self) -> Result<FleetResult, FleetError> {
        self.run_streaming(|_| {})
    }

    /// Runs the fleet, invoking `on_chip` (on the calling thread) for each
    /// newly simulated chip as it completes. Completion order is
    /// scheduling-dependent; summary *contents* are not.
    pub fn run_streaming(
        &self,
        mut on_chip: impl FnMut(&ChipSummary),
    ) -> Result<FleetResult, FleetError> {
        let mut progress = SilentProgress;
        self.run_core(EventFilter::none(), &mut on_chip, &mut progress)
            .map(|(result, _)| result)
    }

    /// Runs the fleet with telemetry: per-chip event streams (kept per
    /// `filter`, merged in chip-id order — byte-identical for any worker
    /// count), a wall-clock profile, and pluggable progress reporting.
    pub fn run_reporting(
        &self,
        filter: EventFilter,
        progress: &mut dyn ProgressSink,
    ) -> Result<(FleetResult, FleetTrace), FleetError> {
        self.run_core(filter, &mut |_| {}, progress)
    }

    fn run_core(
        &self,
        filter: EventFilter,
        on_chip: &mut dyn FnMut(&ChipSummary),
        progress: &mut dyn ProgressSink,
    ) -> Result<(FleetResult, FleetTrace), FleetError> {
        let fingerprint = self.config.fingerprint();
        if !self.config.faults.worker_panics().is_empty() {
            install_quiet_panic_hook();
        }
        let mut degradation = DegradationReport::default();
        // Guard decisions, buffered separately from the per-chip streams
        // and appended in sorted order so the trace stays byte-identical
        // for any worker count.
        let mut guard_events: Vec<TelemetryEvent> = Vec::new();
        let mut compactions: Vec<TelemetryEvent> = Vec::new();
        // Transient checkpoint-save failures still owed by the fault
        // plan; consumed by `save_with_retry` in (deterministic) save
        // order.
        let mut injected_io = self.config.faults.checkpoint_io_errors();
        // Three filter layers. `emit_filter` is what the returned trace
        // keeps: the caller's filter, widened by the span category when
        // span tracing is armed (spans are additive — stripping them
        // yields the caller's exact trace). `job_filter` is what jobs
        // *record*: the sentinel must see its input categories and the
        // flight recorder must see everything, so both widen it further;
        // the extra events are stripped back down to `emit_filter`
        // before they reach the returned trace.
        let emit_filter = match self.spans {
            Some(_) => filter.union(EventFilter::of(&[EventCategory::Span])),
            None => filter,
        };
        let mut job_filter = emit_filter;
        if self.sentinel.is_some() {
            job_filter = job_filter.union(SentinelConfig::required_categories());
        }
        if self.flight.is_some() {
            job_filter = job_filter.union(EventFilter::all());
        }
        let mut violations: Vec<Violation> = Vec::new();
        let mut postmortems: Vec<PathBuf> = Vec::new();

        // Restore prior progress, dropping chips beyond the current fleet
        // size (a shrunk re-run) — the fingerprint pins everything else.
        // Header/format errors are fatal (resuming without the saved work
        // would silently recompute results); damaged *records* only skip
        // that chip, which is then re-simulated.
        let mut done: Vec<ChipSummary> = match &self.checkpoint {
            Some(path) if self.vfs.exists(path) => {
                let report = checkpoint::load_report_on(&self.vfs, path, fingerprint)?;
                for (line, warning) in report.warnings {
                    degradation
                        .corrupt_records
                        .push(format!("checkpoint line {line}: {warning}"));
                }
                report
                    .summaries
                    .into_iter()
                    .filter(|s| s.chip.0 < self.config.num_chips)
                    .collect()
            }
            _ => Vec::new(),
        };

        // Replay the write-ahead journal and merge it with the
        // checkpoint: the union is every chip that durably finished
        // before the previous process died.
        let mut journal: Option<ChipJournal> = None;
        if let Some(jpath) = &self.journal {
            let mut replayed = 0u64;
            if self.vfs.exists(jpath) {
                let replay = replay_journal_on(&self.vfs, jpath, fingerprint)?;
                for (line, warning) in replay.warnings {
                    degradation
                        .corrupt_records
                        .push(format!("journal line {line}: {warning}"));
                }
                for summary in replay.summaries {
                    if summary.chip.0 >= self.config.num_chips {
                        continue;
                    }
                    match done.iter().find(|s| s.chip == summary.chip) {
                        // A chip present in both stores must be identical
                        // in both — the journal only ever holds records
                        // the checkpoint absorbs verbatim at compaction.
                        // Divergence means one of the two is corrupt; the
                        // sentinel surfaces it instead of silently
                        // preferring the checkpoint copy.
                        Some(existing) => {
                            if self.sentinel.is_some() && *existing != summary {
                                violations.push(Violation::checkpoint_mismatch(
                                    summary.chip,
                                    format!(
                                        "journal and checkpoint disagree about chip {}",
                                        summary.chip.0
                                    ),
                                ));
                            }
                        }
                        None => {
                            done.push(summary);
                            replayed += 1;
                        }
                    }
                }
            }
            done.sort_by_key(|s| s.chip);
            if replayed > 0 && filter.accepts(EventCategory::Guard) {
                guard_events.push(TelemetryEvent::JournalReplayed { chips: replayed });
            }
            // Compact: persist the merged set into the checkpoint, and
            // only then truncate the journal — a crash in between leaves
            // harmless duplicates, never a gap.
            let compacted = if replayed > 0 {
                match self.save_with_retry(fingerprint, &done, &mut injected_io) {
                    Ok(()) => self.checkpoint.is_some(),
                    Err(e) => {
                        degradation.checkpoint_failures.push(e.to_string());
                        false
                    }
                }
            } else {
                self.checkpoint.is_some() || !self.vfs.exists(jpath)
            };
            journal = Some(if compacted {
                let j = ChipJournal::create_on(&self.vfs, jpath, fingerprint)
                    .map_err(CheckpointError::Io)?;
                if !done.is_empty() && filter.accepts(EventCategory::Guard) {
                    compactions.push(TelemetryEvent::JournalCompacted {
                        chips: done.len() as u64,
                    });
                }
                j
            } else {
                // No checkpoint to absorb the records (or the save
                // failed): keep appending, the journal stays the only
                // durable copy.
                ChipJournal::open_append_on(&self.vfs, jpath).map_err(CheckpointError::Io)?
            });
        }
        if let Some(scfg) = &self.sentinel {
            if scfg.mode == SentinelMode::FailFast {
                if let Some(v) = violations.first() {
                    return Err(FleetError::InvariantViolation {
                        violation: v.clone(),
                    });
                }
            }
        }
        let resumed = done.len() as u64;
        let todo: Vec<ChipId> = {
            let have: std::collections::HashSet<u64> = done.iter().map(|s| s.chip.0).collect();
            (0..self.config.num_chips)
                .filter(|i| !have.contains(i))
                .map(ChipId)
                .collect()
        };

        let next = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<JobOutcome>();
        let config = &self.config;
        let todo_ref = &todo;
        let max_retries = self.max_retries;
        let run_token = self.cancel.clone().unwrap_or_default();
        let run_token = &run_token;
        // One watchdog thread supervises every attempt; poll fast enough
        // to notice a hang well within one budget.
        let supervisor = self.deadline.map(|budget| {
            let poll = (budget / 8).clamp(Duration::from_millis(1), Duration::from_secs(1));
            (Watchdog::spawn(poll), budget)
        });
        let supervisor = &supervisor;
        // Per-chip event streams, buffered until the run completes and
        // merged in chip-id order (never completion order) so the trace is
        // independent of scheduling.
        let mut traces: Vec<(ChipId, Vec<TelemetryEvent>)> = Vec::new();
        let mut profile = FleetProfile::default();
        let mut fatal: Option<FleetError> = None;
        let run_watch = Stopwatch::start();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..self.workers.min(todo_ref.len().max(1)) {
                let tx = tx.clone();
                let next = &next;
                handles.push(scope.spawn(move || {
                    let mut stats = WorkerProfile {
                        worker,
                        ..WorkerProfile::default()
                    };
                    let mut latency = LatencyHistogram::new();
                    let wall = Stopwatch::start();
                    loop {
                        if run_token.is_cancelled() {
                            break;
                        }
                        let claim = Stopwatch::start();
                        let idx = next.fetch_add(1, Ordering::Relaxed) as usize;
                        let chip = todo_ref.get(idx).copied();
                        stats.steal_ns += claim.elapsed_ns();
                        let Some(chip) = chip else {
                            break;
                        };
                        // The plan decides how many attempts this chip's
                        // job hangs or panics before succeeding —
                        // worker-count independent, so retry outcomes are
                        // deterministic. Hangs are injected first, then
                        // panics.
                        let planned_hangs = config.faults.hang_attempts(chip);
                        let planned_panics = config.faults.panic_attempts(chip);
                        let mut failed_attempts = 0u32;
                        let mut fired_attempts: Vec<u32> = Vec::new();
                        let busy = Stopwatch::start();
                        let out = loop {
                            // Fresh supervision per attempt: the job's
                            // token is a child of the run token, so both
                            // the watchdog (directly) and Ctrl-C
                            // (inherited) can stop it.
                            let handle = supervisor
                                .as_ref()
                                .map(|(w, budget)| w.register(chip.0, *budget, run_token));
                            let job_token = handle
                                .as_ref()
                                .map(|h| h.token().clone())
                                .unwrap_or_else(|| run_token.child());
                            let attempt =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if failed_attempts < planned_hangs {
                                        // Injected hang: go silent (no
                                        // heartbeats) until the watchdog
                                        // or a run-wide interrupt cancels
                                        // this attempt.
                                        while !job_token.is_cancelled() {
                                            std::thread::sleep(Duration::from_millis(1));
                                        }
                                        return None;
                                    }
                                    if failed_attempts < planned_hangs + planned_panics {
                                        std::panic::panic_any(InjectedPanic);
                                    }
                                    simulate_chip_guarded(
                                        config,
                                        chip,
                                        job_filter,
                                        &job_token,
                                        || {
                                            if let Some(h) = &handle {
                                                h.beat();
                                            }
                                        },
                                    )
                                }));
                            let fired = handle.as_ref().is_some_and(|h| h.fired());
                            drop(handle);
                            match attempt {
                                Ok(Some((summary, events))) => {
                                    break JobOutcome::Done {
                                        summary,
                                        events,
                                        failed_attempts,
                                        fired_attempts,
                                    }
                                }
                                Ok(None) if fired && !run_token.is_cancelled() => {
                                    // The watchdog cancelled a hung or
                                    // too-slow attempt: a failure like any
                                    // other, minus the panic.
                                    fired_attempts.push(failed_attempts);
                                    failed_attempts = failed_attempts.saturating_add(1);
                                    if failed_attempts > max_retries {
                                        break JobOutcome::Failed {
                                            chip,
                                            attempts: failed_attempts,
                                            error: "watchdog: job exceeded its deadline".to_owned(),
                                            fired_attempts,
                                        };
                                    }
                                    std::thread::sleep(backoff(failed_attempts));
                                }
                                Ok(None) => break JobOutcome::Cancelled,
                                Err(payload) => {
                                    failed_attempts = failed_attempts.saturating_add(1);
                                    if failed_attempts > max_retries {
                                        break JobOutcome::Failed {
                                            chip,
                                            attempts: failed_attempts,
                                            error: describe_panic(payload.as_ref()),
                                            fired_attempts,
                                        };
                                    }
                                    std::thread::sleep(backoff(failed_attempts));
                                }
                            }
                        };
                        let busy_ns = busy.elapsed_ns();
                        stats.busy_ns += busy_ns;
                        stats.jobs += 1;
                        latency.observe_ns(busy_ns);
                        // A send can only fail if the receiver hung up,
                        // which only happens on fail-fast abort; the
                        // remaining work is moot either way.
                        let send = Stopwatch::start();
                        let disconnected = tx.send(out).is_err();
                        stats.steal_ns += send.elapsed_ns();
                        if disconnected {
                            break;
                        }
                    }
                    stats.wall_ns = wall.elapsed_ns();
                    (stats, latency)
                }));
            }
            drop(tx);

            let mut since_save = 0u64;
            let mut completed = resumed;
            for outcome in rx {
                match outcome {
                    JobOutcome::Done {
                        summary,
                        mut events,
                        failed_attempts,
                        fired_attempts,
                    } => {
                        let watchdog_fires = fired_attempts.len();
                        if !fired_attempts.is_empty() {
                            degradation
                                .watchdog_fired
                                .push((summary.chip, fired_attempts.len() as u32));
                            if filter.accepts(EventCategory::Guard) {
                                for attempt in fired_attempts {
                                    guard_events.push(TelemetryEvent::WatchdogFired {
                                        chip: summary.chip,
                                        attempt,
                                    });
                                }
                            }
                        }
                        if failed_attempts > 0 {
                            degradation.retried.push((summary.chip, failed_attempts));
                        }
                        // Walk the chip's stream through the sentinel
                        // before stripping it back down to the caller's
                        // filter. Violations are re-sorted by chip id at
                        // the end of the run, so completion order (and
                        // therefore worker count) cannot leak into them.
                        let mut chip_violations: Vec<Violation> = Vec::new();
                        if let Some(scfg) = &self.sentinel {
                            let mut monitor = SentinelMonitor::for_chip(*scfg, summary.chip);
                            for e in &events {
                                monitor.observe(e);
                            }
                            monitor.finish();
                            chip_violations = monitor.into_violations();
                        }
                        // Flight recorder: dump the postmortem *before*
                        // stream stripping and before a fail-fast abort,
                        // so the bundle always holds the full-taxonomy
                        // event window of the trigger.
                        if let Some(dir) = &self.flight {
                            let trigger = if !chip_violations.is_empty() {
                                Some((PostmortemTrigger::Violation, chip_violations[0].to_string()))
                            } else if watchdog_fires > 0 {
                                Some((
                                    PostmortemTrigger::Watchdog,
                                    format!(
                                        "watchdog cancelled {watchdog_fires} attempt(s) \
                                         before success"
                                    ),
                                ))
                            } else {
                                None
                            };
                            if let Some((trigger, detail)) = trigger {
                                let mut bundle =
                                    PostmortemBundle::new(trigger, summary.chip.0, fingerprint);
                                bundle.detail = detail;
                                bundle.violations =
                                    chip_violations.iter().map(|v| v.to_string()).collect();
                                let mut ring = EventRing::new(DEFAULT_FLIGHT_CAPACITY);
                                for e in &events {
                                    ring.push(*e);
                                }
                                bundle.dropped = ring.dropped();
                                for e in ring.drain() {
                                    bundle.push_event(&e);
                                }
                                match write_bundle_on(&self.vfs, dir, &bundle) {
                                    Ok(p) => postmortems.push(p),
                                    Err(e) => degradation
                                        .checkpoint_failures
                                        .push(format!("postmortem write failed: {e}")),
                                }
                            }
                        }
                        if let Some(scfg) = &self.sentinel {
                            if !chip_violations.is_empty() && scfg.mode == SentinelMode::FailFast {
                                fatal = Some(FleetError::InvariantViolation {
                                    violation: chip_violations.remove(0),
                                });
                                break;
                            }
                        }
                        violations.append(&mut chip_violations);
                        if job_filter != emit_filter {
                            events.retain(|e| emit_filter.accepts(e.category()));
                        }
                        completed += 1;
                        on_chip(&summary);
                        progress.chip_done(&ProgressReport {
                            chip: summary.chip,
                            completed,
                            total: self.config.num_chips,
                        });
                        if !events.is_empty() {
                            traces.push((summary.chip, events));
                        }
                        // Journal first, checkpoint second: when this
                        // iteration ends the chip is durable even if the
                        // process dies before the next periodic save.
                        if let Some(j) = journal.as_mut() {
                            if let Err(e) = j.append(&summary) {
                                degradation
                                    .checkpoint_failures
                                    .push(format!("journal append failed: {e}"));
                            }
                        }
                        done.push(summary);
                        since_save += 1;
                        if since_save >= self.checkpoint_every {
                            since_save = 0;
                            match self.save_with_retry(fingerprint, &done, &mut injected_io) {
                                Ok(()) => {
                                    self.compact_journal(
                                        fingerprint,
                                        done.len() as u64,
                                        &mut journal,
                                        &mut degradation,
                                        filter,
                                        &mut compactions,
                                    );
                                }
                                Err(e) => {
                                    degradation.checkpoint_failures.push(e.to_string());
                                }
                            }
                        }
                    }
                    JobOutcome::Failed {
                        chip,
                        attempts,
                        error,
                        fired_attempts,
                    } => {
                        if !fired_attempts.is_empty() {
                            degradation
                                .watchdog_fired
                                .push((chip, fired_attempts.len() as u32));
                            if filter.accepts(EventCategory::Guard) {
                                for attempt in fired_attempts {
                                    guard_events
                                        .push(TelemetryEvent::WatchdogFired { chip, attempt });
                                }
                            }
                        }
                        // A quarantined chip gets a metadata-only bundle:
                        // the attempt's recorder died with it, and
                        // inventing a partial stream would break bundle
                        // determinism.
                        if let Some(dir) = &self.flight {
                            let trigger = if error.starts_with("watchdog") {
                                PostmortemTrigger::Watchdog
                            } else {
                                PostmortemTrigger::Panic
                            };
                            let mut bundle = PostmortemBundle::new(trigger, chip.0, fingerprint);
                            bundle.detail =
                                format!("chip quarantined after {attempts} attempts: {error}");
                            match write_bundle_on(&self.vfs, dir, &bundle) {
                                Ok(p) => postmortems.push(p),
                                Err(e) => degradation
                                    .checkpoint_failures
                                    .push(format!("postmortem write failed: {e}")),
                            }
                        }
                        if self.fail_fast {
                            fatal = Some(FleetError::JobFailed {
                                chip,
                                attempts,
                                error,
                            });
                            // Dropping the receiver disconnects every
                            // worker's sender; they wind down after their
                            // in-flight job.
                            break;
                        }
                        degradation.quarantined.push(chip);
                    }
                    JobOutcome::Cancelled => {
                        degradation.interrupted = true;
                    }
                }
            }
            for handle in handles {
                let (stats, latency) = handle.join().expect("fleet worker panicked");
                profile.workers.push(stats);
                profile.job_latency.merge(&latency);
            }
        });
        if run_token.is_cancelled() {
            degradation.interrupted = true;
        }
        if let Some(e) = fatal {
            return Err(e);
        }
        profile.wall_ns = run_watch.elapsed_ns();
        progress.finished(self.config.num_chips);

        done.sort_by_key(|s| s.chip);
        let simulated = done.len() as u64 - resumed;
        if simulated > 0 {
            // Final flush — on an interrupted run this is what makes the
            // partial progress resumable.
            match self.save_with_retry(fingerprint, &done, &mut injected_io) {
                Ok(()) => self.compact_journal(
                    fingerprint,
                    done.len() as u64,
                    &mut journal,
                    &mut degradation,
                    filter,
                    &mut compactions,
                ),
                Err(e) => degradation.checkpoint_failures.push(e.to_string()),
            }
        }
        if degradation.interrupted && filter.accepts(EventCategory::Guard) {
            compactions.push(TelemetryEvent::RunInterrupted {
                completed: done.len() as u64,
                total: self.config.num_chips,
            });
        }
        degradation.normalize();
        traces.sort_by_key(|(chip, _)| *chip);
        // Guard events follow the per-chip streams: replay first, then
        // watchdog fires in (chip, attempt) order, then compactions in
        // occurrence order (their counts are worker-count independent).
        guard_events.sort_by_key(|e| match e {
            TelemetryEvent::WatchdogFired { chip, attempt } => (1u8, chip.0, *attempt),
            _ => (0, 0, 0),
        });
        // Lane spans cover the virtual lanes that own at least one traced
        // chip; counts are per-lane event totals. Both are functions of
        // the (sorted) traces, never of scheduling.
        let mut lane_counts: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        if self.spans.is_some() {
            for (chip, ev) in &traces {
                *lane_counts.entry(lane_of(*chip)).or_insert(0) += ev.len() as u64;
            }
        }
        let mut events: Vec<TelemetryEvent> = traces.into_iter().flat_map(|(_, e)| e).collect();
        events.extend(guard_events);
        events.extend(compactions);
        if let Some(job) = self.spans {
            // The job span brackets the whole merged stream (guard events
            // included); lane spans bracket their chips' streams. All of
            // it is emitted at merge time in lane order, so the trace
            // stays byte-identical for any worker count.
            let jid = job_span(job);
            let mut wrapped = Vec::with_capacity(events.len() + 2 + 2 * lane_counts.len());
            wrapped.push(TelemetryEvent::SpanOpen {
                at: SimTime::ZERO,
                id: jid,
                parent: ROOT,
                level: SpanLevel::Job,
                ident: job,
            });
            for &lane in lane_counts.keys() {
                wrapped.push(TelemetryEvent::SpanOpen {
                    at: SimTime::ZERO,
                    id: lane_span(lane),
                    parent: jid,
                    level: SpanLevel::Lane,
                    ident: lane,
                });
            }
            wrapped.extend(events);
            for (&lane, &count) in &lane_counts {
                wrapped.push(TelemetryEvent::SpanClose {
                    at: self.config.run_duration,
                    id: lane_span(lane),
                    events: count,
                });
            }
            let enclosed = wrapped.len() as u64 - 1;
            wrapped.push(TelemetryEvent::SpanClose {
                at: self.config.run_duration,
                id: jid,
                events: enclosed,
            });
            events = wrapped;
        }
        // Stable sort: violations keep stream order within a chip, and
        // the overall list is independent of completion order.
        violations.sort_by_key(|v| v.chip.map_or(u64::MAX, |c| c.0));
        postmortems.sort();
        Ok((
            FleetResult {
                summaries: done,
                simulated,
                resumed,
                degradation,
                violations,
                postmortems,
            },
            FleetTrace { events, profile },
        ))
    }

    /// Saves the checkpoint, retrying transient I/O errors with bounded
    /// backoff. `injected` counts down the fault plan's scheduled
    /// checkpoint I/O errors; each save attempt consumes one before
    /// touching the disk, so injection order is deterministic.
    fn save_with_retry(
        &self,
        fingerprint: u64,
        done: &[ChipSummary],
        injected: &mut u32,
    ) -> Result<(), CheckpointError> {
        const SAVE_RETRIES: u32 = 2;
        let Some(path) = &self.checkpoint else {
            return Ok(());
        };
        let mut attempt = 0u32;
        loop {
            let result = if *injected > 0 {
                *injected -= 1;
                Err(CheckpointError::Io(std::io::Error::other(
                    "injected checkpoint I/O error",
                )))
            } else {
                checkpoint::save_on(&self.vfs, path, fingerprint, done)
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) => {
                    attempt += 1;
                    if attempt > SAVE_RETRIES {
                        return Err(e);
                    }
                    std::thread::sleep(backoff(attempt));
                }
            }
        }
    }

    /// Truncates the journal after its records were absorbed into a
    /// successfully saved checkpoint. Without a checkpoint the journal is
    /// the only durable copy and must keep growing instead.
    fn compact_journal(
        &self,
        fingerprint: u64,
        chips: u64,
        journal: &mut Option<ChipJournal>,
        degradation: &mut DegradationReport,
        filter: EventFilter,
        compactions: &mut Vec<TelemetryEvent>,
    ) {
        if self.checkpoint.is_none() {
            return;
        }
        let Some(j) = journal else {
            return;
        };
        let path = j.path().to_path_buf();
        match ChipJournal::create_on(&self.vfs, &path, fingerprint) {
            Ok(fresh) => {
                *j = fresh;
                if filter.accepts(EventCategory::Guard) {
                    compactions.push(TelemetryEvent::JournalCompacted { chips });
                }
            }
            Err(e) => degradation
                .checkpoint_failures
                .push(format!("journal compaction failed: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::replay_journal;
    use vs_faults::FaultPlan;
    use vs_types::FleetSeed;

    fn tiny_config() -> FleetConfig {
        let mut config = FleetConfig::small(FleetSeed(77), 6);
        config.run_duration = vs_types::SimTime::from_millis(500);
        config
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let one = FleetRunner::new(tiny_config(), 1).run().unwrap();
        let four = FleetRunner::new(tiny_config(), 4).run().unwrap();
        assert_eq!(one.summaries, four.summaries);
        assert_eq!(one.summaries.len(), 6);
        assert!(one.summaries.windows(2).all(|w| w[0].chip < w[1].chip));
        assert!(one.degradation.is_clean());
    }

    #[test]
    fn streaming_sees_every_chip_exactly_once() {
        let mut seen = Vec::new();
        let result = FleetRunner::new(tiny_config(), 2)
            .run_streaming(|s| seen.push(s.chip))
            .unwrap();
        assert_eq!(seen.len(), 6);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        assert_eq!(result.simulated, 6);
        assert_eq!(result.resumed, 0);
    }

    #[test]
    fn checkpoint_resume_skips_completed_chips_and_matches_fresh_run() {
        let path = scratch("resume.ckpt");
        let _ = std::fs::remove_file(&path);

        // Run the first half and checkpoint it.
        let mut half = tiny_config();
        half.num_chips = 3;
        FleetRunner::new(half, 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();

        // Resume into the full fleet: only the second half is simulated.
        let resumed = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.simulated, 3);

        let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
        assert_eq!(
            resumed.summaries, fresh.summaries,
            "a resumed fleet must be bit-identical to a fresh one"
        );
    }

    #[test]
    fn checkpoint_from_other_config_is_refused() {
        let path = scratch("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        FleetRunner::new(tiny_config(), 1)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        let other = FleetConfig {
            seed: FleetSeed(78),
            ..tiny_config()
        };
        let err = FleetRunner::new(other, 1)
            .with_checkpoint(path.clone())
            .run();
        assert!(matches!(
            err,
            Err(FleetError::Checkpoint(
                CheckpointError::FingerprintMismatch { .. }
            ))
        ));
    }

    #[test]
    fn stats_shortcut_aggregates() {
        let config = tiny_config();
        let result = FleetRunner::new(config.clone(), 2).run().unwrap();
        let stats = result.stats(&config);
        assert_eq!(stats.num_chips, 6);
        assert_eq!(stats.healthy_chips, 6);
    }

    #[test]
    fn injected_panics_are_retried_and_results_are_unchanged() {
        let clean = FleetRunner::new(tiny_config(), 2).run().unwrap();
        let mut config = tiny_config();
        config.faults = FaultPlan::new()
            .worker_panic(ChipId(1), 2)
            .worker_panic(ChipId(4), 1);
        let result = FleetRunner::new(config, 3).run().unwrap();
        assert_eq!(
            result.summaries, clean.summaries,
            "retried chips must produce bit-identical summaries"
        );
        assert_eq!(
            result.degradation.retried,
            vec![(ChipId(1), 2), (ChipId(4), 1)]
        );
        assert!(result.degradation.quarantined.is_empty());
        assert_eq!(result.degradation.attempts_absorbed(), 3);
    }

    #[test]
    fn doomed_chip_is_quarantined_with_partial_results() {
        let mut config = tiny_config();
        config.faults = FaultPlan::new().worker_panic(ChipId(2), u32::MAX);
        let result = FleetRunner::new(config.clone(), 2)
            .with_max_retries(1)
            .run()
            .unwrap();
        assert_eq!(result.degradation.quarantined, vec![ChipId(2)]);
        assert_eq!(result.summaries.len(), 5);
        assert!(result.summaries.iter().all(|s| s.chip != ChipId(2)));
        assert_eq!(result.simulated, 5);
        // The quarantined chip is excluded from population statistics.
        let stats = result.stats(&config);
        assert_eq!(stats.num_chips, 5);
        assert!(!result.degradation.is_clean());
    }

    #[test]
    fn fail_fast_aborts_on_a_doomed_chip() {
        let mut config = tiny_config();
        config.faults = FaultPlan::new().worker_panic(ChipId(0), u32::MAX);
        let err = FleetRunner::new(config, 2)
            .with_max_retries(1)
            .with_fail_fast(true)
            .run();
        match err {
            Err(FleetError::JobFailed { chip, attempts, .. }) => {
                assert_eq!(chip, ChipId(0));
                assert_eq!(attempts, 2);
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
    }

    #[test]
    fn hung_worker_is_watchdog_cancelled_then_retried_to_an_identical_result() {
        let clean = FleetRunner::new(tiny_config(), 2).run().unwrap();
        let mut config = tiny_config();
        config.faults = FaultPlan::new().worker_hang(ChipId(1), 1);
        let result = FleetRunner::new(config, 3)
            .with_deadline(Duration::from_secs(1))
            .run()
            .unwrap();
        assert_eq!(
            result.summaries, clean.summaries,
            "a watchdog-retried chip must produce a bit-identical summary"
        );
        assert_eq!(result.degradation.watchdog_fired, vec![(ChipId(1), 1)]);
        assert_eq!(result.degradation.retried, vec![(ChipId(1), 1)]);
        assert!(result.degradation.quarantined.is_empty());
    }

    #[test]
    fn chip_that_keeps_hanging_is_quarantined_without_stalling_the_fleet() {
        let mut config = tiny_config();
        config.faults = FaultPlan::new().worker_hang(ChipId(2), u32::MAX);
        let result = FleetRunner::new(config, 2)
            .with_max_retries(1)
            .with_deadline(Duration::from_secs(1))
            .run()
            .unwrap();
        assert_eq!(result.degradation.quarantined, vec![ChipId(2)]);
        assert_eq!(result.degradation.watchdog_fired, vec![(ChipId(2), 2)]);
        assert_eq!(result.summaries.len(), 5, "the rest of the fleet completes");
        assert!(result.summaries.iter().all(|s| s.chip != ChipId(2)));
    }

    #[test]
    fn cancelled_run_flushes_partial_progress_and_resumes_to_a_full_fleet() {
        let path = scratch("interrupt.ckpt");
        let journal = scratch("interrupt.journal");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&journal);
        let token = CancelToken::new();
        let cancel_after = token.clone();
        let mut seen = 0u32;
        let partial = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path.clone())
            .with_journal(journal.clone())
            .with_cancel(token)
            .run_streaming(|_| {
                seen += 1;
                if seen == 2 {
                    cancel_after.cancel();
                }
            })
            .unwrap();
        assert!(partial.degradation.interrupted);
        assert!(!partial.degradation.is_clean());
        let finished = partial.summaries.len();
        assert!(
            (2..6).contains(&finished),
            "interrupt after 2 chips must leave a partial fleet, got {finished}"
        );

        let resumed = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path.clone())
            .with_journal(journal.clone())
            .run()
            .unwrap();
        assert_eq!(resumed.resumed, finished as u64);
        let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
        assert_eq!(
            resumed.summaries, fresh.summaries,
            "resume after interrupt must match an undisturbed run bit for bit"
        );
    }

    #[test]
    fn pre_cancelled_run_completes_no_chips_but_reports_cleanly() {
        let token = CancelToken::new();
        token.cancel();
        let result = FleetRunner::new(tiny_config(), 2)
            .with_cancel(token)
            .run()
            .unwrap();
        assert!(result.summaries.is_empty());
        assert!(result.degradation.interrupted);
    }

    #[test]
    fn journal_records_are_recovered_and_compacted_into_the_checkpoint() {
        let journal = scratch("recover.journal");
        let path = scratch("recover.ckpt");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&path);

        // First run journals 3 chips with no checkpoint — as if the
        // process died before any periodic save.
        let mut half = tiny_config();
        half.num_chips = 3;
        FleetRunner::new(half, 2)
            .with_journal(journal.clone())
            .run()
            .unwrap();
        assert!(!path.exists());

        // Resume with both: the journal is replayed, merged, and
        // compacted into the checkpoint; only the rest is simulated.
        let resumed = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path.clone())
            .with_journal(journal.clone())
            .run()
            .unwrap();
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.simulated, 3);
        let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
        assert_eq!(resumed.summaries, fresh.summaries);

        // Compaction truncated the journal; the checkpoint now carries
        // everything.
        let replay = replay_journal(&journal, tiny_config().fingerprint()).unwrap();
        assert!(replay.summaries.is_empty());
        let saved = checkpoint::load(&path, tiny_config().fingerprint()).unwrap();
        assert_eq!(saved.len(), 6);
    }

    #[test]
    fn injected_checkpoint_io_errors_are_retried_transparently() {
        let path = scratch("ioerr.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut config = tiny_config();
        // Two transient failures: the final save's third attempt lands.
        config.faults = FaultPlan::new().checkpoint_io_error(2);
        let result = FleetRunner::new(config.clone(), 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        assert!(
            result.degradation.checkpoint_failures.is_empty(),
            "retries must absorb transient save errors: {:?}",
            result.degradation.checkpoint_failures
        );
        let saved = checkpoint::load(&path, config.fingerprint()).unwrap();
        assert_eq!(saved.len(), 6);
    }

    #[test]
    fn exhausted_checkpoint_io_errors_land_in_the_degradation_report() {
        let path = scratch("ioerr-exhausted.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut config = tiny_config();
        // Three failures exhaust one save's whole retry budget.
        config.faults = FaultPlan::new().checkpoint_io_error(3);
        let result = FleetRunner::new(config, 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        assert_eq!(result.summaries.len(), 6, "results survive save failures");
        assert_eq!(result.degradation.checkpoint_failures.len(), 1);
        assert!(result.degradation.checkpoint_failures[0].contains("injected"));
    }

    #[test]
    fn guard_trace_is_identical_for_any_worker_count() {
        let mut config = tiny_config();
        config.faults = FaultPlan::new().worker_hang(ChipId(1), 1);
        let run = |workers| {
            let mut progress = vs_telemetry::SilentProgress;
            let (_, trace) = FleetRunner::new(config.clone(), workers)
                .with_deadline(Duration::from_secs(1))
                .run_reporting(EventFilter::all(), &mut progress)
                .unwrap();
            trace.to_jsonl()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four, "guard events must not depend on scheduling");
        assert!(one.contains("watchdog_fired"));
    }

    #[test]
    fn sentinel_on_a_clean_fleet_finds_nothing_and_leaves_the_trace_alone() {
        let run = |sentinel: bool, workers: usize| {
            let mut progress = vs_telemetry::SilentProgress;
            let mut runner = FleetRunner::new(tiny_config(), workers);
            if sentinel {
                runner = runner.with_sentinel(tiny_config().sentinel_config());
            }
            let (result, trace) = runner
                .run_reporting(EventFilter::of(&[EventCategory::Ecc]), &mut progress)
                .unwrap();
            (result, trace.to_jsonl())
        };
        let (plain, plain_trace) = run(false, 2);
        let (armed, armed_trace) = run(true, 2);
        assert!(armed.violations.is_empty());
        assert_eq!(plain.summaries, armed.summaries);
        assert_eq!(
            plain_trace, armed_trace,
            "the sentinel's widened recording filter must not leak into the trace"
        );
        let (armed_four, _) = run(true, 4);
        assert_eq!(armed.violations, armed_four.violations);
    }

    #[test]
    fn sentinel_stays_clean_under_injected_chip_faults() {
        use vs_types::{CoreId, DomainId, SimTime};
        let mut config = tiny_config();
        config.faults = FaultPlan::new()
            .due_at(SimTime::from_millis(40), DomainId(0))
            .crash_at(SimTime::from_millis(90), CoreId(1))
            .droop_at(
                SimTime::from_millis(150),
                DomainId(0),
                vs_types::Millivolts(60),
                SimTime::from_millis(30),
            );
        let result = FleetRunner::new(config.clone(), 2)
            .with_sentinel(config.sentinel_config())
            .run()
            .unwrap();
        assert_eq!(result.summaries.len(), 6);
        assert!(
            result.violations.is_empty(),
            "recovery from injected faults must satisfy every invariant: {:?}",
            result.violations
        );
    }

    #[test]
    fn journal_checkpoint_divergence_is_a_consistency_violation() {
        use vs_sentinel::Invariant;
        // Builds a checkpoint+journal pair that disagree about chip 1:
        // the journal holds what the fleet really produced, the
        // checkpoint a record tampered after the fact.
        let plant = |tag: &str| {
            let journal = scratch(&format!("diverge-{tag}.journal"));
            let path = scratch(&format!("diverge-{tag}.ckpt"));
            let _ = std::fs::remove_file(&journal);
            let _ = std::fs::remove_file(&path);
            let mut half = tiny_config();
            half.num_chips = 3;
            FleetRunner::new(half, 2)
                .with_journal(journal.clone())
                .run()
                .unwrap();
            let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
            let mut tampered: Vec<ChipSummary> = fresh.summaries[..3].to_vec();
            tampered[1].correctable += 1;
            checkpoint::save(&path, tiny_config().fingerprint(), &tampered).unwrap();
            (path, journal)
        };

        let (path, journal) = plant("record");
        let result = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path)
            .with_journal(journal)
            .with_sentinel(tiny_config().sentinel_config())
            .run()
            .unwrap();
        assert_eq!(result.violations.len(), 1, "{:?}", result.violations);
        assert_eq!(
            result.violations[0].invariant,
            Invariant::CheckpointConsistency
        );
        assert_eq!(result.violations[0].chip, Some(ChipId(1)));

        // Fail-fast mode aborts before simulating anything.
        let (path, journal) = plant("failfast");
        let err = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path)
            .with_journal(journal)
            .with_sentinel(vs_sentinel::SentinelConfig {
                mode: SentinelMode::FailFast,
                ..tiny_config().sentinel_config()
            })
            .run();
        match err {
            Err(FleetError::InvariantViolation { violation }) => {
                assert_eq!(violation.invariant, Invariant::CheckpointConsistency);
            }
            other => panic!("expected InvariantViolation, got {other:?}"),
        }
    }

    #[test]
    fn retried_then_quarantined_chip_is_reported_once_and_excluded_from_stats() {
        // Chip 2's job hangs once (watchdog cancels it, the retry
        // recovers the worker), then panics on every later attempt until
        // the retry budget runs out and the chip is quarantined.
        let mut config = tiny_config();
        config.faults = FaultPlan::new()
            .worker_hang(ChipId(2), 1)
            .worker_panic(ChipId(2), u32::MAX);
        let result = FleetRunner::new(config.clone(), 2)
            .with_max_retries(1)
            .with_deadline(Duration::from_secs(1))
            .run()
            .unwrap();
        // Exactly one quarantine entry, and no double-count in `retried`
        // (that list is only for chips that eventually succeeded).
        assert_eq!(result.degradation.quarantined, vec![ChipId(2)]);
        assert!(result.degradation.retried.is_empty());
        assert_eq!(result.degradation.watchdog_fired, vec![(ChipId(2), 1)]);
        assert_eq!(result.summaries.len(), 5);
        assert!(result.summaries.iter().all(|s| s.chip != ChipId(2)));
        let stats = result.stats(&config);
        assert_eq!(
            stats.num_chips, 5,
            "a quarantined chip must not dilute population statistics"
        );
    }

    #[test]
    fn try_new_rejects_invalid_configs_without_panicking() {
        let bad = FleetConfig {
            num_chips: 0,
            ..tiny_config()
        };
        let err = FleetRunner::try_new(bad, 2).unwrap_err();
        assert_eq!(err.field(), "num_chips");
        assert!(FleetRunner::try_new(tiny_config(), 2).is_ok());
    }

    #[test]
    fn checkpoint_save_failure_lands_in_the_degradation_report() {
        // A checkpoint path whose parent is a regular file cannot be
        // loaded (it does not exist, so no load is attempted) and every
        // save fails when creating the temp file.
        let parent = scratch("not-a-dir");
        let _ = std::fs::remove_dir_all(&parent);
        std::fs::write(&parent, b"file, not dir").unwrap();
        let result = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(parent.join("save.ckpt"))
            .with_checkpoint_every(2)
            .run()
            .unwrap();
        assert_eq!(result.summaries.len(), 6, "results survive save failures");
        assert!(
            !result.degradation.checkpoint_failures.is_empty(),
            "failed saves must be reported"
        );
    }
}
