//! The fleet execution engine: shard a chip population across worker
//! threads, stream summaries as chips complete, checkpoint progress.
//!
//! # Determinism under any sharding
//!
//! Workers claim chips dynamically from a shared atomic counter (natural
//! load balancing — die-to-die variation makes chip runtimes uneven), and
//! each chip is simulated by the pure function
//! [`simulate_chip`](crate::simulate_chip). Completion *order* therefore
//! varies run to run, but completion *content* cannot; the aggregate is
//! computed over chip-id-sorted summaries, so fleet results are
//! bit-identical for any worker count. `tests/determinism.rs` asserts
//! this end to end.
//!
//! # Graceful degradation
//!
//! Every chip job runs under [`std::panic::catch_unwind`]: a panicking
//! job (injected via [`FaultPlan::worker_panic`](vs_faults::FaultPlan) or
//! organic) kills neither its worker nor the fleet. Failed jobs are
//! retried with bounded backoff; chips that keep failing are quarantined
//! and the run completes with partial results plus an explicit
//! [`DegradationReport`]. Retry and quarantine decisions depend only on
//! per-chip attempt counts — never on scheduling — so degraded results
//! are as deterministic as clean ones.

use crate::aggregate::PopulationStats;
use crate::checkpoint::{self, CheckpointError};
use crate::config::FleetConfig;
use crate::degrade::DegradationReport;
use crate::job::simulate_chip_traced;
use crate::summary::ChipSummary;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;
use vs_telemetry::{
    to_jsonl, EventFilter, FleetProfile, LatencyHistogram, ProgressReport, ProgressSink,
    SilentProgress, Stopwatch, TelemetryEvent, WorkerProfile,
};
use vs_types::ChipId;

/// Why a fleet run could not produce a (possibly degraded) result.
#[derive(Debug)]
pub enum FleetError {
    /// A checkpoint could not be *loaded* (corrupt file, wrong config).
    /// Save failures do not abort the run — they land in the
    /// [`DegradationReport`] instead.
    Checkpoint(CheckpointError),
    /// A chip job exhausted its retries under
    /// [`FleetRunner::with_fail_fast`]; without fail-fast the chip would
    /// have been quarantined and the run would have completed.
    JobFailed {
        /// The chip whose job kept failing.
        chip: ChipId,
        /// Failed attempts consumed (first try plus retries).
        attempts: u32,
        /// Description of the last failure.
        error: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Checkpoint(e) => write!(f, "{e}"),
            FleetError::JobFailed {
                chip,
                attempts,
                error,
            } => write!(
                f,
                "chip {} failed {attempts} attempts (fail-fast): {error}",
                chip.0
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Checkpoint(e) => Some(e),
            FleetError::JobFailed { .. } => None,
        }
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> FleetError {
        FleetError::Checkpoint(e)
    }
}

/// The completed fleet: every chip's summary in chip-id order, plus how
/// the run was produced and what it survived.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// One summary per *successful* chip, sorted by chip id (quarantined
    /// chips have none — see `degradation`).
    pub summaries: Vec<ChipSummary>,
    /// Chips simulated successfully by this run (the rest came from a
    /// checkpoint or were quarantined).
    pub simulated: u64,
    /// Chips restored from the checkpoint.
    pub resumed: u64,
    /// What the run absorbed: retries, quarantined chips, failed
    /// checkpoint saves. Empty (`is_clean`) on an undisturbed run.
    pub degradation: DegradationReport,
}

impl FleetResult {
    /// Aggregates the fleet into population statistics. Quarantined chips
    /// have no summary and are therefore excluded from every
    /// distribution.
    pub fn stats(&self, config: &FleetConfig) -> PopulationStats {
        PopulationStats::from_summaries(&self.summaries, config.base_chip.mode.nominal_vdd())
    }
}

/// The observability side of a fleet run, kept strictly apart from the
/// deterministic results.
///
/// `events` is deterministic: per-chip streams are pure functions of the
/// config and are merged in chip-id order, so the serialized trace is
/// byte-identical for any worker count (retried chips contribute the
/// events of their successful attempt only; quarantined chips contribute
/// none). `profile` is wall-clock and varies run to run; callers must
/// never mix it into determinism-checked output.
#[derive(Debug, Clone, Default)]
pub struct FleetTrace {
    /// Telemetry events of every chip simulated this run, merged in
    /// chip-id order (chips restored from a checkpoint have no events).
    pub events: Vec<TelemetryEvent>,
    /// Wall-clock profile: per-worker busy/steal/idle and job latency.
    pub profile: FleetProfile,
}

impl FleetTrace {
    /// Serializes the (deterministic) event stream as JSONL — the exact
    /// bytes `repro --trace FILE` writes.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }
}

/// Marker payload for plan-scheduled worker panics, so the quiet panic
/// hook can tell them apart from organic ones (which keep the default
/// backtrace output).
struct InjectedPanic;

/// Suppresses default panic output for [`InjectedPanic`] payloads only.
/// Installed at most once per process, the first time a fleet with
/// scheduled worker panics runs.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Human-readable description of a caught panic payload.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if payload.downcast_ref::<InjectedPanic>().is_some() {
        "injected worker panic".to_owned()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_owned()
    }
}

/// Wall-clock backoff before retry `attempt` (1-based): 5 ms doubling,
/// capped at 40 ms. Wall time never feeds into simulated results, so the
/// backoff cannot perturb determinism.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis((5u64 << attempt.saturating_sub(1).min(3)).min(40))
}

/// What one claimed chip produced.
enum JobOutcome {
    /// The job succeeded (possibly after retries).
    Done {
        summary: ChipSummary,
        events: Vec<TelemetryEvent>,
        failed_attempts: u32,
    },
    /// The job failed every attempt; the chip is quarantined.
    Failed {
        chip: ChipId,
        attempts: u32,
        error: String,
    },
}

/// Drives a fleet of chips across a pool of worker threads.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: FleetConfig,
    workers: usize,
    checkpoint: Option<PathBuf>,
    /// Completed chips between checkpoint saves.
    checkpoint_every: u64,
    /// Retries granted per chip after its first failed attempt.
    max_retries: u32,
    /// Abort the run on the first quarantined chip instead of degrading.
    fail_fast: bool,
}

impl FleetRunner {
    /// A runner over `config` with `workers` threads (0 is treated as 1).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid; validate with
    /// [`FleetConfig::validate`] first to handle the error instead.
    pub fn new(config: FleetConfig, workers: usize) -> FleetRunner {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        FleetRunner {
            config,
            workers: workers.max(1),
            checkpoint: None,
            checkpoint_every: 32,
            max_retries: 2,
            fail_fast: false,
        }
    }

    /// Enables checkpoint/resume at `path`: existing progress there is
    /// restored (refusing files from a different config), and progress is
    /// saved periodically and at completion. Save failures never abort
    /// the run; they are reported in the result's [`DegradationReport`].
    pub fn with_checkpoint(mut self, path: PathBuf) -> FleetRunner {
        self.checkpoint = Some(path);
        self
    }

    /// Sets how many chip completions elapse between checkpoint saves.
    pub fn with_checkpoint_every(mut self, chips: u64) -> FleetRunner {
        self.checkpoint_every = chips.max(1);
        self
    }

    /// Sets the retry budget per chip (default 2): a job may fail this
    /// many times *after* its first attempt before the chip is
    /// quarantined.
    pub fn with_max_retries(mut self, retries: u32) -> FleetRunner {
        self.max_retries = retries;
        self
    }

    /// Aborts the run with [`FleetError::JobFailed`] as soon as any chip
    /// exhausts its retries, instead of quarantining it and completing
    /// with partial results.
    pub fn with_fail_fast(mut self, fail_fast: bool) -> FleetRunner {
        self.fail_fast = fail_fast;
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the whole fleet to completion.
    pub fn run(&self) -> Result<FleetResult, FleetError> {
        self.run_streaming(|_| {})
    }

    /// Runs the fleet, invoking `on_chip` (on the calling thread) for each
    /// newly simulated chip as it completes. Completion order is
    /// scheduling-dependent; summary *contents* are not.
    pub fn run_streaming(
        &self,
        mut on_chip: impl FnMut(&ChipSummary),
    ) -> Result<FleetResult, FleetError> {
        let mut progress = SilentProgress;
        self.run_core(EventFilter::none(), &mut on_chip, &mut progress)
            .map(|(result, _)| result)
    }

    /// Runs the fleet with telemetry: per-chip event streams (kept per
    /// `filter`, merged in chip-id order — byte-identical for any worker
    /// count), a wall-clock profile, and pluggable progress reporting.
    pub fn run_reporting(
        &self,
        filter: EventFilter,
        progress: &mut dyn ProgressSink,
    ) -> Result<(FleetResult, FleetTrace), FleetError> {
        self.run_core(filter, &mut |_| {}, progress)
    }

    fn run_core(
        &self,
        filter: EventFilter,
        on_chip: &mut dyn FnMut(&ChipSummary),
        progress: &mut dyn ProgressSink,
    ) -> Result<(FleetResult, FleetTrace), FleetError> {
        let fingerprint = self.config.fingerprint();
        if !self.config.faults.worker_panics().is_empty() {
            install_quiet_panic_hook();
        }

        // Restore prior progress, dropping chips beyond the current fleet
        // size (a shrunk re-run) — the fingerprint pins everything else.
        // Load errors are fatal: resuming without the saved work would
        // silently recompute (or worse, mix) results.
        let mut done: Vec<ChipSummary> = match &self.checkpoint {
            Some(path) if path.exists() => checkpoint::load(path, fingerprint)?
                .into_iter()
                .filter(|s| s.chip.0 < self.config.num_chips)
                .collect(),
            _ => Vec::new(),
        };
        let resumed = done.len() as u64;
        let todo: Vec<ChipId> = {
            let have: std::collections::HashSet<u64> = done.iter().map(|s| s.chip.0).collect();
            (0..self.config.num_chips)
                .filter(|i| !have.contains(i))
                .map(ChipId)
                .collect()
        };

        let next = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<JobOutcome>();
        let config = &self.config;
        let todo_ref = &todo;
        let max_retries = self.max_retries;
        // Per-chip event streams, buffered until the run completes and
        // merged in chip-id order (never completion order) so the trace is
        // independent of scheduling.
        let mut traces: Vec<(ChipId, Vec<TelemetryEvent>)> = Vec::new();
        let mut profile = FleetProfile::default();
        let mut degradation = DegradationReport::default();
        let mut fatal: Option<FleetError> = None;
        let run_watch = Stopwatch::start();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..self.workers.min(todo_ref.len().max(1)) {
                let tx = tx.clone();
                let next = &next;
                handles.push(scope.spawn(move || {
                    let mut stats = WorkerProfile {
                        worker,
                        ..WorkerProfile::default()
                    };
                    let mut latency = LatencyHistogram::new();
                    let wall = Stopwatch::start();
                    loop {
                        let claim = Stopwatch::start();
                        let idx = next.fetch_add(1, Ordering::Relaxed) as usize;
                        let chip = todo_ref.get(idx).copied();
                        stats.steal_ns += claim.elapsed_ns();
                        let Some(chip) = chip else {
                            break;
                        };
                        // The plan decides how many attempts this chip's
                        // job loses before succeeding — worker-count
                        // independent, so retry outcomes are
                        // deterministic.
                        let planned = config.faults.panic_attempts(chip);
                        let mut failed_attempts = 0u32;
                        let busy = Stopwatch::start();
                        let out = loop {
                            let attempt =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if failed_attempts < planned {
                                        std::panic::panic_any(InjectedPanic);
                                    }
                                    simulate_chip_traced(config, chip, filter)
                                }));
                            match attempt {
                                Ok((summary, events)) => {
                                    break JobOutcome::Done {
                                        summary,
                                        events,
                                        failed_attempts,
                                    }
                                }
                                Err(payload) => {
                                    failed_attempts = failed_attempts.saturating_add(1);
                                    if failed_attempts > max_retries {
                                        break JobOutcome::Failed {
                                            chip,
                                            attempts: failed_attempts,
                                            error: describe_panic(payload.as_ref()),
                                        };
                                    }
                                    std::thread::sleep(backoff(failed_attempts));
                                }
                            }
                        };
                        let busy_ns = busy.elapsed_ns();
                        stats.busy_ns += busy_ns;
                        stats.jobs += 1;
                        latency.observe_ns(busy_ns);
                        // A send can only fail if the receiver hung up,
                        // which only happens on fail-fast abort; the
                        // remaining work is moot either way.
                        let send = Stopwatch::start();
                        let disconnected = tx.send(out).is_err();
                        stats.steal_ns += send.elapsed_ns();
                        if disconnected {
                            break;
                        }
                    }
                    stats.wall_ns = wall.elapsed_ns();
                    (stats, latency)
                }));
            }
            drop(tx);

            let mut since_save = 0u64;
            let mut completed = resumed;
            for outcome in rx {
                match outcome {
                    JobOutcome::Done {
                        summary,
                        events,
                        failed_attempts,
                    } => {
                        if failed_attempts > 0 {
                            degradation.retried.push((summary.chip, failed_attempts));
                        }
                        completed += 1;
                        on_chip(&summary);
                        progress.chip_done(&ProgressReport {
                            chip: summary.chip,
                            completed,
                            total: self.config.num_chips,
                        });
                        if !events.is_empty() {
                            traces.push((summary.chip, events));
                        }
                        done.push(summary);
                        since_save += 1;
                        if since_save >= self.checkpoint_every {
                            since_save = 0;
                            if let Err(e) = self.save(fingerprint, &done) {
                                degradation.checkpoint_failures.push(e.to_string());
                            }
                        }
                    }
                    JobOutcome::Failed {
                        chip,
                        attempts,
                        error,
                    } => {
                        if self.fail_fast {
                            fatal = Some(FleetError::JobFailed {
                                chip,
                                attempts,
                                error,
                            });
                            // Dropping the receiver disconnects every
                            // worker's sender; they wind down after their
                            // in-flight job.
                            break;
                        }
                        degradation.quarantined.push(chip);
                    }
                }
            }
            for handle in handles {
                let (stats, latency) = handle.join().expect("fleet worker panicked");
                profile.workers.push(stats);
                profile.job_latency.merge(&latency);
            }
        });
        if let Some(e) = fatal {
            return Err(e);
        }
        profile.wall_ns = run_watch.elapsed_ns();
        progress.finished(self.config.num_chips);

        done.sort_by_key(|s| s.chip);
        let simulated = done.len() as u64 - resumed;
        if simulated > 0 {
            if let Err(e) = self.save(fingerprint, &done) {
                degradation.checkpoint_failures.push(e.to_string());
            }
        }
        degradation.normalize();
        traces.sort_by_key(|(chip, _)| *chip);
        let events = traces.into_iter().flat_map(|(_, e)| e).collect();
        Ok((
            FleetResult {
                summaries: done,
                simulated,
                resumed,
                degradation,
            },
            FleetTrace { events, profile },
        ))
    }

    fn save(&self, fingerprint: u64, done: &[ChipSummary]) -> Result<(), CheckpointError> {
        match &self.checkpoint {
            Some(path) => checkpoint::save(path, fingerprint, done),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_faults::FaultPlan;
    use vs_types::FleetSeed;

    fn tiny_config() -> FleetConfig {
        let mut config = FleetConfig::small(FleetSeed(77), 6);
        config.run_duration = vs_types::SimTime::from_millis(500);
        config
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let one = FleetRunner::new(tiny_config(), 1).run().unwrap();
        let four = FleetRunner::new(tiny_config(), 4).run().unwrap();
        assert_eq!(one.summaries, four.summaries);
        assert_eq!(one.summaries.len(), 6);
        assert!(one.summaries.windows(2).all(|w| w[0].chip < w[1].chip));
        assert!(one.degradation.is_clean());
    }

    #[test]
    fn streaming_sees_every_chip_exactly_once() {
        let mut seen = Vec::new();
        let result = FleetRunner::new(tiny_config(), 2)
            .run_streaming(|s| seen.push(s.chip))
            .unwrap();
        assert_eq!(seen.len(), 6);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        assert_eq!(result.simulated, 6);
        assert_eq!(result.resumed, 0);
    }

    #[test]
    fn checkpoint_resume_skips_completed_chips_and_matches_fresh_run() {
        let path = scratch("resume.ckpt");
        let _ = std::fs::remove_file(&path);

        // Run the first half and checkpoint it.
        let mut half = tiny_config();
        half.num_chips = 3;
        FleetRunner::new(half, 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();

        // Resume into the full fleet: only the second half is simulated.
        let resumed = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.simulated, 3);

        let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
        assert_eq!(
            resumed.summaries, fresh.summaries,
            "a resumed fleet must be bit-identical to a fresh one"
        );
    }

    #[test]
    fn checkpoint_from_other_config_is_refused() {
        let path = scratch("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        FleetRunner::new(tiny_config(), 1)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        let other = FleetConfig {
            seed: FleetSeed(78),
            ..tiny_config()
        };
        let err = FleetRunner::new(other, 1)
            .with_checkpoint(path.clone())
            .run();
        assert!(matches!(
            err,
            Err(FleetError::Checkpoint(
                CheckpointError::FingerprintMismatch { .. }
            ))
        ));
    }

    #[test]
    fn stats_shortcut_aggregates() {
        let config = tiny_config();
        let result = FleetRunner::new(config.clone(), 2).run().unwrap();
        let stats = result.stats(&config);
        assert_eq!(stats.num_chips, 6);
        assert_eq!(stats.healthy_chips, 6);
    }

    #[test]
    fn injected_panics_are_retried_and_results_are_unchanged() {
        let clean = FleetRunner::new(tiny_config(), 2).run().unwrap();
        let mut config = tiny_config();
        config.faults = FaultPlan::new()
            .worker_panic(ChipId(1), 2)
            .worker_panic(ChipId(4), 1);
        let result = FleetRunner::new(config, 3).run().unwrap();
        assert_eq!(
            result.summaries, clean.summaries,
            "retried chips must produce bit-identical summaries"
        );
        assert_eq!(
            result.degradation.retried,
            vec![(ChipId(1), 2), (ChipId(4), 1)]
        );
        assert!(result.degradation.quarantined.is_empty());
        assert_eq!(result.degradation.attempts_absorbed(), 3);
    }

    #[test]
    fn doomed_chip_is_quarantined_with_partial_results() {
        let mut config = tiny_config();
        config.faults = FaultPlan::new().worker_panic(ChipId(2), u32::MAX);
        let result = FleetRunner::new(config.clone(), 2)
            .with_max_retries(1)
            .run()
            .unwrap();
        assert_eq!(result.degradation.quarantined, vec![ChipId(2)]);
        assert_eq!(result.summaries.len(), 5);
        assert!(result.summaries.iter().all(|s| s.chip != ChipId(2)));
        assert_eq!(result.simulated, 5);
        // The quarantined chip is excluded from population statistics.
        let stats = result.stats(&config);
        assert_eq!(stats.num_chips, 5);
        assert!(!result.degradation.is_clean());
    }

    #[test]
    fn fail_fast_aborts_on_a_doomed_chip() {
        let mut config = tiny_config();
        config.faults = FaultPlan::new().worker_panic(ChipId(0), u32::MAX);
        let err = FleetRunner::new(config, 2)
            .with_max_retries(1)
            .with_fail_fast(true)
            .run();
        match err {
            Err(FleetError::JobFailed { chip, attempts, .. }) => {
                assert_eq!(chip, ChipId(0));
                assert_eq!(attempts, 2);
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_save_failure_lands_in_the_degradation_report() {
        // A checkpoint path whose parent is a regular file cannot be
        // loaded (it does not exist, so no load is attempted) and every
        // save fails when creating the temp file.
        let parent = scratch("not-a-dir");
        let _ = std::fs::remove_dir_all(&parent);
        std::fs::write(&parent, b"file, not dir").unwrap();
        let result = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(parent.join("save.ckpt"))
            .with_checkpoint_every(2)
            .run()
            .unwrap();
        assert_eq!(result.summaries.len(), 6, "results survive save failures");
        assert!(
            !result.degradation.checkpoint_failures.is_empty(),
            "failed saves must be reported"
        );
    }
}
