//! The fleet execution engine: shard a chip population across worker
//! threads, stream summaries as chips complete, checkpoint progress.
//!
//! # Determinism under any sharding
//!
//! Workers claim chips dynamically from a shared atomic counter (natural
//! load balancing — die-to-die variation makes chip runtimes uneven), and
//! each chip is simulated by the pure function
//! [`simulate_chip`](crate::simulate_chip). Completion *order* therefore
//! varies run to run, but completion *content* cannot; the aggregate is
//! computed over chip-id-sorted summaries, so fleet results are
//! bit-identical for any worker count. `tests/determinism.rs` asserts
//! this end to end.

use crate::aggregate::PopulationStats;
use crate::checkpoint::{self, CheckpointError};
use crate::config::FleetConfig;
use crate::job::simulate_chip;
use crate::summary::ChipSummary;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use vs_types::ChipId;

/// The completed fleet: every chip's summary in chip-id order, plus how
/// the run was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// One summary per chip, sorted by chip id.
    pub summaries: Vec<ChipSummary>,
    /// Chips simulated by this run (the rest came from a checkpoint).
    pub simulated: u64,
    /// Chips restored from the checkpoint.
    pub resumed: u64,
}

impl FleetResult {
    /// Aggregates the fleet into population statistics.
    pub fn stats(&self, config: &FleetConfig) -> PopulationStats {
        PopulationStats::from_summaries(&self.summaries, config.base_chip.mode.nominal_vdd())
    }
}

/// Drives a fleet of chips across a pool of worker threads.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: FleetConfig,
    workers: usize,
    checkpoint: Option<PathBuf>,
    /// Completed chips between checkpoint saves.
    checkpoint_every: u64,
}

impl FleetRunner {
    /// A runner over `config` with `workers` threads (0 is treated as 1).
    pub fn new(config: FleetConfig, workers: usize) -> FleetRunner {
        config.validate();
        FleetRunner {
            config,
            workers: workers.max(1),
            checkpoint: None,
            checkpoint_every: 32,
        }
    }

    /// Enables checkpoint/resume at `path`: existing progress there is
    /// restored (refusing files from a different config), and progress is
    /// saved periodically and at completion.
    pub fn with_checkpoint(mut self, path: PathBuf) -> FleetRunner {
        self.checkpoint = Some(path);
        self
    }

    /// Sets how many chip completions elapse between checkpoint saves.
    pub fn with_checkpoint_every(mut self, chips: u64) -> FleetRunner {
        self.checkpoint_every = chips.max(1);
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the whole fleet to completion.
    pub fn run(&self) -> Result<FleetResult, CheckpointError> {
        self.run_streaming(|_| {})
    }

    /// Runs the fleet, invoking `on_chip` (on the calling thread) for each
    /// newly simulated chip as it completes. Completion order is
    /// scheduling-dependent; summary *contents* are not.
    pub fn run_streaming(
        &self,
        mut on_chip: impl FnMut(&ChipSummary),
    ) -> Result<FleetResult, CheckpointError> {
        let fingerprint = self.config.fingerprint();

        // Restore prior progress, dropping chips beyond the current fleet
        // size (a shrunk re-run) — the fingerprint pins everything else.
        let mut done: Vec<ChipSummary> = match &self.checkpoint {
            Some(path) if path.exists() => checkpoint::load(path, fingerprint)?
                .into_iter()
                .filter(|s| s.chip.0 < self.config.num_chips)
                .collect(),
            _ => Vec::new(),
        };
        let resumed = done.len() as u64;
        let todo: Vec<ChipId> = {
            let have: std::collections::HashSet<u64> = done.iter().map(|s| s.chip.0).collect();
            (0..self.config.num_chips)
                .filter(|i| !have.contains(i))
                .map(ChipId)
                .collect()
        };

        let simulated = todo.len() as u64;
        let next = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<ChipSummary>();
        let config = &self.config;
        let todo_ref = &todo;

        std::thread::scope(|scope| -> Result<(), CheckpointError> {
            for _ in 0..self.workers.min(todo_ref.len().max(1)) {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed) as usize;
                    let Some(&chip) = todo_ref.get(idx) else {
                        break;
                    };
                    // A send can only fail if the receiver hung up, which
                    // only happens when the collector bailed on an I/O
                    // error; the remaining work is moot either way.
                    if tx.send(simulate_chip(config, chip)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut since_save = 0u64;
            for summary in rx {
                on_chip(&summary);
                done.push(summary);
                since_save += 1;
                if since_save >= self.checkpoint_every {
                    since_save = 0;
                    self.save(fingerprint, &done)?;
                }
            }
            Ok(())
        })?;

        done.sort_by_key(|s| s.chip);
        if simulated > 0 {
            self.save(fingerprint, &done)?;
        }
        Ok(FleetResult {
            summaries: done,
            simulated,
            resumed,
        })
    }

    fn save(&self, fingerprint: u64, done: &[ChipSummary]) -> Result<(), CheckpointError> {
        match &self.checkpoint {
            Some(path) => checkpoint::save(path, fingerprint, done),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_types::FleetSeed;

    fn tiny_config() -> FleetConfig {
        let mut config = FleetConfig::small(FleetSeed(77), 6);
        config.run_duration = vs_types::SimTime::from_millis(500);
        config
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let one = FleetRunner::new(tiny_config(), 1).run().unwrap();
        let four = FleetRunner::new(tiny_config(), 4).run().unwrap();
        assert_eq!(one.summaries, four.summaries);
        assert_eq!(one.summaries.len(), 6);
        assert!(one.summaries.windows(2).all(|w| w[0].chip < w[1].chip));
    }

    #[test]
    fn streaming_sees_every_chip_exactly_once() {
        let mut seen = Vec::new();
        let result = FleetRunner::new(tiny_config(), 2)
            .run_streaming(|s| seen.push(s.chip))
            .unwrap();
        assert_eq!(seen.len(), 6);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        assert_eq!(result.simulated, 6);
        assert_eq!(result.resumed, 0);
    }

    #[test]
    fn checkpoint_resume_skips_completed_chips_and_matches_fresh_run() {
        let path = scratch("resume.ckpt");
        let _ = std::fs::remove_file(&path);

        // Run the first half and checkpoint it.
        let mut half = tiny_config();
        half.num_chips = 3;
        FleetRunner::new(half, 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();

        // Resume into the full fleet: only the second half is simulated.
        let resumed = FleetRunner::new(tiny_config(), 2)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.simulated, 3);

        let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
        assert_eq!(
            resumed.summaries, fresh.summaries,
            "a resumed fleet must be bit-identical to a fresh one"
        );
    }

    #[test]
    fn checkpoint_from_other_config_is_refused() {
        let path = scratch("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        FleetRunner::new(tiny_config(), 1)
            .with_checkpoint(path.clone())
            .run()
            .unwrap();
        let other = FleetConfig {
            seed: FleetSeed(78),
            ..tiny_config()
        };
        let err = FleetRunner::new(other, 1)
            .with_checkpoint(path.clone())
            .run();
        assert!(matches!(
            err,
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn stats_shortcut_aggregates() {
        let config = tiny_config();
        let result = FleetRunner::new(config.clone(), 2).run().unwrap();
        let stats = result.stats(&config);
        assert_eq!(stats.num_chips, 6);
        assert_eq!(stats.healthy_chips, 6);
    }
}
