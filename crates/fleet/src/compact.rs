//! Streaming journal→checkpoint compaction.
//!
//! The in-memory compaction the [`FleetRunner`](crate::FleetRunner) does
//! mid-run holds every completed summary anyway, so it folds the journal
//! into the checkpoint for free. A *daemon* restarting over a large warm
//! store cannot afford that: the checkpoint may hold orders of magnitude
//! more chips than the journal window, and loading it whole just to
//! absorb a handful of journal records is wasted memory.
//!
//! [`compact_streaming`] folds the write-ahead journal into the
//! checkpoint while streaming the checkpoint line by line: memory is
//! bounded by the *journal window* (the records appended since the last
//! checkpoint save), never by the fleet size. The merge preserves the
//! chip-id sort order `save` produces — journal records are spliced into
//! position — and keeps the crash-safety contract of the runner's own
//! compaction: the merged checkpoint is written to a unique temp file,
//! fsynced, renamed over the target, the parent directory fsynced, and
//! only then is the journal truncated. A crash between the two steps
//! leaves harmless duplicates, never a gap.

use crate::checkpoint::{
    decode_chip, sync_parent_dir_on, unique_temp_on, CheckpointError, MAGIC as CKPT_MAGIC,
};
use crate::journal::{replay_journal_streaming_on, ChipJournal};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::Path;
use vs_guard::vfs::{self, OpenMode, VfsHandle};

/// What one streaming compaction pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// The config fingerprint both stores are bound to.
    pub fingerprint: u64,
    /// Chip records in the checkpoint after the pass.
    pub chips: u64,
    /// Journal records absorbed that the checkpoint did not already hold.
    pub merged: u64,
    /// Damaged records skipped (torn final journal append, bit rot); the
    /// rest of each file still compacts.
    pub skipped: u64,
}

/// Counts the chip records of a checkpoint without loading them: one
/// buffered pass, decoding each line only far enough to accept it.
/// Returns 0 for a missing file (an empty store, not an error).
pub fn checkpoint_chips(path: &Path) -> Result<u64, CheckpointError> {
    checkpoint_chips_on(&vfs::std_fs(), path)
}

/// [`checkpoint_chips`] against an explicit filesystem backend.
pub fn checkpoint_chips_on(vfs: &VfsHandle, path: &Path) -> Result<u64, CheckpointError> {
    if !vfs.exists(path) {
        return Ok(0);
    }
    let reader = BufReader::new(vfs.open_read(path)?);
    let mut lines = reader.lines();
    match lines.next().transpose()? {
        Some(ref l) if l == CKPT_MAGIC => {}
        other => {
            return Err(CheckpointError::Format(format!(
                "bad header {other:?} (expected {CKPT_MAGIC:?})"
            )))
        }
    }
    match lines.next().transpose()? {
        Some(ref l) if l.starts_with("fingerprint ") => {}
        _ => return Err(CheckpointError::Format("missing fingerprint line".into())),
    }
    let mut chips = 0u64;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if matches!(decode_chip(&line), Ok(Some(_))) {
            chips += 1;
        }
    }
    Ok(chips)
}

/// Reads the fingerprint a checkpoint or journal is bound to without
/// loading its records (the two formats share the header shape).
pub fn read_fingerprint(path: &Path) -> Result<u64, CheckpointError> {
    read_fingerprint_on(&vfs::std_fs(), path)
}

/// [`read_fingerprint`] against an explicit filesystem backend.
pub fn read_fingerprint_on(vfs: &VfsHandle, path: &Path) -> Result<u64, CheckpointError> {
    let reader = BufReader::new(vfs.open_read(path)?);
    let mut lines = reader.lines();
    let _magic = lines
        .next()
        .transpose()?
        .ok_or_else(|| CheckpointError::Format("empty store file".into()))?;
    match lines
        .next()
        .transpose()?
        .as_deref()
        .and_then(|l| l.strip_prefix("fingerprint "))
    {
        Some(hex) => u64::from_str_radix(hex, 16)
            .map_err(|_| CheckpointError::Format(format!("bad fingerprint {hex:?}"))),
        None => Err(CheckpointError::Format("missing fingerprint line".into())),
    }
}

/// Folds `journal` into `ckpt` without loading the checkpoint in memory.
///
/// * The journal is replayed (deduped by chip id, damaged records skipped
///   with a count) into a sorted map — memory O(journal window).
/// * The checkpoint is streamed line by line into a temp file; journal
///   records are spliced into chip-id position, and a chip present in
///   both stores keeps the journal copy (the journal is the
///   write-ahead source of truth for records the checkpoint never
///   absorbed).
/// * The temp file is fsynced, renamed over the checkpoint, the parent
///   directory fsynced — and only then is the journal truncated back to
///   its header.
///
/// A missing checkpoint is created from the journal alone; a missing or
/// record-empty journal is a cheap no-op. The two files refusing to agree
/// on a fingerprint is a hard [`CheckpointError::FingerprintMismatch`] —
/// folding foreign records into a store would corrupt it silently.
pub fn compact_streaming(ckpt: &Path, journal: &Path) -> Result<CompactionReport, CheckpointError> {
    compact_streaming_on(&vfs::std_fs(), ckpt, journal)
}

/// [`compact_streaming`] against an explicit filesystem backend — the
/// seam the crash-consistency checker explores compaction through.
pub fn compact_streaming_on(
    vfs: &VfsHandle,
    ckpt: &Path,
    journal: &Path,
) -> Result<CompactionReport, CheckpointError> {
    if !vfs.exists(journal) {
        let fingerprint = if vfs.exists(ckpt) {
            read_fingerprint_on(vfs, ckpt)?
        } else {
            0
        };
        return Ok(CompactionReport {
            fingerprint,
            chips: checkpoint_chips_on(vfs, ckpt)?,
            merged: 0,
            skipped: 0,
        });
    }
    let replay = replay_journal_streaming_on(vfs, journal)?;
    let fingerprint = replay.fingerprint;
    if vfs.exists(ckpt) {
        let ckpt_fp = read_fingerprint_on(vfs, ckpt)?;
        if ckpt_fp != fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: ckpt_fp,
                found: fingerprint,
            });
        }
    }
    let mut skipped = replay.skipped;
    if replay.records.is_empty() {
        return Ok(CompactionReport {
            fingerprint,
            chips: checkpoint_chips_on(vfs, ckpt)?,
            merged: 0,
            skipped,
        });
    }
    // Encoded journal records, sorted by chip id, still to be spliced.
    let mut pending: BTreeMap<u64, String> = replay.records;
    let merged_candidates = pending.len() as u64;
    let mut replaced = 0u64;
    let mut chips = 0u64;

    let tmp = unique_temp_on(vfs, ckpt);
    let result = (|| -> Result<(), CheckpointError> {
        let mut out = BufWriter::new(vfs.open_write(&tmp, OpenMode::Truncate)?);
        writeln!(out, "{CKPT_MAGIC}")?;
        writeln!(out, "fingerprint {fingerprint:016x}")?;
        if vfs.exists(ckpt) {
            let reader = BufReader::new(vfs.open_read(ckpt)?);
            for (idx, line) in reader.lines().enumerate() {
                let line = line?;
                if idx < 2 || line.trim().is_empty() {
                    continue; // header already rewritten
                }
                let id = match decode_chip(&line) {
                    Ok(Some(summary)) => summary.chip.0,
                    // Damaged checkpoint records are dropped here exactly
                    // as a lenient load would drop them.
                    _ => {
                        skipped += 1;
                        continue;
                    }
                };
                // Splice every journal record that sorts before this one.
                let earlier: Vec<u64> = pending.range(..id).map(|(k, _)| *k).collect();
                for k in earlier {
                    let record = pending.remove(&k).expect("key just enumerated");
                    writeln!(out, "{record}")?;
                    chips += 1;
                }
                match pending.remove(&id) {
                    // Present in both: the journal copy wins.
                    Some(record) => {
                        writeln!(out, "{record}")?;
                        replaced += 1;
                    }
                    None => writeln!(out, "{line}")?,
                }
                chips += 1;
            }
        }
        for record in pending.values() {
            writeln!(out, "{record}")?;
            chips += 1;
        }
        let mut file = out
            .into_inner()
            .map_err(|e| CheckpointError::Io(e.into_error()))?;
        file.sync_all()?;
        vfs.rename(&tmp, ckpt)?;
        Ok(())
    })();
    if let Err(e) = result {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir_on(vfs, ckpt);
    // The checkpoint now owns every record; truncating the journal is the
    // second, independent step of the crash-safe pair.
    ChipJournal::create_on(vfs, journal, fingerprint)?;
    Ok(CompactionReport {
        fingerprint,
        chips,
        merged: merged_candidates - replaced,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{load, save};
    use crate::journal::{replay_journal, replay_journal_on};
    use crate::summary::{ChipSummary, CoreMarginSummary};
    use std::fs;
    use std::path::PathBuf;
    use vs_types::ChipId;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vs-fleet-compact-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn summary(id: u64) -> ChipSummary {
        ChipSummary {
            chip: ChipId(id),
            die_seed: 0xC0FFEE ^ id,
            margins: vec![CoreMarginSummary {
                core: 0,
                first_error_mv: 730,
                min_safe_mv: 640 + id as i32,
            }],
            mean_vdd_mv: vec![741.0 + id as f64 * 0.5],
            vdd_reduction: vec![0.06 + id as f64 * 1e-6],
            energy_savings: 0.2,
            correctable: id * 7,
            emergencies: 0,
            crashes: 0,
            sw_overhead: 0.0,
            dues: 0,
            rollbacks: 0,
        }
    }

    const FP: u64 = 0x2014_CAFE;

    #[test]
    fn splices_journal_records_into_sorted_position() {
        let ckpt = scratch("splice.ckpt");
        let jpath = scratch("splice.journal");
        let _ = fs::remove_file(&ckpt);
        save(&ckpt, FP, &[summary(0), summary(2), summary(5)]).unwrap();
        let mut j = ChipJournal::create(&jpath, FP).unwrap();
        for id in [4, 1, 7] {
            j.append(&summary(id)).unwrap();
        }
        drop(j);

        let report = compact_streaming(&ckpt, &jpath).unwrap();
        assert_eq!(report.fingerprint, FP);
        assert_eq!(report.chips, 6);
        assert_eq!(report.merged, 3);
        assert_eq!(report.skipped, 0);

        // The merged checkpoint is exactly what a whole-fleet save would
        // have produced: same records, same order, same bytes.
        let loaded = load(&ckpt, FP).unwrap();
        let expected: Vec<ChipSummary> =
            [0u64, 1, 2, 4, 5, 7].iter().map(|&i| summary(i)).collect();
        assert_eq!(loaded, expected);
        let reference = scratch("splice-reference.ckpt");
        save(&reference, FP, &expected).unwrap();
        assert_eq!(
            fs::read(&ckpt).unwrap(),
            fs::read(&reference).unwrap(),
            "streamed merge must be byte-identical to an in-memory save"
        );

        // The journal was truncated back to its header.
        let replay = replay_journal(&jpath, FP).unwrap();
        assert!(replay.summaries.is_empty());
    }

    #[test]
    fn creates_the_checkpoint_when_only_a_journal_exists() {
        let ckpt = scratch("fresh.ckpt");
        let jpath = scratch("fresh.journal");
        let _ = fs::remove_file(&ckpt);
        let mut j = ChipJournal::create(&jpath, FP).unwrap();
        j.append(&summary(3)).unwrap();
        j.append(&summary(1)).unwrap();
        drop(j);
        let report = compact_streaming(&ckpt, &jpath).unwrap();
        assert_eq!(report.chips, 2);
        assert_eq!(report.merged, 2);
        assert_eq!(load(&ckpt, FP).unwrap(), vec![summary(1), summary(3)]);
    }

    #[test]
    fn duplicate_records_prefer_the_journal_copy() {
        let ckpt = scratch("dup.ckpt");
        let jpath = scratch("dup.journal");
        let _ = fs::remove_file(&ckpt);
        // The checkpoint holds a stale copy of chip 1.
        let mut stale = summary(1);
        stale.correctable += 99;
        save(&ckpt, FP, &[summary(0), stale]).unwrap();
        let mut j = ChipJournal::create(&jpath, FP).unwrap();
        j.append(&summary(1)).unwrap();
        drop(j);
        let report = compact_streaming(&ckpt, &jpath).unwrap();
        assert_eq!(report.chips, 2);
        assert_eq!(report.merged, 0, "the record replaced one, not added one");
        let loaded = load(&ckpt, FP).unwrap();
        assert_eq!(loaded[1], summary(1), "journal copy wins");
    }

    #[test]
    fn empty_or_missing_journal_is_a_no_op() {
        let ckpt = scratch("noop.ckpt");
        let jpath = scratch("noop.journal");
        let _ = fs::remove_file(&jpath);
        save(&ckpt, FP, &[summary(0)]).unwrap();
        let before = fs::read(&ckpt).unwrap();
        let report = compact_streaming(&ckpt, &jpath).unwrap();
        assert_eq!(report.chips, 1);
        assert_eq!(report.merged, 0);
        assert_eq!(fs::read(&ckpt).unwrap(), before);

        ChipJournal::create(&jpath, FP).unwrap();
        let report = compact_streaming(&ckpt, &jpath).unwrap();
        assert_eq!(report.merged, 0);
        assert_eq!(
            fs::read(&ckpt).unwrap(),
            before,
            "no rewrite for no records"
        );
    }

    #[test]
    fn fingerprint_disagreement_is_refused() {
        let ckpt = scratch("mismatch.ckpt");
        let jpath = scratch("mismatch.journal");
        save(&ckpt, FP, &[summary(0)]).unwrap();
        let mut j = ChipJournal::create(&jpath, FP ^ 1).unwrap();
        j.append(&summary(1)).unwrap();
        drop(j);
        assert!(matches!(
            compact_streaming(&ckpt, &jpath),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        // Neither store was touched.
        assert_eq!(load(&ckpt, FP).unwrap(), vec![summary(0)]);
        assert_eq!(replay_journal(&jpath, FP ^ 1).unwrap().summaries.len(), 1);
    }

    #[test]
    fn torn_journal_tail_is_skipped_and_counted() {
        let ckpt = scratch("torn.ckpt");
        let jpath = scratch("torn.journal");
        let _ = fs::remove_file(&ckpt);
        let mut j = ChipJournal::create(&jpath, FP).unwrap();
        j.append(&summary(0)).unwrap();
        j.append(&summary(1)).unwrap();
        drop(j);
        let mut text = fs::read_to_string(&jpath).unwrap();
        text.truncate(text.len() - 12);
        fs::write(&jpath, &text).unwrap();
        let report = compact_streaming(&ckpt, &jpath).unwrap();
        assert_eq!(report.chips, 1);
        assert_eq!(report.skipped, 1);
        assert_eq!(load(&ckpt, FP).unwrap(), vec![summary(0)]);
    }

    #[test]
    fn chip_count_streams_without_loading() {
        let ckpt = scratch("count.ckpt");
        save(&ckpt, FP, &(0..9).map(summary).collect::<Vec<_>>()).unwrap();
        assert_eq!(checkpoint_chips(&ckpt).unwrap(), 9);
        assert_eq!(read_fingerprint(&ckpt).unwrap(), FP);
        let missing = scratch("count-missing.ckpt");
        let _ = fs::remove_file(&missing);
        assert_eq!(checkpoint_chips(&missing).unwrap(), 0);
    }

    /// The crash-consistency property the compaction's two-step design
    /// promises: interrupted at *every* filesystem mutation, under every
    /// pending-data fate, a lenient reboot recovers exactly the chip set
    /// a never-compacted replay would. "Lenient" is the production
    /// stance: an unreadable half of the pair contributes nothing
    /// (recovery rebuilds or quarantines it), a readable half is merged
    /// journal-over-checkpoint.
    #[test]
    fn interrupted_compaction_never_loses_or_invents_chips() {
        use std::sync::Arc;
        use vs_guard::crashcheck;
        use vs_guard::vfs::{SimFs, VfsHandle};

        let sim = Arc::new(SimFs::new());
        let vfs: VfsHandle = Arc::clone(&sim) as VfsHandle;
        let dir = std::path::Path::new("/vsim/compact");
        vfs.create_dir_all(dir).unwrap();
        let ckpt = dir.join("pair.ckpt");
        let jpath = dir.join("pair.journal");
        // Checkpoint {0, 1, 5}; journal {1', 3} — chip 1 re-ran with
        // different bytes, so the journal must win at every crash point.
        crate::checkpoint::save_on(&vfs, &ckpt, FP, &[summary(0), summary(1), summary(5)]).unwrap();
        let mut altered = summary(1);
        altered.correctable += 1;
        let mut j = ChipJournal::create_on(&vfs, &jpath, FP).unwrap();
        j.append(&altered).unwrap();
        j.append(&summary(3)).unwrap();
        drop(j);
        let expected = vec![summary(0), altered, summary(3), summary(5)];
        let setup_ops = sim.mutations();

        compact_streaming_on(&vfs, &ckpt, &jpath).unwrap();

        let recover = |point: &crashcheck::CrashPoint| -> Vec<ChipSummary> {
            let boot = Arc::new(SimFs::from_image(&sim.crash_image(point)));
            let bvfs: VfsHandle = Arc::clone(&boot) as VfsHandle;
            let mut merged = crate::checkpoint::load_report_on(&bvfs, &ckpt, FP)
                .map(|l| l.summaries)
                .unwrap_or_default();
            let tail = replay_journal_on(&bvfs, &jpath, FP)
                .map(|r| r.summaries)
                .unwrap_or_default();
            for s in tail {
                match merged.iter_mut().find(|m| m.chip == s.chip) {
                    Some(slot) => *slot = s,
                    None => merged.push(s),
                }
            }
            merged.sort_by_key(|s| s.chip);
            merged
        };

        let mut compaction_points = 0;
        for point in crashcheck::enumerate(&sim) {
            if point.op <= setup_ops {
                continue; // crashes inside the setup workload, not compaction
            }
            compaction_points += 1;
            assert_eq!(
                recover(&point),
                expected,
                "crash at {point} during compaction changed the recovered chip set"
            );
        }
        assert!(
            compaction_points >= 15,
            "compaction should expose many crash points, got {compaction_points}"
        );
    }
}
