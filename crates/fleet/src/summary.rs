//! Per-chip result summaries — the unit of work the fleet streams,
//! checkpoints, and aggregates.

use vs_types::ChipId;

/// One core's voltage landmarks, flattened for streaming/serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMarginSummary {
    /// Core index on its chip.
    pub core: usize,
    /// Onset of the correctable-error band (set-point mV).
    pub first_error_mv: i32,
    /// Minimum safe voltage (set-point mV).
    pub min_safe_mv: i32,
}

/// Everything the fleet keeps about one simulated chip.
///
/// Summaries are pure functions of `(FleetConfig, ChipId)` — a summary
/// computed by any worker, in any order, on any machine, is bit-identical.
/// All floating-point fields are checkpointed as exact bit patterns so a
/// resumed fleet aggregates to exactly the same statistics as a fresh one.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSummary {
    /// The chip's position in the fleet.
    pub chip: ChipId,
    /// The die seed its silicon was drawn from.
    pub die_seed: u64,
    /// Per-core voltage margins.
    pub margins: Vec<CoreMarginSummary>,
    /// Mean regulator set point per domain over the speculation run (mV).
    pub mean_vdd_mv: Vec<f64>,
    /// Achieved Vdd reduction per domain, as a fraction of nominal.
    pub vdd_reduction: Vec<f64>,
    /// Core-rail energy saved vs the fixed-nominal baseline, as a
    /// fraction (0.0 for the `Baseline` variant).
    pub energy_savings: f64,
    /// Correctable errors over the run.
    pub correctable: u64,
    /// Emergency interrupts over the run.
    pub emergencies: u64,
    /// Cores that crashed (0 in a healthy fleet). With fault injection
    /// and recovery enabled this counts only *unrecovered* crashes;
    /// recovered ones appear in `rollbacks`.
    pub crashes: u64,
    /// Firmware overhead fraction (`Software` variant only, else 0).
    pub sw_overhead: f64,
    /// DUEs consumed by the firmware rollback path (0 without injection).
    pub dues: u64,
    /// Crashes recovered by rolling the domain back (0 without
    /// injection).
    pub rollbacks: u64,
}

impl ChipSummary {
    /// Mean Vdd reduction across the chip's domains.
    pub fn mean_reduction(&self) -> f64 {
        if self.vdd_reduction.is_empty() {
            return 0.0;
        }
        self.vdd_reduction.iter().sum::<f64>() / self.vdd_reduction.len() as f64
    }

    /// The chip-level Vmin: the highest per-core minimum safe voltage
    /// (the whole chip is only safe above every core's floor).
    pub fn chip_vmin_mv(&self) -> Option<i32> {
        self.margins.iter().map(|m| m.min_safe_mv).max()
    }

    /// True if the chip completed its run without crashing.
    pub fn is_healthy(&self) -> bool {
        self.crashes == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> ChipSummary {
        ChipSummary {
            chip: ChipId(3),
            die_seed: 99,
            margins: vec![
                CoreMarginSummary {
                    core: 0,
                    first_error_mv: 730,
                    min_safe_mv: 640,
                },
                CoreMarginSummary {
                    core: 1,
                    first_error_mv: 720,
                    min_safe_mv: 660,
                },
            ],
            mean_vdd_mv: vec![740.0, 760.0],
            vdd_reduction: vec![0.075, 0.05],
            energy_savings: 0.12,
            correctable: 10,
            emergencies: 0,
            crashes: 0,
            sw_overhead: 0.0,
            dues: 0,
            rollbacks: 0,
        }
    }

    #[test]
    fn helpers() {
        let s = summary();
        assert!((s.mean_reduction() - 0.0625).abs() < 1e-12);
        assert_eq!(s.chip_vmin_mv(), Some(660));
        assert!(s.is_healthy());
    }

    #[test]
    fn empty_margins_and_reductions() {
        let s = ChipSummary {
            margins: Vec::new(),
            vdd_reduction: Vec::new(),
            ..summary()
        };
        assert_eq!(s.mean_reduction(), 0.0);
        assert_eq!(s.chip_vmin_mv(), None);
    }
}
