//! Population statistics over a fleet's chip summaries.
//!
//! Aggregation always starts by sorting summaries by chip id, so the
//! statistics are a pure function of the summary *set* — independent of
//! worker count and completion order. `tests/determinism.rs` pins this
//! down by comparing 1-worker and 8-worker fleets bit for bit.

use crate::summary::ChipSummary;
use vs_types::Millivolts;

/// An empirical distribution: the sorted sample plus summary accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    sorted: Vec<f64>,
}

impl Distribution {
    /// Builds the distribution from raw samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(mut values: Vec<f64>) -> Distribution {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "distribution samples must not be NaN"
        );
        values.sort_by(f64::total_cmp);
        Distribution { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the distribution holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The `q`-quantile (0.0 ..= 1.0) by linear interpolation between
    /// order statistics — the same definition as
    /// [`vs_types::stats::percentile`], so fleet percentiles are directly
    /// comparable to single-run trace percentiles. `q` is clamped.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        vs_types::stats::percentile_sorted(&self.sorted, q.clamp(0.0, 1.0))
    }

    /// `max / min` — the population spread ratio (the paper's "4× Vmin
    /// variation" metric). `None` when empty or when `min` is zero.
    pub fn spread_ratio(&self) -> Option<f64> {
        let (lo, hi) = (self.min()?, self.max()?);
        if lo == 0.0 {
            None
        } else {
            Some(hi / lo)
        }
    }
}

/// A fixed-bin histogram over `[lo, hi)`, with explicit under/overflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Bins `values` into `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(values: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "a histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let mut h = Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        };
        let width = (hi - lo) / bins as f64;
        for &v in values {
            if v < lo {
                h.underflow += 1;
            } else if v >= hi {
                h.overflow += 1;
            } else {
                let idx = (((v - lo) / width) as usize).min(bins - 1);
                h.counts[idx] += 1;
            }
        }
        h
    }

    /// Total samples binned (including under/overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(lower_edge, upper_edge, count)` per bin, for rendering.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            let lower = self.lo + width * i as f64;
            (lower, lower + width, c)
        })
    }
}

/// Fleet-level statistics: the population view the paper's Figures 1–2
/// and the headline claims are stated over.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationStats {
    /// Chips aggregated.
    pub num_chips: u64,
    /// Chips that finished without a crash.
    pub healthy_chips: u64,
    /// Total crashed cores across the population (0 in a healthy fleet).
    pub total_crashes: u64,
    /// Total correctable errors across the population.
    pub total_correctable: u64,
    /// Total emergency interrupts across the population.
    pub total_emergencies: u64,
    /// Total DUEs consumed by firmware rollback across the population
    /// (0 without fault injection).
    pub total_dues: u64,
    /// Total crashes recovered by rollback across the population
    /// (0 without fault injection).
    pub total_rollbacks: u64,
    /// Per-core minimum safe voltage (Vmin) across all cores of all chips,
    /// in millivolts.
    pub core_vmin_mv: Distribution,
    /// Per-core first-error (correctable-band onset) voltage, in mV.
    pub core_first_error_mv: Distribution,
    /// Per-core guardband below nominal (`nominal - Vmin`), in mV — the
    /// margin speculation can reclaim; its spread is the paper's "4×"
    /// population variation.
    pub core_margin_mv: Distribution,
    /// Per-chip mean Vdd reduction (fraction of nominal).
    pub chip_vdd_reduction: Distribution,
    /// Per-domain Vdd reduction across all domains of all chips.
    pub domain_vdd_reduction: Distribution,
    /// Per-chip core-rail energy savings vs the fixed-nominal baseline.
    pub chip_energy_savings: Distribution,
    /// Per-chip firmware overhead fraction (software variant; zeros
    /// otherwise).
    pub chip_sw_overhead: Distribution,
}

impl PopulationStats {
    /// Aggregates a fleet's summaries. `nominal` is the mode's nominal
    /// low-voltage set point the margins are measured against.
    pub fn from_summaries(summaries: &[ChipSummary], nominal: Millivolts) -> PopulationStats {
        let mut sorted: Vec<&ChipSummary> = summaries.iter().collect();
        sorted.sort_by_key(|s| s.chip);

        let mut vmin = Vec::new();
        let mut first_error = Vec::new();
        let mut margin = Vec::new();
        let mut chip_reduction = Vec::new();
        let mut domain_reduction = Vec::new();
        let mut energy = Vec::new();
        let mut overhead = Vec::new();
        let mut healthy = 0u64;
        let mut crashes = 0u64;
        let mut correctable = 0u64;
        let mut emergencies = 0u64;
        let mut dues = 0u64;
        let mut rollbacks = 0u64;

        for s in &sorted {
            for m in &s.margins {
                vmin.push(f64::from(m.min_safe_mv));
                first_error.push(f64::from(m.first_error_mv));
                margin.push(f64::from(nominal.0 - m.min_safe_mv));
            }
            chip_reduction.push(s.mean_reduction());
            domain_reduction.extend_from_slice(&s.vdd_reduction);
            energy.push(s.energy_savings);
            overhead.push(s.sw_overhead);
            healthy += u64::from(s.is_healthy());
            crashes += s.crashes;
            correctable += s.correctable;
            emergencies += s.emergencies;
            dues += s.dues;
            rollbacks += s.rollbacks;
        }

        PopulationStats {
            num_chips: sorted.len() as u64,
            healthy_chips: healthy,
            total_crashes: crashes,
            total_correctable: correctable,
            total_emergencies: emergencies,
            total_dues: dues,
            total_rollbacks: rollbacks,
            core_vmin_mv: Distribution::new(vmin),
            core_first_error_mv: Distribution::new(first_error),
            core_margin_mv: Distribution::new(margin),
            chip_vdd_reduction: Distribution::new(chip_reduction),
            domain_vdd_reduction: Distribution::new(domain_reduction),
            chip_energy_savings: Distribution::new(energy),
            chip_sw_overhead: Distribution::new(overhead),
        }
    }

    /// The population's Vmin-margin spread ratio (paper: ~4× across their
    /// eight-chip sample; wider for larger populations).
    pub fn vmin_spread(&self) -> Option<f64> {
        self.core_margin_mv.spread_ratio()
    }

    /// Mean Vdd reduction across chips (paper headline: ~8 % hardware,
    /// and the metric the fleet acceptance test asserts on).
    pub fn mean_vdd_reduction(&self) -> f64 {
        self.chip_vdd_reduction.mean().unwrap_or(0.0)
    }

    /// Mean energy savings across chips.
    pub fn mean_energy_savings(&self) -> f64 {
        self.chip_energy_savings.mean().unwrap_or(0.0)
    }

    /// Histogram of per-domain Vdd reductions over `[0, 20%)`.
    pub fn reduction_histogram(&self, bins: usize) -> Histogram {
        Histogram::new(self.domain_vdd_reduction.samples(), 0.0, 0.20, bins)
    }

    /// Multi-line human-readable report for CLI output.
    pub fn report(&self, nominal: Millivolts) -> String {
        let mut out = String::new();
        let pct = |v: f64| format!("{:.2}%", v * 100.0);
        let mv = |v: Option<f64>| v.map_or("-".to_owned(), |v| format!("{v:.0} mV"));
        out.push_str(&format!(
            "population: {} chips ({} healthy, {} crashed cores)\n",
            self.num_chips, self.healthy_chips, self.total_crashes
        ));
        out.push_str(&format!(
            "events: {} correctable, {} emergencies\n",
            self.total_correctable, self.total_emergencies
        ));
        if self.total_dues > 0 || self.total_rollbacks > 0 {
            out.push_str(&format!(
                "recovery: {} DUEs consumed, {} crash rollbacks\n",
                self.total_dues, self.total_rollbacks
            ));
        }
        out.push_str(&format!(
            "core Vmin: min {} / p50 {} / max {} (nominal {} mV)\n",
            mv(self.core_vmin_mv.min()),
            mv(self.core_vmin_mv.percentile(0.5)),
            mv(self.core_vmin_mv.max()),
            nominal.0
        ));
        out.push_str(&format!(
            "guardband below nominal: min {} / max {} -> spread {}\n",
            mv(self.core_margin_mv.min()),
            mv(self.core_margin_mv.max()),
            self.vmin_spread()
                .map_or("-".to_owned(), |s| format!("{s:.1}x"))
        ));
        out.push_str(&format!(
            "Vdd reduction: mean {} / p10 {} / p90 {}\n",
            pct(self.mean_vdd_reduction()),
            pct(self.chip_vdd_reduction.percentile(0.10).unwrap_or(0.0)),
            pct(self.chip_vdd_reduction.percentile(0.90).unwrap_or(0.0)),
        ));
        out.push_str(&format!(
            "energy savings: mean {} / p10 {} / p90 {}\n",
            pct(self.mean_energy_savings()),
            pct(self.chip_energy_savings.percentile(0.10).unwrap_or(0.0)),
            pct(self.chip_energy_savings.percentile(0.90).unwrap_or(0.0)),
        ));
        if self.chip_sw_overhead.max().unwrap_or(0.0) > 0.0 {
            out.push_str(&format!(
                "firmware overhead: mean {} / max {}\n",
                pct(self.chip_sw_overhead.mean().unwrap_or(0.0)),
                pct(self.chip_sw_overhead.max().unwrap_or(0.0)),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::CoreMarginSummary;
    use vs_types::ChipId;

    fn chip(id: u64, min_safe: i32, reduction: f64) -> ChipSummary {
        ChipSummary {
            chip: ChipId(id),
            die_seed: id,
            margins: vec![CoreMarginSummary {
                core: 0,
                first_error_mv: min_safe + 60,
                min_safe_mv: min_safe,
            }],
            mean_vdd_mv: vec![800.0 * (1.0 - reduction)],
            vdd_reduction: vec![reduction],
            energy_savings: reduction * 1.5,
            correctable: 5,
            emergencies: 1,
            crashes: 0,
            sw_overhead: 0.0,
            dues: 0,
            rollbacks: 0,
        }
    }

    #[test]
    fn distribution_basics() {
        let d = Distribution::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(d.min(), Some(1.0));
        assert_eq!(d.max(), Some(3.0));
        assert_eq!(d.mean(), Some(2.0));
        assert_eq!(d.percentile(0.5), Some(2.0));
        assert_eq!(d.percentile(0.0), Some(1.0));
        assert_eq!(d.percentile(1.0), Some(3.0));
        assert_eq!(d.spread_ratio(), Some(3.0));
        assert!(Distribution::new(vec![]).mean().is_none());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let h = Histogram::new(&[-1.0, 0.0, 0.5, 1.5, 9.9, 10.0], 0.0, 10.0, 10);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.total(), 6);
        let edges: Vec<(f64, f64, u64)> = h.bins().collect();
        assert_eq!(edges[0], (0.0, 1.0, 2));
    }

    #[test]
    fn aggregation_is_order_independent() {
        let a = vec![chip(0, 600, 0.05), chip(1, 700, 0.10), chip(2, 650, 0.08)];
        let mut b = a.clone();
        b.reverse();
        let nominal = Millivolts(800);
        assert_eq!(
            PopulationStats::from_summaries(&a, nominal),
            PopulationStats::from_summaries(&b, nominal)
        );
    }

    #[test]
    fn population_metrics() {
        let stats = PopulationStats::from_summaries(
            &[chip(0, 600, 0.05), chip(1, 750, 0.10)],
            Millivolts(800),
        );
        assert_eq!(stats.num_chips, 2);
        assert_eq!(stats.healthy_chips, 2);
        assert_eq!(stats.total_correctable, 10);
        assert_eq!(stats.total_emergencies, 2);
        // Margins 200 and 50 mV -> 4x spread.
        assert_eq!(stats.vmin_spread(), Some(4.0));
        assert!((stats.mean_vdd_reduction() - 0.075).abs() < 1e-12);
        let report = stats.report(Millivolts(800));
        assert!(report.contains("2 chips"));
        assert!(report.contains("4.0x"));
    }
}
