//! Parallel multi-chip fleet simulation.
//!
//! The paper's population claims — the ~4× chip-to-chip Vmin spread
//! behind Figure 1 and the ~8 % mean Vdd reduction of §V — are statements
//! about *many* chips, not one. This crate turns the single-chip engine
//! (`vs-platform` + `vs-spec`) into a population instrument: it simulates
//! hundreds to thousands of independent dies in parallel and aggregates
//! them into distributions those claims can be asserted over.
//!
//! # Architecture
//!
//! * [`FleetConfig`] — one seed plus a chip count fully describes a
//!   population. Chip `i`'s silicon derives from the pure hash
//!   `FleetSeed::chip_seed(ChipId(i))`; its workloads from an
//!   [`AssignmentPolicy`](vs_workload::AssignmentPolicy) driven by a
//!   per-chip RNG stream.
//! * [`simulate_chip`] — the unit of work: characterize one die, run the
//!   configured [`ControllerVariant`] (hardware monitor, firmware
//!   baseline, or no speculation), normalize against a fixed-nominal
//!   baseline, return a [`ChipSummary`]. Pure function of
//!   `(config, chip_id)`.
//! * [`FleetRunner`] — shards chips across worker threads (dynamic
//!   claiming off an atomic counter, results streamed over a channel),
//!   with optional checkpoint/resume. Jobs run panic-isolated with
//!   bounded retry; chips that keep failing are quarantined and the run
//!   completes with partial results plus a [`DegradationReport`].
//! * [`PopulationStats`] — chip-id-sorted aggregation: Vmin and
//!   first-error distributions, Vdd-reduction histograms, energy-savings
//!   percentiles, crash counts.
//!
//! # Determinism
//!
//! Fleet results are **bit-identical for any worker count**: per-chip
//! randomness is keyed, not shared; workers only *schedule* pure jobs;
//! aggregation sorts by chip id. The same holds across
//! checkpoint/resume — summaries round-trip through the checkpoint file
//! as exact IEEE-754 bit patterns.
//!
//! # Examples
//!
//! ```no_run
//! use vs_fleet::{FleetConfig, FleetRunner};
//! use vs_types::FleetSeed;
//!
//! let config = FleetConfig::new(FleetSeed(2014), 256);
//! let result = FleetRunner::new(config.clone(), 8).run().unwrap();
//! let stats = result.stats(&config);
//! println!("{}", stats.report(config.base_chip.mode.nominal_vdd()));
//! assert!(stats.mean_vdd_reduction() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggregate;
mod checkpoint;
mod compact;
mod config;
mod degrade;
mod job;
mod journal;
mod runner;
mod summary;

pub use aggregate::{Distribution, Histogram, PopulationStats};
pub use checkpoint::MAGIC as CHECKPOINT_MAGIC;
pub use checkpoint::{
    load as load_checkpoint, load_on as load_checkpoint_on, load_report as load_checkpoint_report,
    load_report_on as load_checkpoint_report_on, save as save_checkpoint,
    save_on as save_checkpoint_on, CheckpointError, CheckpointLoad, CheckpointWarning,
};
pub use compact::{
    checkpoint_chips, checkpoint_chips_on, compact_streaming, compact_streaming_on,
    read_fingerprint, read_fingerprint_on, CompactionReport,
};
pub use config::{ControllerVariant, FleetConfig, MarginsMode};
pub use degrade::DegradationReport;
pub use job::{simulate_chip, simulate_chip_guarded, simulate_chip_traced};
pub use journal::MAGIC as JOURNAL_MAGIC;
pub use journal::{replay_journal, replay_journal_on, ChipJournal, JournalReplay};
pub use runner::{FleetError, FleetResult, FleetRunner, FleetTrace};
pub use summary::{ChipSummary, CoreMarginSummary};
