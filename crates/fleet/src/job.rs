//! The per-chip unit of work: simulate one die of the fleet end to end.
//!
//! [`simulate_chip`] is a pure function of `(FleetConfig, ChipId)` — it
//! derives the die, its margins, its workloads, runs the configured
//! controller variant against a fixed-nominal baseline, and returns one
//! [`ChipSummary`]. Nothing in here reads shared state, so any worker can
//! run any chip in any order and the fleet's aggregate is unchanged.

use crate::config::{ControllerVariant, FleetConfig, MarginsMode};
use crate::summary::{ChipSummary, CoreMarginSummary};
use vs_guard::CancelToken;
use vs_obs::span::{batch_span, chip_span, lane_of, lane_span};
use vs_platform::characterize::{all_analytic_core_margins, all_core_margins};
use vs_platform::{BankMap, Chip, ChipConfig};
use vs_spec::{SoftwareSpeculation, SpecRun, SpeculationSystem};
use vs_telemetry::{EventCategory, EventFilter, Recorder, SpanLevel, TelemetryEvent};
use vs_types::rng::CounterRng;
use vs_types::{CacheKind, ChipId, CoreId, Millivolts};

/// Stream id of the per-chip workload-assignment RNG (domain-separated
/// from every other [`FleetSeed::chip_rng`](vs_types::FleetSeed::chip_rng)
/// consumer).
const ASSIGN_STREAM: u64 = 0xA551_6E00;

/// Simulates one chip of the fleet and returns its summary.
pub fn simulate_chip(config: &FleetConfig, chip: ChipId) -> ChipSummary {
    simulate_chip_traced(config, chip, EventFilter::none()).0
}

/// Simulates one chip and also returns its telemetry stream: the fleet
/// job-lifecycle bracket (when the filter keeps `fleet` events) around the
/// speculation run's own events (hardware variant only — the firmware and
/// no-speculation baselines do not run the monitor/controller loop).
///
/// The stream is a pure function of `(config, chip, filter)` — workers can
/// run chips in any order and the merged per-chip streams are identical.
pub fn simulate_chip_traced(
    config: &FleetConfig,
    chip: ChipId,
    filter: EventFilter,
) -> (ChipSummary, Vec<TelemetryEvent>) {
    simulate_chip_guarded(config, chip, filter, &CancelToken::new(), || {})
        .expect("a fresh token is never cancelled")
}

/// [`simulate_chip_traced`] under supervision: `cancel` is polled between
/// simulation slices (a cancelled job returns `None` within one slice,
/// discarding its partial work) and `beat` is invoked at the same points
/// so a watchdog can tell a slow chip from a hung one.
///
/// Supervision never touches the simulated results: a job that completes
/// under a never-cancelled token is bit-identical to an unsupervised one.
pub fn simulate_chip_guarded(
    config: &FleetConfig,
    chip: ChipId,
    filter: EventFilter,
    cancel: &CancelToken,
    mut beat: impl FnMut(),
) -> Option<(ChipSummary, Vec<TelemetryEvent>)> {
    if cancel.is_cancelled() {
        return None;
    }
    let chip_config = config.chip_config(chip);
    let die_seed = chip_config.seed;
    let (margins, banks) = characterize(config, &chip_config);
    beat();
    if cancel.is_cancelled() {
        return None;
    }
    let mut events = Vec::new();
    // Chip span: opened before the job-lifecycle bracket, closed after
    // it, parented to the chip's *virtual* lane (`chip mod LANES`) so the
    // span tree is a pure function of the chip id, never of which
    // physical worker ran it.
    let spans = filter.accepts(EventCategory::Span);
    if spans {
        events.push(TelemetryEvent::SpanOpen {
            at: vs_types::SimTime::ZERO,
            id: chip_span(chip),
            parent: lane_span(lane_of(chip)),
            level: SpanLevel::Chip,
            ident: chip.0,
        });
    }
    if filter.accepts(EventCategory::Fleet) {
        events.push(TelemetryEvent::JobStarted { chip });
    }

    let out = match config.variant {
        ControllerVariant::Hardware => run_hardware(
            config,
            chip,
            &chip_config,
            &banks,
            filter,
            &mut events,
            cancel,
            &mut beat,
        )?,
        // The firmware and no-speculation baselines run monolithically
        // (no slice loop to poll inside); the entry check above still
        // bounds how late a cancelled claim can start.
        ControllerVariant::Software => run_software(config, chip, &chip_config, &banks),
        ControllerVariant::Baseline => run_baseline_only(config, chip, &chip_config, &banks),
    };

    if filter.accepts(EventCategory::Fleet) {
        events.push(TelemetryEvent::JobFinished {
            chip,
            sim_time: config.run_duration,
            correctable: out.correctable,
            emergencies: out.emergencies,
            crashes: out.crashes,
        });
    }
    if spans {
        // Everything pushed since the chip's SpanOpen (including batch
        // span events) is enclosed by it.
        events.push(TelemetryEvent::SpanClose {
            at: config.run_duration,
            id: chip_span(chip),
            events: events.len() as u64 - 1,
        });
    }
    let summary = ChipSummary {
        chip,
        die_seed,
        margins,
        mean_vdd_mv: out.mean_vdd_mv,
        vdd_reduction: out.vdd_reduction,
        energy_savings: out.energy_savings,
        correctable: out.correctable,
        emergencies: out.emergencies,
        crashes: out.crashes,
        sw_overhead: out.sw_overhead,
        dues: out.dues,
        rollbacks: out.rollbacks,
    };
    Some((summary, events))
}

/// Characterizes the die's per-core margins on a scratch chip (stress
/// sweeps perturb chip state, so the run below starts from fresh silicon).
///
/// Also returns the scratch chip's cell banks: the ranking scans it paid
/// for are pure functions of the die, so every later chip of this job
/// (hardware run, baselines) adopts them instead of rescanning.
fn characterize(
    config: &FleetConfig,
    chip_config: &ChipConfig,
) -> (Vec<CoreMarginSummary>, BankMap) {
    let mut scratch = Chip::new(chip_config.clone());
    let measured = match &config.margins {
        MarginsMode::Analytic => all_analytic_core_margins(&mut scratch),
        MarginsMode::Measured(opts) => all_core_margins(&mut scratch, opts),
    };
    let margins = measured
        .into_iter()
        .map(|m| CoreMarginSummary {
            core: m.core.0,
            first_error_mv: m.first_error_vdd.0,
            min_safe_mv: m.min_safe_vdd.0,
        })
        .collect();
    (margins, scratch.export_banks())
}

/// The chip's workload-assignment RNG. Recreating it from the key yields
/// the same draws, which is how the speculation run and its baseline get
/// identical workloads without sharing state.
fn assignment_rng(config: &FleetConfig, chip: ChipId) -> CounterRng {
    config.effective_seed().chip_rng(chip, ASSIGN_STREAM)
}

/// Assigns the policy's workloads to every core of a chip.
fn assign_workloads(config: &FleetConfig, chip: ChipId, target: &mut Chip) {
    let mut rng = assignment_rng(config, chip);
    for core in 0..target.config().num_cores {
        let workload = config.assignment.workload_for(chip.0, core, &mut rng);
        target.set_workload(CoreId(core), workload);
    }
}

/// What one controller variant's run produced, before packaging into a
/// [`ChipSummary`].
struct RunOutcome {
    mean_vdd_mv: Vec<f64>,
    vdd_reduction: Vec<f64>,
    energy_savings: f64,
    correctable: u64,
    emergencies: u64,
    crashes: u64,
    sw_overhead: f64,
    dues: u64,
    rollbacks: u64,
}

/// Runs the fixed-nominal baseline on fresh silicon with the same
/// workloads; returns its core-rail energy (the savings denominator).
fn baseline_rail_energy(
    config: &FleetConfig,
    chip: ChipId,
    chip_config: &ChipConfig,
    banks: &BankMap,
) -> f64 {
    let mut sys = SpeculationSystem::new(chip_config.clone(), config.controller);
    sys.chip_mut().preload_banks(banks);
    assign_workloads(config, chip, sys.chip_mut());
    let base = sys.run_baseline(config.run_duration);
    base.core_rail_energy_j
}

/// The paper's hardware controller (§III), normalized against the
/// fixed-nominal baseline.
#[allow(clippy::too_many_arguments)]
fn run_hardware(
    config: &FleetConfig,
    chip: ChipId,
    chip_config: &ChipConfig,
    banks: &BankMap,
    filter: EventFilter,
    events: &mut Vec<TelemetryEvent>,
    cancel: &CancelToken,
    beat: &mut dyn FnMut(),
) -> Option<RunOutcome> {
    let mut sys = SpeculationSystem::new(chip_config.clone(), config.controller);
    sys.chip_mut().preload_banks(banks);
    if !filter.is_empty() {
        sys.set_recorder(Recorder::enabled(filter));
    }
    // Chip-scoped fault events are replayed inside the run, which also
    // arms the DUE/crash recovery path for this chip.
    let plan = config.faults.for_chip(chip);
    if !plan.events().is_empty() {
        sys.set_fault_plan(&plan);
    }
    sys.calibrate_fast();
    assign_workloads(config, chip, sys.chip_mut());
    let mut session = SpecRun::new(&sys, config.run_duration);
    if filter.accepts(EventCategory::Span) {
        // Tick-batch spans: each slice's recorder output is drained
        // eagerly and sandwiched between the batch's open/close, so the
        // span encloses exactly the events its slice produced. Batch
        // boundaries are tick counts — identical for every worker count.
        let tick_us = sys.chip().config().tick.as_micros();
        let mut batch = 0u64;
        loop {
            let opened = vs_types::SimTime::from_micros(session.progress().0 * tick_us);
            if session.advance_guarded(&mut sys, config.slice_ticks, cancel)? == 0 {
                break;
            }
            let id = batch_span(chip, batch);
            events.push(TelemetryEvent::SpanOpen {
                at: opened,
                id,
                parent: chip_span(chip),
                level: SpanLevel::Batch,
                ident: batch,
            });
            let drained = sys.take_events();
            let enclosed = drained.len() as u64;
            events.extend(drained);
            events.push(TelemetryEvent::SpanClose {
                at: vs_types::SimTime::from_micros(session.progress().0 * tick_us),
                id,
                events: enclosed,
            });
            batch += 1;
            beat();
        }
    } else {
        while session.advance_guarded(&mut sys, config.slice_ticks, cancel)? > 0 {
            beat();
        }
    }
    let stats = session.finish(&sys);
    events.extend(sys.take_events());

    let nominal = sys.chip().mode().nominal_vdd();
    let reduction = SpeculationSystem::voltage_reduction(&stats, nominal);
    let base_energy = baseline_rail_energy(config, chip, chip_config, banks);
    let savings = if base_energy > 0.0 {
        1.0 - stats.core_rail_energy_j / base_energy
    } else {
        0.0
    };
    Some(RunOutcome {
        mean_vdd_mv: stats.mean_vdd_mv,
        vdd_reduction: reduction,
        energy_savings: savings,
        correctable: stats.correctable,
        emergencies: stats.emergencies,
        crashes: stats.crashed_cores.len() as u64,
        sw_overhead: 0.0,
        dues: stats.dues_consumed,
        rollbacks: stats.crash_rollbacks,
    })
}

/// The firmware-speculation baseline (§V-F): workload-triggered errors
/// only, guard margin above the off-line onsets, per-error handling stall.
fn run_software(
    config: &FleetConfig,
    chip: ChipId,
    chip_config: &ChipConfig,
    banks: &BankMap,
) -> RunOutcome {
    let mut die = Chip::new(chip_config.clone());
    die.preload_banks(banks);
    assign_workloads(config, chip, &mut die);

    // The off-line calibration the prior-work system ran at boot: the
    // highest weak-line critical voltage per domain (oracle form).
    let n_domains = chip_config.num_domains();
    let mut onsets = vec![f64::NEG_INFINITY; n_domains];
    for core in 0..chip_config.num_cores {
        let d = chip_config.domain_of(CoreId(core)).0;
        for kind in [CacheKind::L2Data, CacheKind::L2Instruction] {
            onsets[d] = onsets[d].max(die.weak_table(CoreId(core), kind).first_error_voltage_mv());
        }
    }
    let onsets: Vec<Millivolts> = onsets
        .into_iter()
        .map(|v| Millivolts(v.ceil() as i32))
        .collect();

    let rail_before = die.core_rail_energy().total().0;
    let mut sw = SoftwareSpeculation::new(config.software, &onsets);
    let (mean_vdd_mv, _) = sw.run(&mut die, config.run_duration);
    let rail_energy = die.core_rail_energy().total().0 - rail_before;
    let overhead = sw.overhead_fraction(config.run_duration);

    let nominal = f64::from(die.mode().nominal_vdd().0);
    let reduction: Vec<f64> = mean_vdd_mv.iter().map(|v| 1.0 - v / nominal).collect();

    // Firmware stall burns energy at the run's mean rail power: the
    // effective energy is the measured rail energy scaled by the stall
    // fraction (the software_energy_j model applied to the whole rail).
    let effective = rail_energy * (1.0 + overhead);
    let base_energy = baseline_rail_energy(config, chip, chip_config, banks);
    let savings = if base_energy > 0.0 {
        1.0 - effective / base_energy
    } else {
        0.0
    };

    let crashes = (0..chip_config.num_cores)
        .filter(|i| die.crash_info(CoreId(*i)).is_some())
        .count() as u64;
    let correctable = die.log().correctable_count();
    RunOutcome {
        mean_vdd_mv,
        vdd_reduction: reduction,
        energy_savings: savings,
        correctable,
        emergencies: 0,
        crashes,
        sw_overhead: overhead,
        dues: 0,
        rollbacks: 0,
    }
}

/// No speculation at all: the fleet-wide energy/Vdd denominator.
fn run_baseline_only(
    config: &FleetConfig,
    chip: ChipId,
    chip_config: &ChipConfig,
    banks: &BankMap,
) -> RunOutcome {
    let mut sys = SpeculationSystem::new(chip_config.clone(), config.controller);
    sys.chip_mut().preload_banks(banks);
    assign_workloads(config, chip, sys.chip_mut());
    let stats = sys.run_baseline(config.run_duration);
    let n_domains = chip_config.num_domains();
    RunOutcome {
        mean_vdd_mv: stats.mean_vdd_mv,
        vdd_reduction: vec![0.0; n_domains],
        energy_savings: 0.0,
        correctable: stats.correctable,
        emergencies: stats.emergencies,
        crashes: stats.crashed_cores.len() as u64,
        sw_overhead: 0.0,
        dues: 0,
        rollbacks: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vs_types::FleetSeed;

    fn small(variant: ControllerVariant) -> FleetConfig {
        let mut config = FleetConfig::small(FleetSeed(2014), 4);
        config.variant = variant;
        config.run_duration = vs_types::SimTime::from_secs(2);
        config
    }

    #[test]
    fn hardware_chip_is_pure_and_reproducible() {
        let config = small(ControllerVariant::Hardware);
        let a = simulate_chip(&config, ChipId(1));
        let b = simulate_chip(&config, ChipId(1));
        assert_eq!(a, b, "simulate_chip must be a pure function");
        assert_eq!(a.chip, ChipId(1));
        assert_eq!(a.die_seed, config.die_seed(ChipId(1)));
        assert_eq!(a.margins.len(), 2);
        assert!(a.is_healthy());
        assert!(a.mean_reduction() > 0.0, "hardware must speculate down");
        assert!(a.energy_savings > 0.0, "speculation must save energy");
    }

    #[test]
    fn distinct_chips_are_distinct_silicon() {
        let config = small(ControllerVariant::Hardware);
        let a = simulate_chip(&config, ChipId(0));
        let b = simulate_chip(&config, ChipId(1));
        assert_ne!(a.die_seed, b.die_seed);
        assert_ne!(
            (a.margins.clone(), a.mean_vdd_mv.clone()),
            (b.margins.clone(), b.mean_vdd_mv.clone()),
            "different dies should land on different operating points"
        );
    }

    #[test]
    fn software_variant_reports_overhead_and_saves_less_than_hardware() {
        let hw = simulate_chip(&small(ControllerVariant::Hardware), ChipId(0));
        let sw = simulate_chip(&small(ControllerVariant::Software), ChipId(0));
        assert_eq!(hw.die_seed, sw.die_seed, "same silicon under both variants");
        assert!(sw.sw_overhead >= 0.0);
        assert!(
            sw.mean_reduction() < hw.mean_reduction(),
            "firmware is structurally more conservative: sw {} vs hw {}",
            sw.mean_reduction(),
            hw.mean_reduction()
        );
    }

    #[test]
    fn baseline_variant_never_speculates() {
        let base = simulate_chip(&small(ControllerVariant::Baseline), ChipId(0));
        assert!(base.vdd_reduction.iter().all(|r| *r == 0.0));
        assert_eq!(base.energy_savings, 0.0);
        assert_eq!(base.emergencies, 0);
    }

    #[test]
    fn guarded_job_is_identical_when_uncancelled_and_stops_when_cancelled() {
        let config = small(ControllerVariant::Hardware);
        let plain = simulate_chip_traced(&config, ChipId(1), EventFilter::all());
        let token = CancelToken::new();
        let mut beats = 0u64;
        let guarded = simulate_chip_guarded(&config, ChipId(1), EventFilter::all(), &token, || {
            beats += 1
        })
        .unwrap();
        assert_eq!(plain, guarded, "supervision must not perturb results");
        assert!(beats > 0, "the job heartbeats between slices");

        token.cancel();
        assert!(
            simulate_chip_guarded(&config, ChipId(1), EventFilter::none(), &token, || {}).is_none(),
            "a cancelled token refuses the job"
        );
    }

    #[test]
    fn assignment_rng_is_stable_across_calls() {
        let config = small(ControllerVariant::Hardware);
        let mut a = assignment_rng(&config, ChipId(3));
        let mut b = assignment_rng(&config, ChipId(3));
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
