//! Graceful-degradation accounting: what a fleet survived, explicitly.
//!
//! A resilient fleet run never loses a failure silently. Worker-job
//! panics, chips that exhausted their retries, and checkpoint writes that
//! could not be persisted all land in the [`DegradationReport`] attached
//! to the [`FleetResult`](crate::FleetResult), so callers can complete
//! with partial results *and* know exactly what is missing.

use std::fmt;
use vs_types::ChipId;

/// Everything that went wrong — and was absorbed — during a fleet run.
///
/// The chip lists are sorted by chip id, so the report is deterministic
/// for any worker count: retry/quarantine decisions depend only on the
/// fault plan's per-chip attempt counts, never on scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Chips whose job failed at least once but eventually succeeded,
    /// with the number of failed attempts absorbed.
    pub retried: Vec<(ChipId, u32)>,
    /// Chips whose job kept failing past the retry budget: no summary,
    /// excluded from population statistics.
    pub quarantined: Vec<ChipId>,
    /// Checkpoint saves that failed mid-run, as display strings. The run
    /// continues (results are still returned in memory), but resume state
    /// on disk may be stale — callers must surface this.
    pub checkpoint_failures: Vec<String>,
}

impl DegradationReport {
    /// True when nothing was absorbed: no retries, no quarantined chips,
    /// no failed checkpoint writes.
    pub fn is_clean(&self) -> bool {
        self.retried.is_empty()
            && self.quarantined.is_empty()
            && self.checkpoint_failures.is_empty()
    }

    /// Total failed job attempts absorbed by retries (successful chips
    /// only; quarantined chips are listed separately).
    pub fn attempts_absorbed(&self) -> u64 {
        self.retried.iter().map(|(_, n)| u64::from(*n)).sum()
    }

    /// Sorts the chip lists by id (the runner calls this before handing
    /// the report out).
    pub(crate) fn normalize(&mut self) {
        self.retried.sort_by_key(|(chip, _)| *chip);
        self.quarantined.sort();
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "degradation: none");
        }
        writeln!(
            f,
            "degradation: {} retried, {} quarantined, {} checkpoint failures",
            self.retried.len(),
            self.quarantined.len(),
            self.checkpoint_failures.len()
        )?;
        for (chip, attempts) in &self.retried {
            writeln!(f, "  retried chip {} ({attempts} failed attempts)", chip.0)?;
        }
        for chip in &self.quarantined {
            writeln!(f, "  quarantined chip {} (no result)", chip.0)?;
        }
        for err in &self.checkpoint_failures {
            writeln!(f, "  checkpoint save failed: {err}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_is_one_line() {
        let report = DegradationReport::default();
        assert!(report.is_clean());
        assert_eq!(report.attempts_absorbed(), 0);
        assert_eq!(report.to_string(), "degradation: none");
    }

    #[test]
    fn report_lists_everything_sorted() {
        let mut report = DegradationReport {
            retried: vec![(ChipId(5), 2), (ChipId(1), 1)],
            quarantined: vec![ChipId(7), ChipId(3)],
            checkpoint_failures: vec!["disk full".into()],
        };
        report.normalize();
        assert_eq!(report.retried, vec![(ChipId(1), 1), (ChipId(5), 2)]);
        assert_eq!(report.quarantined, vec![ChipId(3), ChipId(7)]);
        assert_eq!(report.attempts_absorbed(), 3);
        let text = report.to_string();
        assert!(text.contains("1 checkpoint failures"));
        assert!(text.contains("quarantined chip 3"));
        assert!(text.contains("disk full"));
    }
}
