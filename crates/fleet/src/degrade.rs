//! Graceful-degradation accounting: what a fleet survived, explicitly.
//!
//! A resilient fleet run never loses a failure silently. Worker-job
//! panics, chips that exhausted their retries, and checkpoint writes that
//! could not be persisted all land in the [`DegradationReport`] attached
//! to the [`FleetResult`](crate::FleetResult), so callers can complete
//! with partial results *and* know exactly what is missing.

use std::fmt;
use vs_types::ChipId;

/// Everything that went wrong — and was absorbed — during a fleet run.
///
/// The chip lists are sorted by chip id, so the report is deterministic
/// for any worker count: retry/quarantine decisions depend only on the
/// fault plan's per-chip attempt counts, never on scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Chips whose job failed at least once but eventually succeeded,
    /// with the number of failed attempts absorbed.
    pub retried: Vec<(ChipId, u32)>,
    /// Chips whose job kept failing past the retry budget: no summary,
    /// excluded from population statistics.
    pub quarantined: Vec<ChipId>,
    /// Checkpoint saves that failed mid-run, as display strings. The run
    /// continues (results are still returned in memory), but resume state
    /// on disk may be stale — callers must surface this.
    pub checkpoint_failures: Vec<String>,
    /// Chips whose job was cancelled by the wall-clock watchdog at least
    /// once (hung or too-slow workers), with the number of fired attempts.
    /// Fired attempts count against the same retry budget as panics, so a
    /// chip that keeps hanging ends up in `quarantined` too.
    pub watchdog_fired: Vec<(ChipId, u32)>,
    /// True when the run was cut short by cooperative cancellation
    /// (Ctrl-C): `summaries` holds only the chips finished before the
    /// interrupt, and progress was flushed to the checkpoint/journal.
    pub interrupted: bool,
    /// Damaged checkpoint or journal records skipped during resume, as
    /// display strings. The affected chips are simply re-simulated.
    pub corrupt_records: Vec<String>,
}

impl DegradationReport {
    /// True when nothing was absorbed: no retries, no quarantined chips,
    /// no failed checkpoint writes.
    pub fn is_clean(&self) -> bool {
        self.retried.is_empty()
            && self.quarantined.is_empty()
            && self.checkpoint_failures.is_empty()
            && self.watchdog_fired.is_empty()
            && !self.interrupted
            && self.corrupt_records.is_empty()
    }

    /// Total failed job attempts absorbed by retries (successful chips
    /// only; quarantined chips are listed separately).
    pub fn attempts_absorbed(&self) -> u64 {
        self.retried.iter().map(|(_, n)| u64::from(*n)).sum()
    }

    /// Sorts the chip lists by id (the runner calls this before handing
    /// the report out).
    pub(crate) fn normalize(&mut self) {
        self.retried.sort_by_key(|(chip, _)| *chip);
        self.quarantined.sort();
        self.watchdog_fired.sort_by_key(|(chip, _)| *chip);
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "degradation: none");
        }
        writeln!(
            f,
            "degradation: {} retried, {} quarantined, {} checkpoint failures, {} watchdog fires{}",
            self.retried.len(),
            self.quarantined.len(),
            self.checkpoint_failures.len(),
            self.watchdog_fired.len(),
            if self.interrupted {
                ", interrupted"
            } else {
                ""
            }
        )?;
        for (chip, attempts) in &self.retried {
            writeln!(f, "  retried chip {} ({attempts} failed attempts)", chip.0)?;
        }
        for chip in &self.quarantined {
            writeln!(f, "  quarantined chip {} (no result)", chip.0)?;
        }
        for err in &self.checkpoint_failures {
            writeln!(f, "  checkpoint save failed: {err}")?;
        }
        for (chip, fires) in &self.watchdog_fired {
            writeln!(f, "  watchdog cancelled chip {} ({fires} attempts)", chip.0)?;
        }
        for rec in &self.corrupt_records {
            writeln!(f, "  corrupt record skipped: {rec}")?;
        }
        if self.interrupted {
            writeln!(f, "  run interrupted: results are partial")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_is_one_line() {
        let report = DegradationReport::default();
        assert!(report.is_clean());
        assert_eq!(report.attempts_absorbed(), 0);
        assert_eq!(report.to_string(), "degradation: none");
    }

    #[test]
    fn report_lists_everything_sorted() {
        let mut report = DegradationReport {
            retried: vec![(ChipId(5), 2), (ChipId(1), 1)],
            quarantined: vec![ChipId(7), ChipId(3)],
            checkpoint_failures: vec!["disk full".into()],
            watchdog_fired: vec![(ChipId(7), 3), (ChipId(5), 1)],
            interrupted: true,
            corrupt_records: vec!["checkpoint line 4: bad CRC".into()],
        };
        report.normalize();
        assert_eq!(report.retried, vec![(ChipId(1), 1), (ChipId(5), 2)]);
        assert_eq!(report.quarantined, vec![ChipId(3), ChipId(7)]);
        assert_eq!(report.watchdog_fired, vec![(ChipId(5), 1), (ChipId(7), 3)]);
        assert_eq!(report.attempts_absorbed(), 3);
        let text = report.to_string();
        assert!(text.contains("1 checkpoint failures"));
        assert!(text.contains("quarantined chip 3"));
        assert!(text.contains("disk full"));
        assert!(text.contains("watchdog cancelled chip 7 (3 attempts)"));
        assert!(text.contains("interrupted"));
        assert!(text.contains("bad CRC"));
    }

    #[test]
    fn interruption_alone_makes_a_report_dirty() {
        let report = DegradationReport {
            interrupted: true,
            ..DegradationReport::default()
        };
        assert!(!report.is_clean());
        assert!(report.to_string().contains("results are partial"));
    }
}
