//! Property-style robustness of the on-disk formats: loading a damaged
//! checkpoint or journal must **never panic**, whatever the damage.
//!
//! Damage is generated with the repo's own deterministic [`CounterRng`]
//! (no external fuzzing crate): random truncations (the SIGKILL torn
//! write), random byte flips (bit rot — this is exactly what the
//! per-record CRCs exist to catch), spliced garbage lines, and whole-file
//! garbage including invalid UTF-8. Every case must come back as a value:
//! `Ok` with the surviving records and typed warnings, or a typed `Err` —
//! a panic fails the test by unwinding.

use std::fs;
use std::path::PathBuf;
use vs_fleet::{
    load_checkpoint, load_checkpoint_report, replay_journal, save_checkpoint, ChipJournal,
    ChipSummary, CoreMarginSummary,
};
use vs_types::rng::CounterRng;
use vs_types::ChipId;

const FINGERPRINT: u64 = 0x5EED_F00D_CAFE_2014;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vs-fleet-hardening-tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn summary(id: u64) -> ChipSummary {
    ChipSummary {
        chip: ChipId(id),
        die_seed: 0xD1E5 ^ id.wrapping_mul(0x9E37_79B9),
        margins: vec![CoreMarginSummary {
            core: 0,
            first_error_mv: 700 + id as i32,
            min_safe_mv: 610 + id as i32,
        }],
        mean_vdd_mv: vec![741.5 + id as f64 * 0.25],
        vdd_reduction: vec![0.07 - id as f64 * 1e-4],
        energy_savings: 0.31 + id as f64 * 1e-3,
        correctable: 900 + id,
        emergencies: id % 3,
        crashes: 0,
        sw_overhead: 0.012,
        dues: 0,
        rollbacks: id % 2,
    }
}

/// Pristine checkpoint and journal bytes to mutate.
fn seed_bytes() -> (Vec<u8>, Vec<u8>) {
    let summaries: Vec<ChipSummary> = (0..8).map(summary).collect();
    let ckpt = scratch("seed.ckpt");
    save_checkpoint(&ckpt, FINGERPRINT, &summaries).unwrap();
    let jpath = scratch("seed.journal");
    let mut journal = ChipJournal::create(&jpath, FINGERPRINT).unwrap();
    for s in &summaries {
        journal.append(s).unwrap();
    }
    drop(journal);
    (fs::read(&ckpt).unwrap(), fs::read(&jpath).unwrap())
}

/// The property under test: loading any byte sequence returns a value
/// instead of panicking, and the checkpoint's lenient and strict loaders
/// agree on the surviving records.
fn must_not_panic(case: &str, ckpt_bytes: &[u8], journal_bytes: &[u8]) {
    // Tests run in parallel: the mutated files must be per-case.
    let tag: String = case
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '-' })
        .collect();
    let ckpt = scratch(&format!("{tag}.ckpt"));
    let jpath = scratch(&format!("{tag}.journal"));
    fs::write(&ckpt, ckpt_bytes).unwrap();
    fs::write(&jpath, journal_bytes).unwrap();
    if let Ok(report) = load_checkpoint_report(&ckpt, FINGERPRINT) {
        let lenient = load_checkpoint(&ckpt, FINGERPRINT)
            .unwrap_or_else(|e| panic!("{case}: report loaded but load() failed: {e}"));
        assert_eq!(report.summaries, lenient, "{case}: loaders disagree");
        for s in &report.summaries {
            // Whatever survived must be a record we actually wrote.
            assert_eq!(s, &summary(s.chip.0), "{case}: corrupted record surfaced");
        }
    }
    if let Ok(replay) = replay_journal(&jpath, FINGERPRINT) {
        for s in &replay.summaries {
            assert_eq!(s, &summary(s.chip.0), "{case}: corrupted record surfaced");
        }
    }
}

#[test]
fn random_truncations_never_panic() {
    let (ckpt, journal) = seed_bytes();
    let mut rng = CounterRng::from_key(0x7AC4_0001, &[]);
    for case in 0..48 {
        let c_cut = (rng.next_u64() as usize) % (ckpt.len() + 1);
        let j_cut = (rng.next_u64() as usize) % (journal.len() + 1);
        must_not_panic(
            &format!("truncate case {case} ({c_cut}/{j_cut})"),
            &ckpt[..c_cut],
            &journal[..j_cut],
        );
    }
}

#[test]
fn random_byte_flips_never_panic_and_never_surface_corrupt_records() {
    let (ckpt, journal) = seed_bytes();
    let mut rng = CounterRng::from_key(0x7AC4_0002, &[]);
    for case in 0..48 {
        let mut c = ckpt.clone();
        let mut j = journal.clone();
        // Flip 1..=4 bytes in each file; a flip may hit the header (hard
        // error), a record body (CRC catches it), or the CRC itself.
        for _ in 0..=(rng.next_u64() % 4) {
            let pos = (rng.next_u64() as usize) % c.len();
            c[pos] ^= (rng.next_u64() % 255 + 1) as u8;
            let pos = (rng.next_u64() as usize) % j.len();
            j[pos] ^= (rng.next_u64() % 255 + 1) as u8;
        }
        must_not_panic(&format!("flip case {case}"), &c, &j);
    }
}

#[test]
fn spliced_garbage_lines_never_panic() {
    let (ckpt, journal) = seed_bytes();
    let mut rng = CounterRng::from_key(0x7AC4_0003, &[]);
    let garbage = [
        "chip",
        "chip X seed=nope",
        "chip 3 seed=41d58a6ff5e25946",
        "deadbeef chip 1 seed=0",
        "chip 1 seed=0 margins=0:1:2 vdd= red= es=x ce=1 em=0 cr=0 sw=0 crc=zz",
        "\u{1F980}\u{1F980}\u{1F980}",
        "chip 18446744073709551615 seed=ffffffffffffffff crc=00000000",
    ];
    for case in 0..24 {
        let mut c = String::from_utf8(ckpt.clone()).unwrap();
        let mut j = String::from_utf8(journal.clone()).unwrap();
        for _ in 0..=(rng.next_u64() % 3) {
            let line = garbage[(rng.next_u64() as usize) % garbage.len()];
            // Splice at a random line boundary below the header.
            let at = c.len() - (rng.next_u64() as usize % (c.len() / 2));
            let at = c[..at].rfind('\n').map_or(c.len(), |p| p + 1);
            c.insert_str(at, &format!("{line}\n"));
            let at = j.len() - (rng.next_u64() as usize % (j.len() / 2));
            let at = j[..at].rfind('\n').map_or(j.len(), |p| p + 1);
            j.insert_str(at, &format!("{line}\n"));
        }
        must_not_panic(&format!("splice case {case}"), c.as_bytes(), j.as_bytes());
    }
}

#[test]
fn whole_file_garbage_never_panics() {
    let mut rng = CounterRng::from_key(0x7AC4_0004, &[]);
    for case in 0..24 {
        let len = (rng.next_u64() % 512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Raw random bytes (usually invalid UTF-8) in both roles.
        must_not_panic(&format!("garbage case {case}"), &bytes, &bytes);
    }
}

#[test]
fn damaged_records_are_reported_and_the_rest_survive() {
    let (ckpt, _) = seed_bytes();
    let mut text = String::from_utf8(ckpt).unwrap();
    // Corrupt one digit inside the *last* record's payload.
    let pos = text.rfind("seed=").unwrap() + 6;
    unsafe {
        let b = text.as_bytes_mut();
        b[pos] = if b[pos] == b'0' { b'1' } else { b'0' };
    }
    let path = scratch("one-bad-record.ckpt");
    fs::write(&path, &text).unwrap();
    let report = load_checkpoint_report(&path, FINGERPRINT).unwrap();
    assert_eq!(report.summaries.len(), 7, "only the damaged record is lost");
    assert_eq!(report.warnings.len(), 1);
}
