//! Dev tool: wall-time breakdown of one fleet chip job by phase
//! (characterize, calibrate, speculation run, baseline), so a fleet
//! throughput regression can be localized to a phase before reaching
//! for a full profiler. This is how the weak-table rebuild cost that
//! motivated the shared `CellBank` (DESIGN.md §6i) was found.
//!
//! Run with `cargo run --release -p vs-fleet --example profile_chip`.

use std::time::Instant;
use vs_fleet::{simulate_chip, FleetConfig};
use vs_platform::characterize::all_analytic_core_margins;
use vs_platform::Chip;
use vs_spec::{SpecRun, SpeculationSystem};
use vs_types::{ChipId, FleetSeed, SimTime};

fn main() {
    let mut config = FleetConfig::small(FleetSeed(2014), 32);
    config.run_duration = SimTime::from_millis(250);

    for chip in 0..2u64 {
        let chip_config = config.chip_config(ChipId(chip));

        let t0 = Instant::now();
        let mut scratch = Chip::new(chip_config.clone());
        let _margins = all_analytic_core_margins(&mut scratch);
        let t_char = t0.elapsed();

        let t0 = Instant::now();
        let mut sys = SpeculationSystem::new(chip_config.clone(), config.controller);
        sys.calibrate_fast();
        let t_cal = t0.elapsed();

        let t0 = Instant::now();
        let mut session = SpecRun::new(&sys, config.run_duration);
        while session.advance(&mut sys, config.slice_ticks) > 0 {}
        let _stats = session.finish(&sys);
        let t_run = t0.elapsed();

        let t0 = Instant::now();
        let mut base = SpeculationSystem::new(chip_config.clone(), config.controller);
        let _b = base.run_baseline(config.run_duration);
        let t_base = t0.elapsed();

        println!(
            "chip {chip}: characterize={:.1}ms calibrate={:.1}ms run={:.1}ms baseline={:.1}ms",
            t_char.as_secs_f64() * 1e3,
            t_cal.as_secs_f64() * 1e3,
            t_run.as_secs_f64() * 1e3,
            t_base.as_secs_f64() * 1e3,
        );
    }

    let t0 = Instant::now();
    for chip in 0..4 {
        let _ = simulate_chip(&config, ChipId(chip));
    }
    println!("whole jobs: {:.3} s / 4", t0.elapsed().as_secs_f64());
}
