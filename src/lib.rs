//! # voltspec
//!
//! A full-system simulation and reproduction of **"Using ECC Feedback to
//! Guide Voltage Speculation in Low-Voltage Processors"** (Bacha &
//! Teodorescu, MICRO 2014).
//!
//! Low-voltage operation needs guardbands that can eat most of its energy
//! savings. The paper's insight: ECC-protected cache lines err
//! *deterministically* — the same weak lines, at the same voltages — and at
//! low Vdd the band between the first correctable error and the crash
//! voltage is wide. A tiny hardware monitor that continuously probes each
//! voltage domain's weakest line yields a dense error-rate signal that a
//! controller can servo on, shaving ~8 % of Vdd (and ~33 % of power) with
//! no performance loss.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | units, identifiers, deterministic RNG, statistics |
//! | [`ecc`] | Hsiao SEC-DED codecs and event logs |
//! | [`sram`] | process-variation cell model and failure sampling |
//! | [`cache`] | geometry-accurate hierarchy with an encoded data path |
//! | [`pdn`] | regulators, IR drop, resonant droop |
//! | [`power`] | dynamic/leakage power and energy accounting |
//! | [`workload`] | benchmark suites, stress kernels, the voltage virus |
//! | [`platform`] | the simulated CMP and characterization harnesses |
//! | [`spec`] | **the contribution**: monitors, calibration, control, experiments |
//! | [`faults`] | deterministic fault injection (DUEs, crashes, droops) and recovery policies |
//! | [`fleet`] | parallel multi-chip population simulation and statistics |
//! | [`telemetry`] | structured event tracing, metrics registry, profiling spans |
//! | [`guard`] | run supervision: cancellation tokens, watchdogs, crash-safe journaling |
//! | [`sentinel`] | online safety-invariant monitoring over telemetry streams |
//!
//! # Quickstart
//!
//! ```no_run
//! use voltspec::platform::ChipConfig;
//! use voltspec::spec::SpeculationSystem;
//! use voltspec::types::SimTime;
//! use voltspec::workload::Suite;
//!
//! // One simulated die (the seed *is* the silicon). The builder
//! // surfaces bad configs as `Err(ConfigError)` instead of panicking.
//! let mut system = SpeculationSystem::builder(ChipConfig::low_voltage(42))
//!     .build()
//!     .expect("reference config is valid");
//! // Boot-time calibration finds and designates the weak lines.
//! system.calibrate_fast();
//! // Run CoreMark on every core under closed-loop speculation.
//! system.assign_suite(Suite::CoreMark, SimTime::from_secs(30));
//! let stats = system.run(SimTime::from_secs(120));
//! assert!(stats.is_safe());
//! println!(
//!     "mean Vdd {:.0} mV, energy {:.1} J, {} correctable errors",
//!     stats.average_domain_vdd(),
//!     stats.energy_j,
//!     stats.correctable,
//! );
//! ```
//!
//! To regenerate the paper's tables and figures, run the `repro` binary
//! from the `vs-bench` crate: `cargo run --release -p vs-bench --bin repro
//! -- all`.

#![warn(missing_docs)]

pub use vs_cache as cache;
pub use vs_ecc as ecc;
pub use vs_faults as faults;
pub use vs_fleet as fleet;
pub use vs_guard as guard;
pub use vs_pdn as pdn;
pub use vs_platform as platform;
pub use vs_power as power;
pub use vs_sentinel as sentinel;
pub use vs_spec as spec;
pub use vs_sram as sram;
pub use vs_telemetry as telemetry;
pub use vs_types as types;
pub use vs_workload as workload;

/// Workspace version, for reporting tools.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let mv = crate::types::Millivolts(800);
        assert_eq!(mv.as_volts(), 0.8);
        let code = crate::ecc::SecDed::hsiao_72_64();
        assert_eq!(code.codeword_bits(), 72);
        assert!(!crate::VERSION.is_empty());
    }
}
