//! The observability plane end to end: Prometheus snapshots, causal
//! span tracing, and the crash flight recorder.
//!
//! Everything here leans on the repo's determinism contract: traces,
//! metrics derived from traces, and postmortem bundles are pure
//! functions of `(config, seed)`, so every artifact must be
//! byte-identical for any worker count — and arming the new
//! instrumentation must never change the bytes existing consumers see.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;
use vs_faults::FaultSpec;
use vs_fleet::{ControllerVariant, FleetConfig, FleetRunner};
use vs_fleetd::{FleetStore, Response, Scheduler, SchedulerConfig, SweepSpec};
use vs_obs::span::{chip_span, job_span, lane_of, lane_span};
use vs_obs::{read_bundle, render_prometheus, PostmortemTrigger, PromSnapshot, SpanTree};
use vs_telemetry::{EventCategory, EventFilter, EventMetrics, SilentProgress, SpanLevel};
use vs_types::{ChipId, FleetSeed, SimTime};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("voltspec-obs-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_config(seed: u64, chips: u64) -> FleetConfig {
    let mut config = FleetConfig::small(FleetSeed(seed), chips);
    config.run_duration = SimTime::from_millis(500);
    config
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

/// The rendered Prometheus text for a seeded run is a golden artifact:
/// byte-stable across runs and worker counts. Regenerate the snapshot
/// with `BLESS=1 cargo test -q --test observability` after a deliberate
/// simulation or encoder change.
#[test]
fn golden_prometheus_snapshot_for_a_seeded_run() {
    let config = tiny_config(2014, 4);
    let render = |workers: usize| {
        let (_, trace) = FleetRunner::new(config.clone(), workers)
            .run_reporting(EventFilter::all(), &mut SilentProgress)
            .unwrap();
        render_prometheus(
            EventMetrics::from_events(&trace.events).registry(),
            "voltspec",
        )
    };
    let text = render(1);
    assert_eq!(text, render(4), "snapshot must not depend on sharding");

    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.prom");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden, &text).unwrap();
    }
    let expected = fs::read_to_string(&golden).expect("golden file (bless with BLESS=1)");
    assert_eq!(
        text, expected,
        "Prometheus text drifted from tests/golden/metrics.prom; \
         re-bless with BLESS=1 if the change is intentional"
    );

    // And the snapshot must survive its own parser.
    let snap = PromSnapshot::parse(&text).unwrap();
    assert!(snap.samples().count() > 0);
}

/// After every submitted job has pushed its terminal event, the job
/// gauges and counters reconcile exactly: nothing running, nothing
/// queued, and every admission accounted for in exactly one outcome
/// bucket. This is the scrape-side face of the scheduler's
/// settle-before-terminal ordering.
#[test]
fn job_gauges_reconcile_once_terminals_are_seen() {
    let store = FleetStore::open(&scratch("reconcile")).unwrap();
    let sched = Scheduler::start(
        SchedulerConfig {
            workers: 2,
            queue_cap: 16,
            job_workers: 1,
            deadline: None,
        },
        store,
    );
    let spec = |seed: u64, chips: u64| SweepSpec {
        seed,
        chips,
        variant: ControllerVariant::Hardware,
        quick: true,
        run_ms: 0,
        sentinel: false,
        inject: String::new(),
        key: String::new(),
        deadline_ms: 0,
    };
    let mut ids = Vec::new();
    for n in 0..5u64 {
        ids.push(sched.submit(spec(40 + n, 1 + n % 3)).unwrap().unwrap().job);
    }
    // Cancel one immediately — it must land in the cancelled bucket
    // whether it was caught queued or running.
    assert!(sched.cancel(ids[4]));

    for id in &ids {
        let mut cursor = 0;
        loop {
            let chunk = sched
                .watch(*id, cursor, Duration::from_millis(200))
                .unwrap();
            cursor += chunk.events.len();
            if chunk.events.iter().any(|e| {
                matches!(
                    e,
                    Response::Done { .. } | Response::Cancelled { .. } | Response::Failed { .. }
                )
            }) {
                break;
            }
        }
    }

    let snap = PromSnapshot::parse(&sched.metrics()).unwrap();
    let v = |name: &str| snap.value(name).unwrap_or_else(|| panic!("missing {name}"));
    assert_eq!(v("voltspec_fleetd_jobs_running"), 0.0);
    assert_eq!(v("voltspec_fleetd_jobs_queued"), 0.0);
    assert_eq!(v("voltspec_fleetd_jobs_submitted"), ids.len() as f64);
    assert_eq!(
        v("voltspec_fleetd_jobs_completed")
            + v("voltspec_fleetd_jobs_cancelled")
            + v("voltspec_fleetd_jobs_failed"),
        v("voltspec_fleetd_jobs_submitted"),
        "every admitted job settles into exactly one outcome bucket"
    );

    // The snapshot and the stats frame read the same atomics.
    let stats = sched.stats();
    assert_eq!(v("voltspec_fleetd_jobs_completed"), stats.completed as f64);
    assert_eq!(v("voltspec_fleetd_jobs_cancelled"), stats.cancelled as f64);
    assert_eq!(v("voltspec_fleetd_jobs_failed"), stats.failed as f64);

    sched.shutdown();
    sched.join();
}

/// The boot scrub is visible on the scrape surface: plant a torn
/// journal tail, boot the store the way `vs-fleetd` does, and the
/// `store.scrub_*` / `store.quarantined_sweeps` counters reconcile
/// exactly — with the scrub report the boot returned, and with the
/// Prometheus text a scheduler over that store serves.
#[test]
fn scrub_counters_reconcile_with_boot_recovery() {
    use std::sync::atomic::Ordering;
    use vs_fleet::{save_checkpoint_on, simulate_chip, ChipJournal};

    let dir = scratch("scrub-counters");
    let config = tiny_config(31, 2);
    let fp = config.fingerprint();
    let store = FleetStore::open(&dir).unwrap();
    let vfs = store.vfs().clone();
    let ckpt = store.checkpoint_path(&config);
    let jpath = store.journal_path(&config);
    let chips: Vec<_> = (0..2).map(|c| simulate_chip(&config, ChipId(c))).collect();
    save_checkpoint_on(&vfs, &ckpt, fp, &chips[..1]).unwrap();
    let mut journal = ChipJournal::create_on(&vfs, &jpath, fp).unwrap();
    journal.append(&chips[1]).unwrap();
    drop(journal);
    // Tear the final journal record a few bytes into its CRC frame —
    // exactly what a crash mid-append leaves behind.
    let text = fs::read_to_string(&jpath).unwrap();
    let keep = text.trim_end().rfind('\n').unwrap() + 1 + 4;
    fs::write(&jpath, &text.as_bytes()[..keep]).unwrap();

    let recovery = store.boot_recover().unwrap();
    assert_eq!(recovery.scrub.repairs(), 1, "the torn tail was truncated");
    assert!(recovery.quarantined.is_empty());

    let counters = store.counters().clone();
    assert_eq!(counters.scrub_runs.load(Ordering::Relaxed), 1);
    assert_eq!(
        counters.scrub_issues.load(Ordering::Relaxed),
        recovery.scrub.issues.len() as u64
    );
    assert_eq!(
        counters.scrub_repairs.load(Ordering::Relaxed),
        recovery.scrub.repairs()
    );
    assert_eq!(counters.quarantined_sweeps.load(Ordering::Relaxed), 0);

    let sched = Scheduler::start(
        SchedulerConfig {
            workers: 1,
            queue_cap: 4,
            job_workers: 1,
            deadline: None,
        },
        store,
    );
    let snap = PromSnapshot::parse(&sched.metrics()).unwrap();
    let v = |name: &str| snap.value(name).unwrap_or_else(|| panic!("missing {name}"));
    assert_eq!(v("voltspec_store_scrub_runs"), 1.0);
    assert_eq!(
        v("voltspec_store_scrub_issues"),
        recovery.scrub.issues.len() as f64
    );
    assert_eq!(v("voltspec_store_scrub_repairs"), 1.0);
    assert_eq!(v("voltspec_store_quarantined_sweeps"), 0.0);
    sched.shutdown();
    sched.join();
}

// ---------------------------------------------------------------------------
// Causal span tracing
// ---------------------------------------------------------------------------

/// Arming spans adds span events without touching any existing trace
/// byte, the armed trace is itself worker-count invariant, and the
/// job → lane → chip → batch tree reconstructs from the merged stream.
#[test]
fn span_tracing_is_byte_neutral_and_reconstructs_the_causal_tree() {
    let config = tiny_config(77, 6);
    let run = |workers: usize, spans: bool| {
        let mut runner = FleetRunner::new(config.clone(), workers);
        if spans {
            runner = runner.with_spans(9);
        }
        let (_, trace) = runner
            .run_reporting(EventFilter::all(), &mut SilentProgress)
            .unwrap();
        trace
    };

    let plain = run(1, false);
    let armed_1 = run(1, true);
    let armed_4 = run(4, true);
    assert_eq!(
        armed_1.to_jsonl(),
        armed_4.to_jsonl(),
        "span-armed traces are byte-identical under any sharding"
    );

    // Byte-neutrality: strip the span category and the armed trace is
    // exactly the plain one.
    let stripped: Vec<_> = armed_1
        .events
        .iter()
        .filter(|e| e.category() != EventCategory::Span)
        .cloned()
        .collect();
    assert_eq!(stripped, plain.events);
    assert!(
        armed_1.events.len() > plain.events.len(),
        "spans were emitted"
    );

    // Tree reconstruction via parent links, not stream nesting.
    let tree = SpanTree::from_events(&armed_1.events);
    let roots: Vec<_> = tree.roots().collect();
    assert_eq!(roots.len(), 1);
    let job = roots[0];
    assert_eq!(job.level, SpanLevel::Job);
    assert_eq!(job.id, job_span(9));
    assert_eq!(job.ident, 9);

    let lanes: Vec<_> = tree.children(job).collect();
    assert!(!lanes.is_empty());
    for lane in &lanes {
        assert_eq!(lane.level, SpanLevel::Lane);
        assert_eq!(lane.id, lane_span(lane.ident));
        for chip in tree.children(lane) {
            assert_eq!(chip.level, SpanLevel::Chip);
            assert_eq!(chip.id, chip_span(ChipId(chip.ident)));
            assert_eq!(
                lane.ident,
                lane_of(ChipId(chip.ident)),
                "chips hang off their virtual lane, not a worker thread"
            );
            assert!(chip.close_at.is_some(), "chip spans close");
        }
    }
    let chips: usize = lanes.iter().map(|l| tree.children(l).count()).sum();
    assert_eq!(chips as u64, 6, "every chip has a span");
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// An injected always-panicking chip is quarantined; the flight
/// recorder turns that into a metadata-only postmortem bundle whose
/// bytes are identical for any worker count.
#[test]
fn quarantine_bundles_are_byte_identical_across_worker_counts() {
    let mut config = tiny_config(11, 4);
    config.faults = FaultSpec::parse("panic:chip1x9").unwrap().materialize(4);
    let run = |workers: usize, dir: &str| {
        let dir = scratch(dir);
        let result = FleetRunner::new(config.clone(), workers)
            .with_flight_recorder(dir.clone())
            .run()
            .unwrap();
        assert_eq!(result.postmortems.len(), 1, "one quarantined chip");
        fs::read(&result.postmortems[0]).unwrap()
    };
    let one = run(1, "quarantine-w1");
    let four = run(4, "quarantine-w4");
    assert_eq!(one, four, "bundle bytes must not depend on sharding");
}

/// An injected hang plus a watchdog deadline: the chip's first attempts
/// are cancelled, the retry succeeds, and the successful attempt's ring
/// is dumped as a watchdog-triggered bundle. The bundle's event lines —
/// per-chip telemetry, so deterministic — are identical across worker
/// counts, and the bundle round-trips through the typed reader.
#[test]
fn watchdog_bundles_carry_identical_event_bytes() {
    let mut config = tiny_config(23, 3);
    config.faults = FaultSpec::parse("hang:chip1x1").unwrap().materialize(3);
    let run = |workers: usize, dir: &str| {
        let dir = scratch(dir);
        let result = FleetRunner::new(config.clone(), workers)
            .with_flight_recorder(dir.clone())
            .with_deadline(Duration::from_millis(300))
            .run()
            .unwrap();
        assert_eq!(result.postmortems.len(), 1, "one watchdog-hit chip");
        result.postmortems[0].clone()
    };
    let one = run(1, "watchdog-w1");
    let four = run(4, "watchdog-w4");
    let a = read_bundle(&one).unwrap();
    let b = read_bundle(&four).unwrap();
    assert_eq!(a.trigger, PostmortemTrigger::Watchdog);
    assert_eq!(a.chip, 1);
    assert_eq!(a.events, b.events, "ring events are per-chip, so identical");
    assert_eq!(a.fingerprint, b.fingerprint);
    assert!(!a.events.is_empty(), "the ring captured the final attempt");
    assert!(
        one.file_name() == four.file_name(),
        "bundle names are deterministic"
    );
}
