//! End-to-end integration: real calibration sweep, closed-loop run, and
//! energy accounting across the whole stack.

use voltspec::platform::ChipConfig;
use voltspec::spec::{CalibrationMethod, CalibrationPlan, ControllerConfig, SpeculationSystem};
use voltspec::types::{CoreId, Millivolts, SimTime};
use voltspec::workload::{benchmark, Suite};

fn small_config(seed: u64) -> ChipConfig {
    ChipConfig {
        num_cores: 2,
        weak_lines_tracked: 8,
        ..ChipConfig::low_voltage(seed)
    }
}

#[test]
fn sweep_calibration_then_safe_speculated_run() {
    let mut sys = SpeculationSystem::new(small_config(101), ControllerConfig::default());
    // The faithful path: voltage-stepped cache sweeps through the real
    // encoded data path.
    let outcomes = sys.calibrate().to_vec();
    assert_eq!(outcomes.len(), 1);
    let onset = outcomes[0].onset_vdd;
    assert!(
        (660..=760).contains(&onset.0),
        "first errors should appear ~100 mV below the 800 mV nominal, got {onset}"
    );

    sys.assign_workload(CoreId(0), Box::new(benchmark("gcc").expect("known")));
    let stats = sys.run(SimTime::from_secs(30));
    assert!(stats.is_safe(), "crashed cores: {:?}", stats.crashed_cores);
    assert!(stats.correctable > 0, "monitor feedback must flow");
    // Steady state rides the error band a little above the weak cell.
    let park = sys.chip().domain_set_point(voltspec::types::DomainId(0));
    assert!(
        park < Millivolts(790) && park > Millivolts(640),
        "implausible park point {park}"
    );
}

#[test]
fn sweep_and_oracle_calibration_agree() {
    let mut by_sweep = SpeculationSystem::new(small_config(202), ControllerConfig::default());
    let sweep = by_sweep
        .calibrate_with(&CalibrationPlan {
            method: CalibrationMethod::CacheSweep,
            ..CalibrationPlan::default()
        })
        .to_vec();
    let mut by_table = SpeculationSystem::new(small_config(202), ControllerConfig::default());
    let table = by_table.calibrate_with(&CalibrationPlan::fast()).to_vec();
    // Both must designate lines in the same structure neighbourhood: the
    // sweep's onset voltage within one coarse stride of the oracle's.
    assert_eq!(sweep.len(), table.len());
    let dv = (sweep[0].onset_vdd - table[0].onset_vdd).0.abs();
    assert!(dv <= 25, "onset disagreement {dv} mV");
}

#[test]
fn speculation_beats_fixed_nominal_on_every_suite() {
    for suite in Suite::ALL {
        let mut sys = SpeculationSystem::new(small_config(303), ControllerConfig::default());
        sys.calibrate_fast();
        sys.assign_suite(suite, SimTime::from_secs(5));
        let spec = sys.run(SimTime::from_secs(15));
        assert!(spec.is_safe(), "{} crashed", suite.label());

        let mut base = SpeculationSystem::new(small_config(303), ControllerConfig::default());
        base.assign_suite(suite, SimTime::from_secs(5));
        let baseline = base.run_baseline(SimTime::from_secs(15));
        assert!(
            spec.core_rail_energy_j < 0.92 * baseline.core_rail_energy_j,
            "{}: {} J vs {} J",
            suite.label(),
            spec.core_rail_energy_j,
            baseline.core_rail_energy_j
        );
    }
}

#[test]
fn monitor_line_holds_no_workload_data_and_events_stay_correctable() {
    let mut sys = SpeculationSystem::new(small_config(404), ControllerConfig::default());
    sys.calibrate_fast();
    let designated = sys.calibration()[0];
    sys.assign_workload(CoreId(0), Box::new(benchmark("mcf").expect("known")));
    sys.assign_workload(CoreId(1), Box::new(benchmark("swim").expect("known")));
    let stats = sys.run(SimTime::from_secs(20));
    assert!(stats.is_safe());
    // Zero uncorrectable events anywhere in the run.
    assert_eq!(sys.chip().log().uncorrectable_count(), 0);
    // Every workload-attributed event must come from a non-designated line.
    for e in sys.chip().log().correctable() {
        if e.line.core == designated.core && e.line.cache == designated.kind {
            // Events from the designated line are the monitor's own.
            continue;
        }
        assert_ne!(
            (e.line.cache, e.line.location),
            (designated.kind, designated.line),
            "workload data must never land on the de-configured line"
        );
    }
}

#[test]
fn emergency_path_recovers_from_an_induced_collapse() {
    let mut sys = SpeculationSystem::new(small_config(505), ControllerConfig::default());
    sys.calibrate_fast();
    let onset = sys.calibration()[0].onset_vdd;
    // Let it settle into the band first.
    let settled = sys.run(SimTime::from_secs(10));
    assert!(settled.is_safe());
    // Sabotage: slam the rail deep into the failure region. The next probe
    // bursts must fire the emergency interrupt and climb back out.
    let domain = voltspec::types::DomainId(0);
    sys.chip_mut()
        .request_domain_voltage(domain, onset - Millivolts(20));
    let recovery = sys.run(SimTime::from_secs(5));
    assert!(recovery.emergencies > 0, "emergency must have fired");
    assert!(recovery.is_safe(), "recovery must not crash the cores");
    let final_v = sys.chip().domain_set_point(domain);
    assert!(
        final_v > onset - Millivolts(20),
        "controller must have climbed out of the hole, at {final_v}"
    );
}
