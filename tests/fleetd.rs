//! End-to-end fleet-daemon sessions over both transports.
//!
//! Each test drives a real [`Scheduler`] with real sweep jobs:
//!
//! * a full client/server session over the **Unix socket** transport —
//!   submit, stream incremental telemetry, query stats, cancel, typed
//!   `Busy` beyond the admission cap, graceful shutdown;
//! * the same session shape over the **JSONL-over-stdio** fallback,
//!   driven with in-memory buffers through the identical handler;
//! * crash recovery: a store left the way a SIGKILL'd daemon leaves it
//!   (journal records, no checkpoint) recovers every completed chip on
//!   restart, and the resumed sweep matches an uninterrupted run
//!   bit-for-bit. (CI additionally smokes the real binary with a real
//!   `kill -9`.)

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use vs_fleet::{simulate_chip, ChipJournal, ControllerVariant};
use vs_fleetd::server::{serve_jsonl, serve_unix};
use vs_fleetd::{
    config_for, Client, FleetStore, JobOutcome, Response, Scheduler, SchedulerConfig, SweepSpec,
};
use vs_types::ChipId;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("voltspec-fleetd-e2e").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(seed: u64, chips: u64) -> SweepSpec {
    SweepSpec {
        seed,
        chips,
        variant: ControllerVariant::Hardware,
        quick: true,
        run_ms: 0,
        sentinel: false,
        inject: String::new(),
        key: String::new(),
        deadline_ms: 0,
    }
}

fn tight_sched() -> SchedulerConfig {
    SchedulerConfig {
        workers: 1,
        queue_cap: 1,
        job_workers: 2,
        deadline: Some(Duration::from_secs(120)),
    }
}

#[test]
fn socket_session_full_lifecycle() {
    let dir = scratch("socket");
    let socket = dir.join("fleetd.sock");
    let store = FleetStore::open(&dir.join("store")).unwrap();
    let scheduler = Arc::new(Scheduler::start(tight_sched(), store));
    let serve = {
        let scheduler = Arc::clone(&scheduler);
        let socket = socket.clone();
        thread::spawn(move || serve_unix(&socket, scheduler))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "socket never appeared");
        thread::sleep(Duration::from_millis(20));
    }

    let mut client = Client::connect(&socket).unwrap();
    // One worker, one queue slot: the first job runs, the second queues,
    // and everything past that must be a typed Busy.
    let running = client.submit(spec(1, 6)).unwrap().expect("admitted").job;
    let queued = client.submit(spec(2, 6)).unwrap().expect("queued").job;
    match client.submit(spec(3, 6)).unwrap() {
        Err(Response::Busy { queued: q, cap, .. }) => {
            assert_eq!(cap, 1);
            assert_eq!(q, 1);
        }
        other => panic!("expected Busy past the cap, got {other:?}"),
    }

    // Cancel the queued job while the first still runs; it must end
    // Cancelled without ever simulating a chip.
    client.cancel(queued).unwrap();

    // Stream the running job on a second connection: incremental chip
    // frames carrying telemetry JSONL, then the terminal Done.
    let mut watcher = Client::connect(&socket).unwrap();
    let mut chip_events = Vec::new();
    let outcome = watcher
        .watch(running, |resp| {
            if let Response::Chip {
                completed,
                total,
                event,
                ..
            } = resp
            {
                assert!(*completed >= 1 && *completed <= *total);
                assert!(
                    event.starts_with("{\"event\":\"job_finished\""),
                    "chip frame carries the telemetry event, got {event:?}"
                );
                chip_events.push(event.clone());
            }
        })
        .unwrap();
    assert_eq!(chip_events.len(), 6, "every chip streamed incrementally");
    match outcome {
        JobOutcome::Done {
            chips,
            resumed,
            violations,
            ..
        } => {
            assert_eq!(chips, 6);
            assert_eq!(resumed, 0);
            assert_eq!(violations, 0);
        }
        other => panic!("expected Done, got {other:?}"),
    }
    match watcher.watch(queued, |_| {}).unwrap() {
        JobOutcome::Cancelled { chips } => assert_eq!(chips, 0),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.workers, 1);
    assert_eq!(stats.queue_cap, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.stored_chips, 6);
    // Both jobs reached terminal events before this snapshot, so the
    // running/queued gauges must already read zero — counters settle
    // strictly before the terminal push.
    assert_eq!(stats.running, 0);
    assert_eq!(stats.queued, 0);

    client.shutdown().unwrap();
    serve.join().unwrap().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stdio_session_full_lifecycle() {
    let dir = scratch("stdio");
    let store = FleetStore::open(&dir.join("store")).unwrap();
    let scheduler = Scheduler::start(SchedulerConfig::default(), store);

    // The whole session, scripted: the first admitted job has id 1.
    let submit = vs_fleetd::protocol::encode_request(&vs_fleetd::Request::Submit(spec(7, 3)));
    let watch = vs_fleetd::protocol::encode_request(&vs_fleetd::Request::Watch { job: 1 });
    let stats = vs_fleetd::protocol::encode_request(&vs_fleetd::Request::Stats);
    let shutdown = vs_fleetd::protocol::encode_request(&vs_fleetd::Request::Shutdown);
    let script = format!("{submit}\n{watch}\nnot json at all\n{stats}\n{shutdown}\n");

    let mut input = script.as_bytes();
    let mut output = Vec::new();
    serve_jsonl(&scheduler, &mut input, &mut output).unwrap();
    scheduler.join();

    let output = String::from_utf8(output).unwrap();
    let responses: Vec<Response> = output
        .lines()
        .map(|l| vs_fleetd::protocol::decode_response(l).unwrap())
        .collect();
    assert!(matches!(responses[0], Response::Submitted { job: 1, .. }));
    let chips = responses
        .iter()
        .filter(|r| matches!(r, Response::Chip { .. }))
        .count();
    assert_eq!(chips, 3, "watch streamed every chip as a JSONL line");
    assert!(responses
        .iter()
        .any(|r| matches!(r, Response::Done { chips: 3, .. })));
    // The garbage line got a typed error, not a dead daemon.
    assert!(responses
        .iter()
        .any(|r| matches!(r, Response::Error { .. })));
    match responses
        .iter()
        .find(|r| matches!(r, Response::Stats(_)))
        .unwrap()
    {
        Response::Stats(s) => {
            assert_eq!(s.completed, 1);
            assert_eq!(s.stored_chips, 3);
            // The stats request was scripted after the job's terminal
            // line, so the running gauge has already settled.
            assert_eq!(s.running, 0);
        }
        _ => unreachable!(),
    }
    assert!(matches!(responses.last(), Some(Response::Bye)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_recovers_the_journal_and_matches_an_uninterrupted_run() {
    let sweep = spec(55, 8);
    let config = config_for(&sweep);

    // A store exactly as a SIGKILL'd daemon leaves it: the write-ahead
    // journal holds the chips that finished, no checkpoint was ever
    // compacted. (The runner fsyncs each journal record before moving
    // on, so this is the real post-kill disk state.)
    let crashed_dir = scratch("crashed");
    let crashed = FleetStore::open(&crashed_dir.join("store")).unwrap();
    let mut journal =
        ChipJournal::create(&crashed.journal_path(&config), config.fingerprint()).unwrap();
    for i in 0..3 {
        journal.append(&simulate_chip(&config, ChipId(i))).unwrap();
    }
    drop(journal);

    // Daemon restart: recovery folds the journal into a checkpoint
    // streaming, losing nothing.
    let reports = crashed.recover().unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].merged, 3, "all journaled chips recovered");
    assert_eq!(reports[0].skipped, 0);
    assert_eq!(crashed.stored_chips(), 3);

    // Resubmitting the same sweep resumes: 3 restored, 5 simulated.
    let scheduler = Scheduler::start(SchedulerConfig::default(), crashed.clone());
    let resumed_outcome = run_to_end(&scheduler, sweep.clone());
    scheduler.join();
    let JobOutcome::Done {
        chips,
        resumed,
        mean_vdd_reduction: resumed_mean,
        ..
    } = resumed_outcome
    else {
        panic!("expected Done, got {resumed_outcome:?}");
    };
    assert_eq!(chips, 8);
    assert_eq!(resumed, 3);

    // And the result is bit-identical to a never-interrupted run.
    let fresh_dir = scratch("fresh");
    let fresh = FleetStore::open(&fresh_dir.join("store")).unwrap();
    let scheduler = Scheduler::start(SchedulerConfig::default(), fresh.clone());
    let fresh_outcome = run_to_end(&scheduler, sweep);
    scheduler.join();
    let JobOutcome::Done {
        chips: fresh_chips,
        mean_vdd_reduction: fresh_mean,
        ..
    } = fresh_outcome
    else {
        panic!("expected Done, got {fresh_outcome:?}");
    };
    assert_eq!(fresh_chips, 8);
    assert_eq!(
        resumed_mean.to_bits(),
        fresh_mean.to_bits(),
        "recovered run must match the uninterrupted run exactly"
    );
    assert_eq!(
        fs::read(crashed.checkpoint_path(&config)).unwrap(),
        fs::read(fresh.checkpoint_path(&config)).unwrap(),
        "the stores converge byte-for-byte"
    );
    let _ = fs::remove_dir_all(&crashed_dir);
    let _ = fs::remove_dir_all(&fresh_dir);
}

/// Submits a sweep and follows its event stream to the terminal event,
/// without a transport — the scheduler is the system under test here.
fn run_to_end(scheduler: &Scheduler, sweep: SweepSpec) -> JobOutcome {
    let job = scheduler.submit(sweep).unwrap().expect("admitted").job;
    let mut cursor = 0;
    loop {
        let chunk = scheduler
            .watch(job, cursor, Duration::from_millis(200))
            .expect("job known");
        for event in &chunk.events {
            cursor += 1;
            match event {
                Response::Done {
                    chips,
                    resumed,
                    mean_vdd_reduction,
                    violations,
                    ..
                } => {
                    return JobOutcome::Done {
                        chips: *chips,
                        resumed: *resumed,
                        mean_vdd_reduction: *mean_vdd_reduction,
                        violations: *violations,
                    }
                }
                Response::Cancelled { chips, .. } => {
                    return JobOutcome::Cancelled { chips: *chips }
                }
                Response::Failed { error, .. } => {
                    return JobOutcome::Failed {
                        error: error.clone(),
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon-tier torture: seeded fault schedules against a live daemon.
// ---------------------------------------------------------------------------

use std::sync::Mutex;
use vs_faults::{minimize, FaultPlan, FaultSpec};
use vs_fleetd::torture::{run_torture_case, torture_diverges, TortureCase};

/// The injected store-fault plan is process-global (one slot), so
/// torture cases from different test threads must never overlap.
static TORTURE_LOCK: Mutex<()> = Mutex::new(());

/// The acceptance gate of the torture layer: a seeded schedule mixing
/// every injection surface — torn frames, a dropped connection, a
/// stalled read, store ENOSPC, and an overload flood past admission
/// control — must leave a retrying client with results byte-identical
/// to a fault-free run, zero duplicate sweeps, and every fault visible
/// in the scraped metrics snapshot.
#[test]
fn seeded_torture_schedule_is_survived_byte_identically() {
    let _l = TORTURE_LOCK.lock().unwrap();
    let plan = FaultSpec::parse(
        "daemon:torn:2,daemon:disconnect:1,daemon:stall:1,daemon:enospc:2,daemon:overload:3",
    )
    .unwrap()
    .materialize(1);
    let clean_plan = FaultPlan::new();
    let fault_dir = scratch("torture-fault");
    let clean_dir = scratch("torture-clean");
    let fault = run_torture_case(&TortureCase {
        plan: &plan,
        seed: 99,
        chips: 4,
        job_workers: 2,
        break_dedup: false,
        dir: &fault_dir,
    })
    .unwrap();
    let clean = run_torture_case(&TortureCase {
        plan: &clean_plan,
        seed: 99,
        chips: 4,
        job_workers: 2,
        break_dedup: false,
        dir: &clean_dir,
    })
    .unwrap();

    // Identical results despite the schedule...
    assert!(
        matches!(fault.outcome, JobOutcome::Done { .. }),
        "tortured run must complete, got {:?}",
        fault.outcome
    );
    assert_eq!(fault.outcome, clean.outcome, "terminal outcomes diverged");
    assert_eq!(
        fault.done_lines, clean.done_lines,
        "per-chip results diverged under faults"
    );
    assert_eq!(fault.done_lines.len(), 4, "every chip exactly once");
    // ...with no duplicate admissions (the idempotency key held)...
    assert_eq!(fault.duplicate_sweeps, 0);
    // ...every scheduled wire fault actually fired...
    assert_eq!(fault.transport.torn_frames, 2);
    assert_eq!(fault.transport.disconnects, 1);
    assert_eq!(fault.transport.stalls, 1);
    assert!(fault.report.transport_retries >= 1, "faults forced retries");
    // ...the overload flood was shed by admission control...
    assert!(fault.shed_fillers >= 1, "overload past the cap must shed");
    // ...and every injection surface shows up in the Prometheus snapshot.
    let snap = vs_obs::PromSnapshot::parse(&fault.metrics).unwrap();
    assert!(
        snap.value("voltspec_guard_fs_enospc_injected")
            .unwrap_or(0.0)
            >= 1.0,
        "injected ENOSPC must be visible in metrics:\n{}",
        fault.metrics
    );
    assert!(
        snap.value("voltspec_fleetd_shed_queue_full").unwrap_or(0.0) >= 1.0,
        "queue-full sheds must be visible in metrics:\n{}",
        fault.metrics
    );
    let _ = fs::remove_dir_all(&fault_dir);
    let _ = fs::remove_dir_all(&clean_dir);
}

/// The planted recovery bug (a client that forgets its idempotency key
/// across transport retries) must be caught by the divergence oracle and
/// delta-debugged to the same minimal reproducer whatever the worker
/// count: one dropped connection, which loses the `submitted` response
/// after the daemon admitted the job — exactly the window idempotency
/// keys exist for.
#[test]
fn planted_idempotency_bug_shrinks_to_the_same_reproducer_for_any_worker_count() {
    let _l = TORTURE_LOCK.lock().unwrap();
    let plan = FaultSpec::parse("daemon:torn:1,daemon:disconnect:2,daemon:stall:1")
        .unwrap()
        .materialize(1);
    let mut reproducers = Vec::new();
    for job_workers in [1usize, 4] {
        let dir = scratch(&format!("torture-ddmin-{job_workers}"));
        assert!(
            torture_diverges(&plan, 7, 3, job_workers, true, &dir),
            "the planted bug must make the full schedule diverge ({job_workers} workers)"
        );
        let minimal = minimize(&plan, |cand| {
            torture_diverges(cand, 7, 3, job_workers, true, &dir)
        });
        reproducers.push(minimal.to_spec_string());
        let _ = fs::remove_dir_all(&dir);
    }
    assert_eq!(
        reproducers[0], reproducers[1],
        "the reproducer must not depend on the worker count"
    );
    assert_eq!(reproducers[0], "daemon:disconnect:1");
}
