//! Run supervision end to end: hung workers are watchdog-cancelled and
//! quarantined without stalling the fleet, cooperative cancellation
//! flushes resumable progress, and the write-ahead journal carries a run
//! across a crash even when the checkpoint cannot be written at all.

use std::path::PathBuf;
use std::time::Duration;
use voltspec::faults::{FaultPlan, FaultSpec};
use voltspec::fleet::{replay_journal, FleetConfig, FleetRunner};
use voltspec::guard::CancelToken;
use voltspec::telemetry::{EventFilter, SilentProgress};
use voltspec::types::{ChipId, FleetSeed, SimTime};

fn tiny_config() -> FleetConfig {
    let mut config = FleetConfig::small(FleetSeed(23), 6);
    config.run_duration = SimTime::from_millis(500);
    config
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("voltspec-guard-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// ISSUE acceptance: an injected hung worker is watchdog-cancelled and
/// quarantined, and the remaining chips complete with results identical
/// to a clean run's.
#[test]
fn hung_worker_is_cancelled_and_quarantined_without_stalling_the_fleet() {
    let clean = FleetRunner::new(tiny_config(), 2).run().unwrap();
    let mut config = tiny_config();
    config.faults = FaultSpec::parse("hang:chip3x99")
        .expect("spec parses")
        .materialize(config.num_chips);
    let result = FleetRunner::new(config, 3)
        .with_max_retries(1)
        .with_deadline(Duration::from_secs(1))
        .run()
        .unwrap();
    assert_eq!(result.degradation.quarantined, vec![ChipId(3)]);
    assert_eq!(result.degradation.watchdog_fired, vec![(ChipId(3), 2)]);
    assert_eq!(result.summaries.len(), 5);
    let without_chip3: Vec<_> = clean
        .summaries
        .iter()
        .filter(|s| s.chip != ChipId(3))
        .cloned()
        .collect();
    assert_eq!(
        result.summaries, without_chip3,
        "the surviving fleet must be bit-identical to a clean run"
    );
}

/// A chip that hangs once recovers on retry with a bit-identical
/// summary — the watchdog only decides *whether* a chip completes.
#[test]
fn transient_hang_recovers_to_a_bit_identical_fleet() {
    let clean = FleetRunner::new(tiny_config(), 2).run().unwrap();
    let mut config = tiny_config();
    config.faults = FaultPlan::new().worker_hang(ChipId(0), 1);
    let result = FleetRunner::new(config, 2)
        .with_deadline(Duration::from_secs(1))
        .run()
        .unwrap();
    assert_eq!(result.summaries, clean.summaries);
    assert_eq!(result.degradation.retried, vec![(ChipId(0), 1)]);
}

/// Cooperative cancellation mid-run flushes a valid checkpoint/journal;
/// resuming completes the fleet bit-identically to an undisturbed run.
#[test]
fn interrupt_flushes_resumable_progress() {
    let ckpt = scratch("interrupt.ckpt");
    let journal = scratch("interrupt.journal");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);

    let token = CancelToken::new();
    let trip = token.clone();
    let mut seen = 0u32;
    let partial = FleetRunner::new(tiny_config(), 2)
        .with_checkpoint(ckpt.clone())
        .with_journal(journal.clone())
        .with_cancel(token)
        .run_streaming(move |_| {
            seen += 1;
            if seen == 2 {
                trip.cancel();
            }
        })
        .unwrap();
    assert!(partial.degradation.interrupted);
    assert!(
        partial.summaries.len() < 6,
        "the interrupt must cut the run"
    );

    let resumed = FleetRunner::new(tiny_config(), 2)
        .with_checkpoint(ckpt)
        .with_journal(journal)
        .run()
        .unwrap();
    assert!(!resumed.degradation.interrupted);
    assert_eq!(resumed.resumed, partial.summaries.len() as u64);
    let fresh = FleetRunner::new(tiny_config(), 2).run().unwrap();
    assert_eq!(resumed.summaries, fresh.summaries);
}

/// The journal is the durability floor: even when every checkpoint save
/// fails (injected transient I/O errors exhausting the retry budget),
/// finished chips survive in the journal and resume from it.
#[test]
fn journal_carries_progress_when_the_checkpoint_cannot_be_saved() {
    let journal = scratch("floor.journal");
    let _ = std::fs::remove_file(&journal);

    // Every save attempt of this run fails: the journal alone persists.
    // (The fault plan is part of the config fingerprint, so the resume
    // below must carry the same plan to read this run's files.)
    let mut config = tiny_config();
    config.faults = FaultPlan::new().checkpoint_io_error(u32::MAX);
    let broken_ckpt = scratch("floor-broken.ckpt");
    let _ = std::fs::remove_file(&broken_ckpt);
    let first = FleetRunner::new(config.clone(), 2)
        .with_checkpoint(broken_ckpt.clone())
        .with_journal(journal.clone())
        .run()
        .unwrap();
    assert!(!first.degradation.checkpoint_failures.is_empty());
    assert!(!broken_ckpt.exists());
    let replay = replay_journal(&journal, config.fingerprint()).unwrap();
    assert_eq!(replay.summaries.len(), 6, "the journal kept every chip");

    // Resume replays the journal: nothing is re-simulated. (The startup
    // compaction still hits the injected save errors, which just means
    // the journal is kept as the durable copy once more.)
    let ckpt = scratch("floor.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let resumed = FleetRunner::new(config, 2)
        .with_checkpoint(ckpt)
        .with_journal(journal)
        .run()
        .unwrap();
    assert_eq!(resumed.resumed, 6);
    assert_eq!(resumed.simulated, 0);
    assert_eq!(resumed.summaries, first.summaries);
}

/// Guard decisions are part of the deterministic trace contract: with
/// supervision armed and a hang injected, the serialized event stream is
/// byte-identical for any worker count.
#[test]
fn supervised_traces_are_byte_identical_across_worker_counts() {
    let mut config = tiny_config();
    config.faults = FaultPlan::new().worker_hang(ChipId(2), 1);
    let run = |workers: usize| {
        let (result, trace) = FleetRunner::new(config.clone(), workers)
            .with_deadline(Duration::from_secs(1))
            .run_reporting(EventFilter::all(), &mut SilentProgress)
            .unwrap();
        (result, trace.to_jsonl())
    };
    let (result_1, trace_1) = run(1);
    let (result_4, trace_4) = run(4);
    assert_eq!(result_1.summaries, result_4.summaries);
    assert_eq!(result_1.degradation, result_4.degradation);
    assert_eq!(trace_1, trace_4);
    assert!(trace_1.contains("\"event\":\"watchdog_fired\""));
}

/// Cancellation tokens propagate parent to child but never child to
/// parent — a fired per-job watchdog must not look like a run-wide
/// interrupt.
#[test]
fn cancellation_scopes_nest_one_way() {
    let run = CancelToken::new();
    let job = run.child();
    job.cancel();
    assert!(job.is_cancelled());
    assert!(!run.is_cancelled(), "job cancel must not escape to the run");
    let job2 = run.child();
    run.cancel();
    assert!(job2.is_cancelled(), "run cancel must reach every job");
    assert!(!job2.is_cancelled_directly());
}

/// The VFS seam is behavior-neutral: the same run, once against the real
/// filesystem and once against the deterministic in-memory recorder,
/// leaves byte-identical checkpoint and journal files. This is what
/// makes the crash-matrix findings (recorded on SimFs) transfer to
/// production stores (written through StdFs).
#[test]
fn simfs_and_stdfs_produce_byte_identical_durability_files() {
    use std::sync::Arc;
    use voltspec::guard::vfs::{SimFs, VfsHandle};

    let config = tiny_config();

    // Real filesystem.
    let std_ckpt = scratch("vfs-parity.ckpt");
    let std_journal = scratch("vfs-parity.journal");
    let _ = std::fs::remove_file(&std_ckpt);
    let _ = std::fs::remove_file(&std_journal);
    let on_std = FleetRunner::new(config.clone(), 2)
        .with_checkpoint(std_ckpt.clone())
        .with_journal(std_journal.clone())
        .run()
        .unwrap();

    // Simulated filesystem, same protocol.
    let sim = Arc::new(SimFs::new());
    let vfs: VfsHandle = Arc::clone(&sim) as VfsHandle;
    let dir = std::path::Path::new("/vsim/run");
    vfs.create_dir_all(dir).unwrap();
    let sim_ckpt = dir.join("vfs-parity.ckpt");
    let sim_journal = dir.join("vfs-parity.journal");
    let on_sim = FleetRunner::new(config, 2)
        .with_vfs(vfs)
        .with_checkpoint(sim_ckpt.clone())
        .with_journal(sim_journal.clone())
        .run()
        .unwrap();
    assert_eq!(on_std.summaries, on_sim.summaries);

    let image = sim.snapshot();
    assert_eq!(
        std::fs::read(&std_ckpt).unwrap(),
        image.files[&sim_ckpt],
        "checkpoint bytes must not depend on the filesystem backend"
    );
    assert_eq!(
        std::fs::read(&std_journal).unwrap(),
        image.files[&sim_journal],
        "journal bytes must not depend on the filesystem backend"
    );
}
