//! Fleet trace determinism: the serialized telemetry stream of a fleet
//! run is byte-identical for any worker count, and tracing never changes
//! the simulation results.

use voltspec::fleet::{FleetConfig, FleetRunner};
use voltspec::telemetry::{
    EventCategory, EventFilter, JsonlProgress, SilentProgress, TelemetryEvent,
};
use voltspec::types::{FleetSeed, SimTime};

fn tiny_config() -> FleetConfig {
    let mut config = FleetConfig::small(FleetSeed(77), 6);
    config.run_duration = SimTime::from_millis(500);
    config
}

#[test]
fn trace_bytes_identical_across_worker_counts() {
    let config = tiny_config();
    let run = |workers: usize| {
        FleetRunner::new(config.clone(), workers)
            .run_reporting(EventFilter::all(), &mut SilentProgress)
            .unwrap()
    };
    let (result_1, trace_1) = run(1);
    let (result_8, trace_8) = run(8);

    assert_eq!(result_1.summaries, result_8.summaries);
    assert!(!trace_1.events.is_empty());
    assert_eq!(
        trace_1.to_jsonl(),
        trace_8.to_jsonl(),
        "the serialized trace must be byte-identical under any sharding"
    );

    // The merged stream brackets every chip in chip-id order:
    // job_started(i) .. job_finished(i), i ascending.
    let lifecycle: Vec<&TelemetryEvent> = trace_1
        .events
        .iter()
        .filter(|e| e.category() == EventCategory::Fleet)
        .collect();
    assert_eq!(lifecycle.len(), 12, "one start + one finish per chip");
    for (i, pair) in lifecycle.chunks(2).enumerate() {
        let chip = i as u64;
        assert!(
            matches!(pair[0], TelemetryEvent::JobStarted { chip: c } if c.0 == chip),
            "chip {chip} bracket opens the stream slice"
        );
        assert!(
            matches!(pair[1], TelemetryEvent::JobFinished { chip: c, .. } if c.0 == chip),
            "chip {chip} bracket closes the stream slice"
        );
    }

    // Wall-clock profiling rides along but stays out of the trace bytes.
    assert_eq!(trace_1.profile.workers.len(), 1);
    assert_eq!(trace_8.profile.workers.len(), 6, "workers clamp to jobs");
    assert_eq!(
        trace_8.profile.job_latency.count(),
        6,
        "one latency sample per chip"
    );
}

#[test]
fn tracing_does_not_change_results() {
    let config = tiny_config();
    let plain = FleetRunner::new(config.clone(), 4).run().unwrap();
    let (traced, trace) = FleetRunner::new(config.clone(), 4)
        .run_reporting(EventFilter::all(), &mut SilentProgress)
        .unwrap();
    assert_eq!(plain.summaries, traced.summaries);

    // An untraced reporting run produces no events at zero cost.
    let (untraced, empty) = FleetRunner::new(config, 2)
        .run_reporting(EventFilter::none(), &mut SilentProgress)
        .unwrap();
    assert_eq!(untraced.summaries, plain.summaries);
    assert!(empty.events.is_empty());
    assert!(!trace.events.is_empty());
}

#[test]
fn progress_reports_every_chip_once() {
    let config = tiny_config();
    let mut progress = JsonlProgress::new(Vec::new());
    FleetRunner::new(config.clone(), 3)
        .run_reporting(EventFilter::none(), &mut progress)
        .unwrap();
    let text = String::from_utf8(progress.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "one progress record per chip:\n{text}");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.contains(&format!("\"completed\":{},\"total\":6", i + 1)),
            "monotone completion count, got {line}"
        );
    }
    // Every chip id appears exactly once, in some scheduling order.
    for chip in 0..6 {
        assert_eq!(
            text.matches(&format!("\"chip\":{chip},")).count(),
            1,
            "chip {chip} reported once"
        );
    }
}
