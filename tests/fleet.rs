//! Population-level claims and guarantees of the fleet engine.
//!
//! The paper's evaluation is stated over chip *populations* (the Figure 1
//! Vmin spread, the ~8 % mean Vdd reduction); these tests re-express those
//! claims as assertions over simulated fleets at reduced scale (small
//! dies, short runs). The full-scale numbers come from
//! `repro --fleet 256 --workers 8`.

use std::collections::HashSet;
use voltspec::fleet::{ControllerVariant, FleetConfig, FleetRunner};
use voltspec::types::rng::CounterRng;
use voltspec::types::{ChipId, FleetSeed, SimTime};

/// Figures 1–2: minimum safe voltage varies widely and deterministically
/// across a population. Margins-only (baseline variant, one-tick runs) so
/// a 128-chip population stays cheap.
#[test]
fn claim_population_vmin_spread() {
    let mut config = FleetConfig::small(FleetSeed(2014), 128);
    config.variant = ControllerVariant::Baseline;
    config.run_duration = SimTime::from_millis(1);
    let result = FleetRunner::new(config.clone(), 4).run().unwrap();
    let stats = result.stats(&config);

    assert_eq!(stats.healthy_chips, 128);
    // Every core's floor sits well below the 800 mV nominal (§II-A: ~23 %
    // below at the low-voltage point)...
    let nominal = 800.0;
    let mean_vmin = stats.core_vmin_mv.mean().unwrap();
    assert!(
        mean_vmin < nominal * 0.83,
        "population mean Vmin should be >17% below nominal, got {mean_vmin:.0} mV"
    );
    // ...and the reclaimable guardband varies substantially die to die.
    // The paper's eight-chip sample spans ~4x in error-band onset; this
    // model's population spread at reduced die size is narrower but must
    // stay wide enough that per-chip calibration (not a one-size
    // guardband) is worth it.
    let spread_mv = stats.core_margin_mv.max().unwrap() - stats.core_margin_mv.min().unwrap();
    assert!(
        spread_mv >= 30.0,
        "population guardband spread should span tens of mV, got {spread_mv:.0}"
    );
    assert!(
        stats.vmin_spread().unwrap() > 1.15,
        "guardband max/min ratio too flat: {:?}",
        stats.vmin_spread()
    );
    // Margins are a die property: re-running the population reproduces
    // them exactly.
    let again = FleetRunner::new(config.clone(), 2).run().unwrap();
    assert_eq!(result.summaries, again.summaries);
}

/// §V-A at population scale: the hardware controller's mean Vdd reduction
/// across a fleet lands in the paper's ~8 % band, and every chip both
/// saves energy and stays safe.
#[test]
fn claim_population_vdd_reduction() {
    let config = FleetConfig::small(FleetSeed(2014), 16);
    let result = FleetRunner::new(config.clone(), 4).run().unwrap();
    let stats = result.stats(&config);

    assert_eq!(
        stats.healthy_chips, 16,
        "speculation must never crash a chip"
    );
    let mean = stats.mean_vdd_reduction();
    assert!(
        (0.04..0.15).contains(&mean),
        "paper: ~8% mean Vdd reduction, got {:.1}%",
        mean * 100.0
    );
    // Every chip individually speculates below nominal and saves energy.
    assert!(stats.chip_vdd_reduction.min().unwrap() > 0.0);
    assert!(stats.chip_energy_savings.min().unwrap() > 0.0);
    assert!(
        (0.10..0.45).contains(&stats.mean_energy_savings()),
        "energy savings out of shape: {:.1}%",
        stats.mean_energy_savings() * 100.0
    );
}

/// §V-F at population scale: the firmware baseline is structurally more
/// conservative than the hardware monitor on the same silicon.
#[test]
fn claim_population_software_is_conservative() {
    let mut hw_config = FleetConfig::small(FleetSeed(99), 6);
    hw_config.run_duration = SimTime::from_secs(2);
    let mut sw_config = hw_config.clone();
    sw_config.variant = ControllerVariant::Software;

    let hw = FleetRunner::new(hw_config.clone(), 2).run().unwrap();
    let sw = FleetRunner::new(sw_config.clone(), 2).run().unwrap();
    let hw_stats = hw.stats(&hw_config);
    let sw_stats = sw.stats(&sw_config);
    assert!(
        sw_stats.mean_vdd_reduction() < hw_stats.mean_vdd_reduction(),
        "firmware speculation must reclaim less: sw {:.3} vs hw {:.3}",
        sw_stats.mean_vdd_reduction(),
        hw_stats.mean_vdd_reduction()
    );
}

/// Property: per-chip RNG streams are non-overlapping — no chip's stream
/// ever reproduces a draw sequence of another chip (or of the same chip on
/// another stream id), across fleets, chips, and stream ids.
#[test]
fn property_chip_rng_streams_do_not_overlap() {
    const DRAWS: usize = 32;
    let mut meta = CounterRng::from_key(0xF1EE_CA5E, &[]);
    let mut all_draws: HashSet<u64> = HashSet::new();
    let mut streams = 0usize;
    for case in 0..8 {
        let fleet = FleetSeed(meta.next_u64());
        for chip in 0..32 {
            for stream in [0u64, 1, 0xA551_6E00] {
                let mut rng = fleet.chip_rng(ChipId(chip), stream);
                streams += 1;
                for draw in 0..DRAWS {
                    assert!(
                        all_draws.insert(rng.next_u64()),
                        "case {case}: chip {chip} stream {stream:#x} draw {draw} \
                         collided with another stream"
                    );
                }
            }
        }
    }
    // 8 fleets x 32 chips x 3 streams x 32 draws, all distinct: with
    // 64-bit outputs any repeat is an overlap, not chance (P < 1e-7).
    assert_eq!(all_draws.len(), streams * DRAWS);
}

/// Property: die seeds are unique across fleets and chips, and changing
/// the wafer generation re-draws every die.
#[test]
fn property_die_seeds_unique_across_fleets_and_wafers() {
    let mut seeds: HashSet<u64> = HashSet::new();
    for fleet in 0..16u64 {
        for wafer in 0..4u64 {
            let config = FleetConfig {
                wafer,
                ..FleetConfig::small(FleetSeed(fleet), 64)
            };
            for chip in 0..64 {
                assert!(
                    seeds.insert(config.die_seed(ChipId(chip))),
                    "die seed collision: fleet {fleet} wafer {wafer} chip {chip}"
                );
            }
        }
    }
    assert_eq!(seeds.len(), 16 * 4 * 64);
}
