//! Property-based invariants across the stack.

use proptest::prelude::*;
use voltspec::cache::{Cache, CacheGeometry, NoFaults};
use voltspec::ecc::{DecodeOutcome, SecDed};
use voltspec::pdn::{DomainSupply, LoadCurrent};
use voltspec::platform::{Chip, ChipConfig};
use voltspec::sram::{word_failure_probabilities, AccessContext, ChipVariation, SramParams};
use voltspec::types::rng::CounterRng;
use voltspec::types::{CacheKind, CoreId, Millivolts, SetWay, SimTime, VddMode};

proptest! {
    /// Every single-bit flip of any codeword of any data decodes back to
    /// the original data.
    #[test]
    fn ecc_corrects_any_single_flip(data: u64, bit in 0u32..72) {
        let code = SecDed::hsiao_72_64();
        let word = code.encode(data);
        match code.decode(code.inject(word, &[bit])) {
            DecodeOutcome::Corrected { data: d, bit: b, .. } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(b, bit);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    /// Any double flip is detected and never silently mis-corrected.
    #[test]
    fn ecc_detects_any_double_flip(data: u64, a in 0u32..72, b in 0u32..72) {
        prop_assume!(a != b);
        let code = SecDed::hsiao_72_64();
        let word = code.encode(data);
        let outcome = code.decode(code.inject(word, &[a, b]));
        prop_assert!(outcome.is_uncorrectable(), "got {:?}", outcome);
    }

    /// Cache fill/read is an identity through the encoded data path for
    /// arbitrary addresses and payloads.
    #[test]
    fn cache_roundtrip_arbitrary_lines(
        addr in 0u64..(1 << 30),
        seed: u64,
    ) {
        let mut cache = Cache::new(CacheKind::L2Data, CacheGeometry::new(64, 4, 128, 9));
        let data: Vec<u64> = (0..16).map(|i| seed.wrapping_mul(i + 1)).collect();
        cache.fill(addr, &data);
        let base = cache.geometry().line_base(addr);
        let read = cache.read(base, &mut NoFaults).expect("just filled");
        prop_assert_eq!(read.data, data);
        prop_assert!(read.events.is_empty());
    }

    /// Word failure probabilities always form a distribution and respond
    /// monotonically to voltage.
    #[test]
    fn sram_probabilities_well_formed(
        seed: u64,
        set in 0usize..256,
        way in 0usize..8,
        v in 500.0f64..900.0,
    ) {
        let chip = ChipVariation::new(seed, SramParams::default());
        let cells = chip.word_cells(
            CoreId(0), CacheKind::L2Data, SetWay::new(set, way), 0, VddMode::LowVoltage,
        );
        let ctx = AccessContext::new(v, 3.2);
        let (p0, p1, p2) = word_failure_probabilities(&cells, &ctx);
        prop_assert!((p0 + p1 + p2 - 1.0).abs() < 1e-9);
        prop_assert!(p0 >= 0.0 && p1 >= 0.0 && p2 >= 0.0);
        let lower = AccessContext::new(v - 25.0, 3.2);
        let (q0, _, _) = word_failure_probabilities(&cells, &lower);
        prop_assert!(q0 <= p0 + 1e-12, "lower voltage cannot be cleaner");
    }

    /// The regulator never leaves its range or the 5 mV grid, whatever is
    /// requested.
    #[test]
    fn regulator_respects_grid_and_range(requests in prop::collection::vec(-2000i32..3000, 1..40)) {
        let mut supply = DomainSupply::low_voltage_default();
        for r in requests {
            supply.regulator_mut().request(Millivolts(r));
            supply.tick();
            let v = supply.regulator().output();
            prop_assert!(v >= Millivolts(500) && v <= Millivolts(900));
            prop_assert_eq!(v.0 % 5, 0);
        }
    }

    /// Effective voltage never exceeds the set point (droops only pull
    /// down) for any non-negative load.
    #[test]
    fn droop_only_lowers_voltage(
        i_dc in 0.0f64..50.0,
        i_ac in 0.0f64..20.0,
        f in 1.0f64..1.0e9,
        step in 0.0f64..20.0,
    ) {
        let supply = DomainSupply::low_voltage_default();
        let load = LoadCurrent { i_dc_amps: i_dc, i_ac_amps: i_ac, f_osc_hz: f, transient_step_amps: step };
        let v = supply.effective_voltage_mv(&load);
        prop_assert!(v <= f64::from(supply.regulator().output().0));
    }

    /// Deterministic RNG substreams keyed differently never collide on
    /// their first draws (collision would silently correlate models).
    #[test]
    fn rng_streams_distinct(seed: u64, a: u64, b: u64) {
        prop_assume!(a != b);
        let x = CounterRng::from_key(seed, &[a]).next_u64();
        let y = CounterRng::from_key(seed, &[b]).next_u64();
        prop_assert_ne!(x, y);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the die, a short closed-loop run from nominal never
    /// crashes a core and never sees an uncorrectable error: the safety
    /// invariant of the whole system.
    #[test]
    fn speculation_is_safe_on_any_die(seed in 0u64..1_000_000) {
        let config = ChipConfig {
            num_cores: 2,
            weak_lines_tracked: 8,
            ..ChipConfig::low_voltage(seed)
        };
        let mut sys = voltspec::spec::SpeculationSystem::new(
            config,
            voltspec::spec::ControllerConfig::default(),
        );
        sys.calibrate_fast();
        sys.assign_workload(CoreId(0), Box::new(voltspec::workload::StressTest::default()));
        let stats = sys.run(SimTime::from_secs(8));
        prop_assert!(stats.is_safe(), "die {} crashed: {:?}", seed, stats.crashed_cores);
        prop_assert_eq!(sys.chip().log().uncorrectable_count(), 0);
        // And it actually speculated somewhere below nominal.
        prop_assert!(stats.mean_vdd_mv[0] < 800.0);
    }

    /// Chip ticks conserve sanity for arbitrary dies: power positive,
    /// effective voltages at or below set points, time advances.
    #[test]
    fn chip_tick_invariants(seed in 0u64..1_000_000) {
        let config = ChipConfig {
            num_cores: 2,
            weak_lines_tracked: 4,
            ..ChipConfig::low_voltage(seed)
        };
        let mut chip = Chip::new(config);
        chip.set_workload(CoreId(0), Box::new(voltspec::workload::StressTest::default()));
        for _ in 0..50 {
            let before = chip.now();
            let report = chip.tick();
            prop_assert!(report.power.0 > 0.0);
            prop_assert!(chip.now() > before);
            for (d, v) in report.domain_v_eff_mv.iter().enumerate() {
                let set = chip.domain_set_point(voltspec::types::DomainId(d));
                prop_assert!(*v <= f64::from(set.0) + 1e-9);
            }
        }
    }
}
