//! Property-based invariants across the stack.
//!
//! Hand-rolled property loops driven by the workspace's deterministic
//! [`CounterRng`] (no external fuzzing crate), so the suite builds fully
//! offline and every case is reproducible from the printed index.

use voltspec::cache::{Cache, CacheGeometry, NoFaults};
use voltspec::ecc::{DecodeOutcome, SecDed};
use voltspec::pdn::{DomainSupply, LoadCurrent};
use voltspec::platform::{Chip, ChipConfig};
use voltspec::sram::{word_failure_probabilities, AccessContext, ChipVariation, SramParams};
use voltspec::types::rng::CounterRng;
use voltspec::types::{CacheKind, CoreId, Millivolts, SetWay, SimTime, VddMode};

const CASES: usize = 256;

/// Every single-bit flip of any codeword of any data decodes back to the
/// original data.
#[test]
fn ecc_corrects_any_single_flip() {
    let mut rng = CounterRng::from_key(0x1471, &[1]);
    let code = SecDed::hsiao_72_64();
    for case in 0..CASES {
        let data = rng.next_u64();
        let bit = rng.next_below(72) as u32;
        let word = code.encode(data);
        match code.decode(code.inject(word, &[bit])) {
            DecodeOutcome::Corrected {
                data: d, bit: b, ..
            } => {
                assert_eq!(d, data, "case {case}");
                assert_eq!(b, bit, "case {case}");
            }
            other => panic!("case {case}: expected correction, got {other:?}"),
        }
    }
}

/// Any double flip is detected and never silently mis-corrected.
#[test]
fn ecc_detects_any_double_flip() {
    let mut rng = CounterRng::from_key(0x1471, &[2]);
    let code = SecDed::hsiao_72_64();
    let mut tried = 0;
    while tried < CASES {
        let data = rng.next_u64();
        let a = rng.next_below(72) as u32;
        let b = rng.next_below(72) as u32;
        if a == b {
            continue;
        }
        tried += 1;
        let word = code.encode(data);
        let outcome = code.decode(code.inject(word, &[a, b]));
        assert!(
            outcome.is_uncorrectable(),
            "flips ({a},{b}): got {outcome:?}"
        );
    }
}

/// Cache fill/read is an identity through the encoded data path for
/// arbitrary addresses and payloads.
#[test]
fn cache_roundtrip_arbitrary_lines() {
    let mut rng = CounterRng::from_key(0x1471, &[3]);
    for case in 0..CASES {
        let addr = rng.next_below(1 << 30);
        let seed = rng.next_u64();
        let mut cache = Cache::new(CacheKind::L2Data, CacheGeometry::new(64, 4, 128, 9));
        let data: Vec<u64> = (0..16).map(|i| seed.wrapping_mul(i + 1)).collect();
        cache.fill(addr, &data);
        let base = cache.geometry().line_base(addr);
        let read = cache.read(base, &mut NoFaults).expect("just filled");
        assert_eq!(read.data, data, "case {case}");
        assert!(read.events.is_empty(), "case {case}");
    }
}

/// Word failure probabilities always form a distribution and respond
/// monotonically to voltage.
#[test]
fn sram_probabilities_well_formed() {
    let mut rng = CounterRng::from_key(0x1471, &[4]);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let set = rng.next_below(256) as usize;
        let way = rng.next_below(8) as usize;
        let v = 500.0 + 400.0 * rng.next_f64();
        let chip = ChipVariation::new(seed, SramParams::default());
        let cells = chip.word_cells(
            CoreId(0),
            CacheKind::L2Data,
            SetWay::new(set, way),
            0,
            VddMode::LowVoltage,
        );
        let ctx = AccessContext::new(v, 3.2);
        let (p0, p1, p2) = word_failure_probabilities(&cells, &ctx);
        assert!((p0 + p1 + p2 - 1.0).abs() < 1e-9, "case {case}");
        assert!(p0 >= 0.0 && p1 >= 0.0 && p2 >= 0.0, "case {case}");
        let lower = AccessContext::new(v - 25.0, 3.2);
        let (q0, _, _) = word_failure_probabilities(&cells, &lower);
        assert!(
            q0 <= p0 + 1e-12,
            "case {case}: lower voltage cannot be cleaner"
        );
    }
}

/// The regulator never leaves its range or the 5 mV grid, whatever is
/// requested.
#[test]
fn regulator_respects_grid_and_range() {
    let mut rng = CounterRng::from_key(0x1471, &[5]);
    for _case in 0..CASES {
        let mut supply = DomainSupply::low_voltage_default();
        let requests = 1 + rng.next_below(39);
        for _ in 0..requests {
            let r = -2000 + rng.next_below(5000) as i32;
            supply.regulator_mut().request(Millivolts(r));
            supply.tick();
            let v = supply.regulator().output();
            assert!(v >= Millivolts(500) && v <= Millivolts(900));
            assert_eq!(v.0 % 5, 0);
        }
    }
}

/// Effective voltage never exceeds the set point (droops only pull down)
/// for any non-negative load.
#[test]
fn droop_only_lowers_voltage() {
    let mut rng = CounterRng::from_key(0x1471, &[6]);
    for case in 0..CASES {
        let supply = DomainSupply::low_voltage_default();
        let load = LoadCurrent {
            i_dc_amps: 50.0 * rng.next_f64(),
            i_ac_amps: 20.0 * rng.next_f64(),
            f_osc_hz: 1.0 + (1.0e9 - 1.0) * rng.next_f64(),
            transient_step_amps: 20.0 * rng.next_f64(),
        };
        let v = supply.effective_voltage_mv(&load);
        assert!(v <= f64::from(supply.regulator().output().0), "case {case}");
    }
}

/// Deterministic RNG substreams keyed differently never collide on their
/// first draws (collision would silently correlate models).
#[test]
fn rng_streams_distinct() {
    let mut rng = CounterRng::from_key(0x1471, &[7]);
    let mut tried = 0;
    while tried < CASES {
        let seed = rng.next_u64();
        let a = rng.next_u64();
        let b = rng.next_u64();
        if a == b {
            continue;
        }
        tried += 1;
        let x = CounterRng::from_key(seed, &[a]).next_u64();
        let y = CounterRng::from_key(seed, &[b]).next_u64();
        assert_ne!(x, y, "seed {seed}: keys {a} and {b} collided");
    }
}

/// Whatever the die, a short closed-loop run from nominal never crashes a
/// core and never sees an uncorrectable error: the safety invariant of the
/// whole system.
#[test]
fn speculation_is_safe_on_any_die() {
    let mut rng = CounterRng::from_key(0x1471, &[8]);
    for _ in 0..8 {
        let seed = rng.next_below(1_000_000);
        let config = ChipConfig {
            num_cores: 2,
            weak_lines_tracked: 8,
            ..ChipConfig::low_voltage(seed)
        };
        let mut sys = voltspec::spec::SpeculationSystem::new(
            config,
            voltspec::spec::ControllerConfig::default(),
        );
        sys.calibrate_fast();
        sys.assign_workload(
            CoreId(0),
            Box::new(voltspec::workload::StressTest::default()),
        );
        let stats = sys.run(SimTime::from_secs(8));
        assert!(
            stats.is_safe(),
            "die {seed} crashed: {:?}",
            stats.crashed_cores
        );
        assert_eq!(sys.chip().log().uncorrectable_count(), 0);
        // And it actually speculated somewhere below nominal.
        assert!(stats.mean_vdd_mv[0] < 800.0, "die {seed} never speculated");
    }
}

/// Chip ticks conserve sanity for arbitrary dies: power positive,
/// effective voltages at or below set points, time advances.
#[test]
fn chip_tick_invariants() {
    let mut rng = CounterRng::from_key(0x1471, &[9]);
    for _ in 0..8 {
        let seed = rng.next_below(1_000_000);
        let config = ChipConfig {
            num_cores: 2,
            weak_lines_tracked: 4,
            ..ChipConfig::low_voltage(seed)
        };
        let mut chip = Chip::new(config);
        chip.set_workload(
            CoreId(0),
            Box::new(voltspec::workload::StressTest::default()),
        );
        for _ in 0..50 {
            let before = chip.now();
            let report = chip.tick();
            assert!(report.power.0 > 0.0, "die {seed}");
            assert!(chip.now() > before, "die {seed}");
            for (d, v) in report.domain_v_eff_mv.iter().enumerate() {
                let set = chip.domain_set_point(voltspec::types::DomainId(d));
                assert!(*v <= f64::from(set.0) + 1e-9, "die {seed} domain {d}");
            }
        }
    }
}
