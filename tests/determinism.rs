//! Determinism guarantees: the paper's key enabler is that weak lines are
//! a fixed property of each die. The simulator must honour that end to
//! end: identical seeds give bit-identical experiments; different seeds
//! give different silicon.

use voltspec::fleet::{FleetConfig, FleetRunner, PopulationStats};
use voltspec::platform::{Chip, ChipConfig};
use voltspec::spec::{ControllerConfig, SpeculationSystem};
use voltspec::types::{CacheKind, CoreId, FleetSeed, SimTime};
use voltspec::workload::Suite;

fn small_config(seed: u64) -> ChipConfig {
    ChipConfig {
        num_cores: 2,
        weak_lines_tracked: 8,
        ..ChipConfig::low_voltage(seed)
    }
}

fn run_once(seed: u64) -> voltspec::spec::RunStats {
    let mut sys = SpeculationSystem::new(small_config(seed), ControllerConfig::default());
    sys.calibrate_fast();
    sys.assign_suite(Suite::CoreMark, SimTime::from_secs(5));
    sys.run(SimTime::from_secs(10))
}

#[test]
fn identical_seeds_reproduce_runs_exactly() {
    let a = run_once(777);
    let b = run_once(777);
    assert_eq!(a.mean_vdd_mv, b.mean_vdd_mv);
    assert_eq!(a.correctable, b.correctable);
    assert_eq!(a.emergencies, b.emergencies);
    assert_eq!(a.energy_j, b.energy_j);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn different_seeds_are_different_silicon() {
    let a = run_once(777);
    let b = run_once(778);
    assert_ne!(
        (a.correctable, a.mean_vdd_mv.clone()),
        (b.correctable, b.mean_vdd_mv.clone()),
        "two dies should not behave identically"
    );
}

#[test]
fn weak_lines_are_stable_across_chip_instances() {
    let mut chip1 = Chip::new(small_config(99));
    let mut chip2 = Chip::new(small_config(99));
    for kind in [CacheKind::L2Data, CacheKind::L2Instruction] {
        for core in [CoreId(0), CoreId(1)] {
            let a = chip1.weak_table(core, kind).weakest().location;
            let b = chip2.weak_table(core, kind).weakest().location;
            assert_eq!(a, b, "{core}/{kind} weak line must be a die property");
        }
    }
}

#[test]
fn weak_lines_differ_between_cores_and_structures() {
    // §II-D: "the addresses of such lines vary from core to core".
    let mut chip = Chip::new(ChipConfig::low_voltage(99));
    let locations: Vec<_> = (0..8)
        .map(|c| {
            chip.weak_table(CoreId(c), CacheKind::L2Data)
                .weakest()
                .location
        })
        .collect();
    let mut unique = locations.clone();
    unique.sort();
    unique.dedup();
    assert!(
        unique.len() >= 7,
        "weak-line locations should essentially never collide: {locations:?}"
    );
}

fn fleet_config() -> FleetConfig {
    let mut config = FleetConfig::small(FleetSeed(4242), 32);
    config.run_duration = SimTime::from_millis(500);
    config
}

#[test]
fn fleet_results_are_identical_for_any_worker_count() {
    // The tentpole guarantee: sharding a fleet across workers only changes
    // the wall clock, never the results. One worker versus eight must
    // produce bit-identical summaries AND bit-identical aggregate
    // statistics (f64 equality, no tolerance).
    let one = FleetRunner::new(fleet_config(), 1).run().unwrap();
    let eight = FleetRunner::new(fleet_config(), 8).run().unwrap();

    assert_eq!(one.summaries, eight.summaries);

    let nominal = fleet_config().base_chip.mode.nominal_vdd();
    let stats_one = PopulationStats::from_summaries(&one.summaries, nominal);
    let stats_eight = PopulationStats::from_summaries(&eight.summaries, nominal);
    assert_eq!(stats_one, stats_eight);

    // And the run did real work on every chip.
    assert_eq!(one.summaries.len(), 32);
    assert!(stats_one.total_correctable > 0);
    assert_eq!(stats_one.healthy_chips, 32);
}

fn small_fleet_config(seed: u64) -> FleetConfig {
    FleetConfig {
        seed: FleetSeed(seed),
        num_chips: 8,
        ..fleet_config()
    }
}

#[test]
fn fleet_reruns_are_reproducible() {
    let a = FleetRunner::new(small_fleet_config(4242), 4).run().unwrap();
    let b = FleetRunner::new(small_fleet_config(4242), 4).run().unwrap();
    assert_eq!(a.summaries, b.summaries);
}

#[test]
fn different_fleet_seeds_are_different_populations() {
    let a = FleetRunner::new(small_fleet_config(4242), 4).run().unwrap();
    let b = FleetRunner::new(small_fleet_config(4243), 4).run().unwrap();
    assert!(
        a.summaries
            .iter()
            .zip(&b.summaries)
            .all(|(x, y)| x.die_seed != y.die_seed),
        "distinct fleet seeds must draw distinct silicon everywhere"
    );
}

#[test]
fn error_log_attributes_events_to_tracked_weak_lines() {
    let mut sys = SpeculationSystem::new(small_config(55), ControllerConfig::default());
    sys.calibrate_fast();
    sys.assign_suite(Suite::SpecInt2000, SimTime::from_secs(4));
    let stats = sys.run(SimTime::from_secs(12));
    assert!(stats.correctable > 0);
    // Rebuild the same die and confirm every event's line is one of its
    // tracked weak lines — the log is explainable from the silicon alone.
    let mut twin = Chip::new(small_config(55));
    for e in sys.chip().log().correctable() {
        let table = twin.weak_table(e.line.core, e.line.cache);
        assert!(
            table.lines().iter().any(|l| l.location == e.line.location),
            "event from untracked line {}",
            e.line
        );
    }
}
