//! The paper's headline claims, asserted at reduced scale on the reference
//! die. The committed full-scale numbers live in EXPERIMENTS.md; these
//! tests pin the *shape* of every claim so regressions are caught in CI.

use voltspec::platform::characterize::{all_core_margins, CharacterizeOptions};
use voltspec::platform::{Chip, ChipConfig};
use voltspec::spec::experiments::misc::retention_experiment;
use voltspec::spec::experiments::noise::nop_sweep;
use voltspec::spec::experiments::power::{suite_power, SuiteRunOptions};
use voltspec::types::{CoreId, SimTime, VddMode};
use voltspec::workload::Suite;

const SEED: u64 = 2014;

fn chip(mode: VddMode) -> Chip {
    let mut config = match mode {
        VddMode::LowVoltage => ChipConfig::low_voltage(SEED),
        VddMode::Nominal => ChipConfig::nominal(SEED),
    };
    config.tick = SimTime::from_millis(10);
    Chip::new(config)
}

/// §II-A: minimum safe voltage is >10% below nominal at high frequency and
/// ~23% below at the low-voltage point, with much larger core-to-core
/// spread at low voltage.
#[test]
fn claim_voltage_margins() {
    // Finer steps and longer windows than the other quick tests: the
    // core-to-core *spread* comparison is sensitive to detection noise on
    // the (rare) uncorrectable events that bound the nominal-mode floor.
    let opts = CharacterizeOptions {
        window: SimTime::from_secs(8),
        step: voltspec::types::Millivolts(5),
    };
    let mut high = chip(VddMode::Nominal);
    let high_margins = all_core_margins(&mut high, &opts);
    let mut low = chip(VddMode::LowVoltage);
    let low_margins = all_core_margins(&mut low, &opts);

    let mean = |ms: &[voltspec::platform::characterize::CoreMargins], nominal: f64| -> f64 {
        ms.iter()
            .map(|m| 1.0 - f64::from(m.min_safe_vdd.0) / nominal)
            .sum::<f64>()
            / ms.len() as f64
    };
    let high_reduction = mean(&high_margins, 1100.0);
    let low_reduction = mean(&low_margins, 800.0);
    assert!(
        high_reduction > 0.07,
        "high-frequency min safe should be ~10% below nominal, got {high_reduction:.3}"
    );
    assert!(
        low_reduction > 0.17,
        "low-voltage min safe should be ~23% below nominal, got {low_reduction:.3}"
    );

    let spread = |ms: &[voltspec::platform::characterize::CoreMargins]| -> i32 {
        ms.iter().map(|m| m.min_safe_vdd.0).max().unwrap()
            - ms.iter().map(|m| m.min_safe_vdd.0).min().unwrap()
    };
    assert!(
        spread(&low_margins) > 2 * spread(&high_margins),
        "core-to-core variation must be several times larger at low voltage: {} vs {}",
        spread(&low_margins),
        spread(&high_margins)
    );
}

/// §II-B: the correctable-error band is ~4x wider at the low-voltage point.
#[test]
fn claim_wider_error_band_at_low_voltage() {
    let opts = CharacterizeOptions::fast();
    let band = |mode: VddMode| -> f64 {
        let mut c = chip(mode);
        let ms = all_core_margins(&mut c, &opts);
        ms.iter().map(|m| f64::from(m.error_band().0)).sum::<f64>() / ms.len() as f64
    };
    let high = band(VddMode::Nominal);
    let low = band(VddMode::LowVoltage);
    assert!(
        low > 2.5 * high,
        "band ratio should be ~4x (paper), got {low:.0} vs {high:.0}"
    );
}

/// §V-A: ~8% average Vdd reduction and ~33% average power reduction.
#[test]
fn claim_headline_power_savings() {
    let r = suite_power(SEED, Suite::CoreMark, &SuiteRunOptions::fast());
    assert!(r.safe);
    let nominal = 800.0;
    let avg_reduction =
        1.0 - r.per_core_vdd_mv.iter().sum::<f64>() / (r.per_core_vdd_mv.len() as f64 * nominal);
    assert!(
        (0.04..0.15).contains(&avg_reduction),
        "paper: ~8% Vdd reduction, got {:.1}%",
        avg_reduction * 100.0
    );
    assert!(
        (0.20..0.45).contains(&(1.0 - r.relative_power)),
        "paper: ~33% power savings, got {:.1}%",
        (1.0 - r.relative_power) * 100.0
    );
}

/// §V-D2: a low-power virus at the resonant NOP count produces more errors
/// than a higher-power off-resonance one.
#[test]
fn claim_resonance_detection() {
    let points = nop_sweep(SEED, CoreId(0), &[0, 8, 20], 80_000);
    let err = |n: u32| points.iter().find(|p| p.nop_count == n).unwrap().errors;
    assert!(err(8) > err(0), "NOP-8 {} vs NOP-0 {}", err(8), err(0));
    assert!(err(8) > err(20), "NOP-8 {} vs NOP-20 {}", err(8), err(20));
}

/// §V-E: the errors are access-time, not retention.
#[test]
fn claim_no_retention_errors() {
    let r = retention_experiment(SEED, CoreId(0), 60);
    assert!(
        r.errors_at_dwell > 0,
        "control must err at the dwell voltage"
    );
    assert_eq!(r.errors_after_restore, 0, "no retention failures");
}

/// §II-C: at the low-voltage point only the L2 caches err.
#[test]
fn claim_only_l2_errors_at_low_voltage() {
    let opts = CharacterizeOptions::fast();
    let mut c = chip(VddMode::LowVoltage);
    let margins = all_core_margins(&mut c, &opts);
    // Run each core briefly at its min safe voltage and inspect the log.
    let _ =
        voltspec::platform::characterize::error_breakdown(&mut c, &margins, SimTime::from_secs(5));
    assert!(c.log().correctable_count() > 0);
    for e in c.log().correctable() {
        assert!(
            e.line.cache.is_l2(),
            "only L2 errors expected at low voltage, saw {}",
            e.line.cache
        );
    }
}
