//! Fault injection and graceful degradation, end to end: injected
//! faults are deterministic under any sharding, quarantined chips
//! degrade the population explicitly, and fail-fast surfaces the first
//! doomed chip as an error.

use voltspec::faults::{FaultPlan, FaultSpec};
use voltspec::fleet::{FleetConfig, FleetError, FleetRunner, PopulationStats};
use voltspec::telemetry::{EventCategory, EventFilter, SilentProgress};
use voltspec::types::{ChipId, DomainId, FleetSeed, SimTime};

fn tiny_config() -> FleetConfig {
    let mut config = FleetConfig::small(FleetSeed(91), 6);
    config.run_duration = SimTime::from_millis(500);
    config
}

#[test]
fn injected_fleet_traces_are_byte_identical_across_worker_counts() {
    let mut config = tiny_config();
    // A seeded population-wide plan plus explicit per-chip faults and a
    // scheduled worker panic: the full injection surface at once.
    config.faults = FaultSpec::parse("seeded:42,due@100ms:d0:chip1,panic:chip2x1")
        .expect("spec parses")
        .materialize(config.num_chips);
    let run = |workers: usize| {
        FleetRunner::new(config.clone(), workers)
            .run_reporting(EventFilter::all(), &mut SilentProgress)
            .unwrap()
    };
    let (result_1, trace_1) = run(1);
    let (result_4, trace_4) = run(4);

    assert_eq!(result_1.summaries, result_4.summaries);
    assert_eq!(result_1.degradation, result_4.degradation);
    // The seeded profile schedules its own worker panics; the explicit
    // `panic:chip2x1` directive must be among the absorbed retries.
    assert!(result_1
        .degradation
        .retried
        .iter()
        .any(|&(chip, attempts)| chip == ChipId(2) && attempts >= 1));
    assert_eq!(
        trace_1.to_jsonl(),
        trace_4.to_jsonl(),
        "injected runs must stay byte-identical under any sharding"
    );
    // The explicit DUE reached chip 1 and produced fault telemetry.
    assert!(trace_1
        .events
        .iter()
        .any(|e| e.category() == EventCategory::Fault));
    let total_dues: u64 = result_1.summaries.iter().map(|s| s.dues).sum();
    assert!(total_dues >= 1, "the scheduled DUE must be consumed");
}

#[test]
fn quarantined_chip_is_excluded_from_population_percentiles() {
    let clean = FleetRunner::new(tiny_config(), 2).run().unwrap();
    let mut config = tiny_config();
    config.faults = FaultPlan::new().worker_panic(ChipId(3), u32::MAX);
    let degraded = FleetRunner::new(config.clone(), 2)
        .with_max_retries(1)
        .run()
        .unwrap();

    assert_eq!(degraded.degradation.quarantined, vec![ChipId(3)]);
    let stats = degraded.stats(&config);
    assert_eq!(stats.num_chips, 5, "the quarantined chip has no summary");

    // The degraded population equals the clean population minus chip 3 —
    // percentiles are computed over survivors only, not zero-filled.
    let survivors: Vec<_> = clean
        .summaries
        .iter()
        .filter(|s| s.chip != ChipId(3))
        .cloned()
        .collect();
    let expected = PopulationStats::from_summaries(&survivors, config.base_chip.mode.nominal_vdd());
    assert_eq!(stats, expected);
}

#[test]
fn fail_fast_surfaces_the_doomed_chip() {
    let mut config = tiny_config();
    config.faults = FaultPlan::new().worker_panic(ChipId(0), u32::MAX);
    let err = FleetRunner::new(config, 2)
        .with_max_retries(0)
        .with_fail_fast(true)
        .run();
    match err {
        Err(FleetError::JobFailed { chip, attempts, .. }) => {
            assert_eq!(chip, ChipId(0));
            assert_eq!(attempts, 1, "max_retries 0 means a single attempt");
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
}

#[test]
fn voltage_triggered_crashes_degrade_but_complete() {
    // Crash a core of every chip once its domain sags 40 mV below
    // nominal — deep enough that speculation reaches it on every die.
    let nominal = tiny_config().base_chip.mode.nominal_vdd();
    let mut config = tiny_config();
    config.faults = FaultPlan::new().crash_below(
        DomainId(0),
        nominal - voltspec::types::Millivolts(40),
        voltspec::types::CoreId(0),
    );
    let result = FleetRunner::new(config.clone(), 3).run().unwrap();
    assert_eq!(
        result.summaries.len(),
        6,
        "recovered crashes do not quarantine"
    );
    let total_rollbacks: u64 = result.summaries.iter().map(|s| s.rollbacks).sum();
    assert!(total_rollbacks >= 1, "at least one die must trip the crash");
    let stats = result.stats(&config);
    assert_eq!(stats.total_rollbacks, total_rollbacks);
    assert!(stats.report(nominal).contains("crash rollbacks"));
}
